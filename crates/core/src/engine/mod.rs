//! The staged exchange-build engine every driver routes through.
//!
//! Before this module existed the repo had five executors of the same
//! algorithm — the rayon energy loop (`crate::hfx`), the patched energy
//! loop, the K-operator builder (`crate::operator`), the message-passing
//! twins (`crate::distributed`), and the incremental dirty-set recompute
//! (`crate::incremental`) — each owning its own scratch lifetimes, kernel
//! choice, and reduction order. [`ExchangeEngine`] folds them into one
//! staged pipeline:
//!
//! 1. **pair source** — a screened [`PairList`], an explicit dirty slice
//!    (incremental), or the `(occupied j, AO ν)` K-task list;
//! 2. **execute** — an [`ExecBackend`]: serial, rayon, or message-passing
//!    over `liair-runtime` ranks, all running the *identical* per-chunk
//!    kernel ([`autotune::KernelChoice`] resolved in exactly one place);
//! 3. **accumulate** — per-pair contributions reassembled in canonical
//!    pair-list order and summed sequentially, or per-task K columns
//!    accumulated in canonical task order — so every backend produces the
//!    same floating-point sequence, which is what makes the cross-driver
//!    equivalence suite exact rather than tolerance-based.
//!
//! Every build fills the same [`BuildProfile`]: per-phase wall times (AO
//! eval, FFT, kernel multiply, execute, reduce) and work counters (pairs
//! screened/computed/reused, cache hits, bytes reduced, steady-state
//! allocations). The public entry points in `hfx`, `operator`,
//! `distributed`, and `incremental` are thin configurations of this type.

pub mod autotune;
pub(crate) mod kpath;
pub(crate) mod pipeline;
pub mod profile;

pub use autotune::{kernel_choice_for, KernelChoice, PairPath};
pub use kpath::KBuildOutcome;
pub use profile::BuildProfile;
// The collective/fault types appear in the builder's public API;
// re-export them so engine users need not depend on the runtime crate.
pub use liair_runtime::{CollectiveMode, FaultPlan};

use crate::balance::{assign, BalanceStrategy};
use crate::error::{Error, Result};
use crate::hfx::HfxResult;
use crate::incremental::IncStats;
use crate::screening::{OrbitalInfo, Pair, PairList};
use liair_grid::patch::{patch_pair_energy_ws_with, PatchScratch};
use liair_grid::{KernelTimings, PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::simd::{self, SimdLevel};
use liair_runtime::{run_spmd_cfg, CommConfig};
use rayon::prelude::*;
use std::time::Instant;

/// How the execute stage runs its chunk list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// One worker, ascending chunk order — the reference execution and the
    /// strict zero-allocation path ([`ExchangeEngine::energy_into`]).
    Serial,
    /// Rayon work-stealing over chunks (the shared-memory production
    /// path). Results are collected in chunk order, so the reduction is
    /// deterministic regardless of the steal schedule.
    Rayon,
    /// Message-passing over `nranks` virtual ranks of the
    /// `liair-runtime` threaded backend: chunks are assigned up front by
    /// `strategy` (no coordination traffic), each rank evaluates its share
    /// with the node-local kernel, and one gather per build lands every
    /// contribution on the root — the communication-avoiding structure of
    /// the paper.
    Comm {
        /// Virtual rank count.
        nranks: usize,
        /// Static chunk-assignment strategy.
        strategy: BalanceStrategy,
    },
}

/// How the distributed backend's exec/reduce stages are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Synchronous phases: every rank finishes its whole share, then one
    /// gather per build lands everything on the root. Static assignment
    /// only; the collective is pure exposed latency.
    Staged,
    /// Double-buffered comm/compute overlap (the default): workers stream
    /// finished chunks into an in-flight reassembly while computing the
    /// next one, the root ingests between its own chunks, and a
    /// root-owned steal queue rebalances the tail and re-issues a
    /// straggler's chunks as soon as its timeout fires. Bit-identical to
    /// [`PipelineMode::Staged`] by canonical-order reassembly.
    Pipelined,
}

/// How the distributed backend's collectives run: algorithm family,
/// exec/reduce scheduling, plus the (optional) fault plan the region
/// executes under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommTuning {
    /// Collective algorithm family of the build's gather. Hierarchical
    /// (binomial tree) is the default — gathers move data without
    /// arithmetic, so the canonical-order bitwise guarantee is preserved
    /// while the root's in-degree drops from `P − 1` to `⌈log₂ P⌉`.
    pub collectives: CollectiveMode,
    /// Exec/reduce scheduling of the distributed backend (default:
    /// pipelined overlap).
    pub pipeline: PipelineMode,
    /// Deterministic fault plan the region runs under (`None` = clean).
    pub fault: Option<FaultPlan>,
}

impl CommTuning {
    /// The environment-driven default: `LIAIR_COLLECTIVES` (`flat` |
    /// `hier`/`hierarchical`, default hierarchical), `LIAIR_PIPELINE`
    /// (`off`/`staged` | `on`/`pipelined`, default pipelined) and the
    /// `LIAIR_FAULT_SEED` fault matrix knob.
    pub fn from_env() -> Self {
        let collectives = match std::env::var("LIAIR_COLLECTIVES") {
            Ok(v) if v.trim().eq_ignore_ascii_case("flat") => CollectiveMode::Flat,
            _ => CollectiveMode::Hierarchical,
        };
        let pipeline = match std::env::var("LIAIR_PIPELINE") {
            Ok(v) if ["off", "staged", "0"].contains(&v.trim().to_ascii_lowercase().as_str()) => {
                PipelineMode::Staged
            }
            _ => PipelineMode::Pipelined,
        };
        CommTuning {
            collectives,
            pipeline,
            fault: FaultPlan::from_env(),
        }
    }
}

impl Default for CommTuning {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The unified exchange-build driver: borrow a grid and its Poisson
/// solver, pick a backend, and every exchange product — pair energies,
/// patched pair energies, the K operator — comes out of the same staged
/// pipeline with the same [`BuildProfile`] instrumentation.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeEngine<'a> {
    grid: &'a RealGrid,
    /// Full-cell Poisson solver; `None` for a patched-only engine (patches
    /// solve on their own per-shape cached solvers).
    solver: Option<&'a PoissonSolver>,
    backend: ExecBackend,
    choice: Option<KernelChoice>,
    tuning: CommTuning,
}

/// Fluent, validated construction of an [`ExchangeEngine`] — the one
/// place every knob (backend, kernel pinning, pair path, SIMD level,
/// collective family, fault plan) composes. [`EngineBuilder::build`]
/// rejects inconsistent configurations as [`Error::InvalidConfig`]
/// instead of letting them panic mid-build.
#[derive(Debug, Clone, Copy)]
pub struct EngineBuilder<'a> {
    grid: &'a RealGrid,
    solver: Option<&'a PoissonSolver>,
    backend: ExecBackend,
    choice: Option<KernelChoice>,
    path: Option<PairPath>,
    simd: Option<SimdLevel>,
    tuning: CommTuning,
}

impl<'a> EngineBuilder<'a> {
    fn new(grid: &'a RealGrid, solver: Option<&'a PoissonSolver>) -> Self {
        EngineBuilder {
            grid,
            solver,
            backend: ExecBackend::Rayon,
            choice: None,
            path: None,
            simd: None,
            tuning: CommTuning::from_env(),
        }
    }

    /// Run the execute stage on this backend (default: rayon).
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Pin the whole kernel choice (pair path + SIMD level) instead of
    /// autotuning. Overrides [`EngineBuilder::pair_path`] /
    /// [`EngineBuilder::simd`].
    pub fn kernel_choice(mut self, choice: KernelChoice) -> Self {
        self.choice = Some(choice);
        self
    }

    /// Pin only the pair path (single / batched); the SIMD level stays
    /// autotuned unless [`EngineBuilder::simd`] pins it too.
    pub fn pair_path(mut self, path: PairPath) -> Self {
        self.path = Some(path);
        self
    }

    /// Pin only the SIMD level; the pair path stays autotuned unless
    /// [`EngineBuilder::pair_path`] pins it too.
    pub fn simd(mut self, level: SimdLevel) -> Self {
        self.simd = Some(level);
        self
    }

    /// Collective algorithm family of the distributed backend.
    pub fn collectives(mut self, mode: CollectiveMode) -> Self {
        self.tuning.collectives = mode;
        self
    }

    /// Exec/reduce scheduling of the distributed backend: staged
    /// phases or pipelined comm/compute overlap (the default).
    pub fn pipeline(mut self, mode: PipelineMode) -> Self {
        self.tuning.pipeline = mode;
        self
    }

    /// Run the distributed backend under this deterministic fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.tuning.fault = Some(plan);
        self
    }

    /// Run fault-free even when `LIAIR_FAULT_SEED` is set (pinned
    /// baselines).
    pub fn no_faults(mut self) -> Self {
        self.tuning.fault = None;
        self
    }

    /// Validate and produce the engine.
    pub fn build(self) -> Result<ExchangeEngine<'a>> {
        if let ExecBackend::Comm { nranks, .. } = self.backend {
            if nranks == 0 {
                return Err(Error::InvalidConfig(
                    "Comm backend needs at least one rank".into(),
                ));
            }
        }
        if let Some(plan) = self.tuning.fault {
            plan.validate().map_err(Error::Comm)?;
        }
        if self.choice.is_some() && (self.path.is_some() || self.simd.is_some()) {
            return Err(Error::InvalidConfig(
                "kernel_choice() already pins path and SIMD; drop pair_path()/simd()".into(),
            ));
        }
        // A partially-pinned kernel resolves the other half at autotune
        // time; a fully-pinned pair (path, simd) collapses to a choice.
        let choice = match (self.choice, self.path, self.simd) {
            (Some(c), _, _) => Some(c),
            (None, Some(path), Some(simd)) => Some(KernelChoice { path, simd }),
            (None, Some(path), None) => Some(KernelChoice {
                path,
                simd: simd::level(),
            }),
            (None, None, Some(level)) => {
                let path = match (autotune::env_pair_path(), self.solver) {
                    (Some(p), _) => p,
                    (None, Some(solver)) => kernel_choice_for(solver, self.grid).path,
                    // Patched-only engines never consult the pair path.
                    (None, None) => PairPath::Batched,
                };
                Some(KernelChoice { path, simd: level })
            }
            (None, None, None) => None,
        };
        Ok(ExchangeEngine {
            grid: self.grid,
            solver: self.solver,
            backend: self.backend,
            choice,
            tuning: self.tuning,
        })
    }
}

/// What one chunk of work sends back through the execute stage.
struct ChunkOut {
    a: f64,
    b: f64,
    t: KernelTimings,
    grew: usize,
}

/// Per-worker scratch for the pair loop: two pair densities plus the
/// Poisson workspace. Grow-once, reused across all pairs a worker takes.
#[derive(Debug, Default)]
pub(crate) struct HfxScratch {
    rho_a: Vec<f64>,
    rho_b: Vec<f64>,
    ws: PoissonWorkspace,
}

impl HfxScratch {
    /// Size the density buffers for an `n`-point grid; returns whether
    /// they actually grew (a steady-state build reports 0 growth events).
    fn ensure(&mut self, n: usize) -> bool {
        if self.rho_a.len() != n {
            self.rho_a.resize(n, 0.0);
            self.rho_b.resize(n, 0.0);
            true
        } else {
            false
        }
    }
}

/// Caller-owned scratch for [`ExchangeEngine::energy_into`]: the pair
/// scratch plus the contribution vector, so a warm repeat build performs
/// zero heap allocations.
#[derive(Debug, Default)]
pub struct EngineScratch {
    pair: HfxScratch,
    contribs: Vec<f64>,
}

impl EngineScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

fn form_pair_density(level: SimdLevel, out: &mut [f64], phi_i: &[f64], phi_j: &[f64]) {
    simd::mul_into_with(level, out, phi_i, phi_j);
}

/// Evaluate one chunk of ≤ 2 pairs, returning the weighted contribution
/// `−w (ij|ij)` of each slot (second slot 0 for an odd tail). Every
/// backend — serial, rayon, message-passing, incremental dirty-set — runs
/// this identical floating-point path.
fn eval_pair_chunk(
    sc: &mut HfxScratch,
    chunk: &[Pair],
    choice: KernelChoice,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
) -> (f64, f64) {
    let level = choice.simd;
    match chunk {
        [p, q] if choice.path == PairPath::Batched => {
            form_pair_density(
                level,
                &mut sc.rho_a,
                &orbitals[p.i as usize],
                &orbitals[p.j as usize],
            );
            form_pair_density(
                level,
                &mut sc.rho_b,
                &orbitals[q.i as usize],
                &orbitals[q.j as usize],
            );
            let (ea, eb) =
                solver.exchange_pair_energy_batched_with(level, &sc.rho_a, &sc.rho_b, &mut sc.ws);
            (-p.weight * ea, -q.weight * eb)
        }
        _ => {
            let mut out = [0.0, 0.0];
            for (slot, p) in chunk.iter().enumerate() {
                form_pair_density(
                    level,
                    &mut sc.rho_a,
                    &orbitals[p.i as usize],
                    &orbitals[p.j as usize],
                );
                out[slot] =
                    -p.weight * solver.exchange_pair_energy_with(level, &sc.rho_a, &mut sc.ws);
            }
            (out[0], out[1])
        }
    }
}

impl<'a> ExchangeEngine<'a> {
    /// Engine over `grid`/`solver` with the rayon backend (the
    /// shared-memory production default) and the autotuned kernel choice.
    /// Shorthand for `ExchangeEngine::builder(grid, solver).build()`.
    pub fn new(grid: &'a RealGrid, solver: &'a PoissonSolver) -> Self {
        ExchangeEngine {
            grid,
            solver: Some(solver),
            backend: ExecBackend::Rayon,
            choice: None,
            tuning: CommTuning::from_env(),
        }
    }

    /// Engine for the patched energy path only: no full-cell solver is
    /// built or borrowed (each patch shape uses its own cached solver).
    /// Calling a full-cell path on this engine panics (or returns
    /// [`Error::MissingSolver`] on the `try_` paths).
    pub fn for_patches(grid: &'a RealGrid) -> Self {
        ExchangeEngine {
            grid,
            solver: None,
            backend: ExecBackend::Rayon,
            choice: None,
            tuning: CommTuning::from_env(),
        }
    }

    /// Fluent, validated configuration — the front door for every knob
    /// (backend, kernel pinning, collective family, fault plan).
    pub fn builder(grid: &'a RealGrid, solver: &'a PoissonSolver) -> EngineBuilder<'a> {
        EngineBuilder::new(grid, Some(solver))
    }

    /// Builder for a patched-only engine (see
    /// [`ExchangeEngine::for_patches`]).
    pub fn builder_for_patches(grid: &'a RealGrid) -> EngineBuilder<'a> {
        EngineBuilder::new(grid, None)
    }

    /// The backend this engine executes on.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The collective tuning of the distributed backend.
    pub fn comm_tuning(&self) -> CommTuning {
        self.tuning
    }

    /// The full-cell Poisson solver (panics on a patched-only engine).
    pub(crate) fn full_solver(&self) -> &'a PoissonSolver {
        self.solver
            .expect("this engine path needs a full-cell Poisson solver (use ExchangeEngine::new)")
    }

    /// The full-cell Poisson solver as a typed error on a patched-only
    /// engine.
    fn try_full_solver(&self) -> Result<&'a PoissonSolver> {
        self.solver.ok_or(Error::MissingSolver)
    }

    /// Validate the orbital set against the engine's grid.
    fn validate_orbitals(&self, orbitals: &[Vec<f64>]) -> Result<()> {
        if orbitals.is_empty() {
            return Err(Error::EmptyOrbitals);
        }
        let expected = self.grid.len();
        for (idx, o) in orbitals.iter().enumerate() {
            if o.len() != expected {
                return Err(Error::OrbitalSizeMismatch {
                    expected,
                    got: o.len(),
                    orbital: idx,
                });
            }
        }
        Ok(())
    }

    /// Kernel choice of the full-cell energy path: pinned, or autotuned
    /// per grid shape (cached for the process lifetime).
    fn energy_choice(&self) -> Result<KernelChoice> {
        match self.choice {
            Some(c) => Ok(c),
            None => Ok(kernel_choice_for(self.try_full_solver()?, self.grid)),
        }
    }

    /// SIMD level of the paths that have no batched variant (K tasks,
    /// patched pairs): pinned, or the runtime-detected level.
    pub(crate) fn simd_choice(&self) -> SimdLevel {
        self.choice.map(|c| c.simd).unwrap_or_else(simd::level)
    }

    /// Execute stage: run `npairs.div_ceil(2)` chunks on the configured
    /// backend and return the per-pair contributions *in canonical pair
    /// order*, accumulating kernel timings and scratch-growth counts into
    /// `profile`. Chunks — not pairs — are the distribution unit, because
    /// the batched kernel ties each pair's rounding to its chunk partner;
    /// keeping chunk boundaries at absolute pair-list positions is what
    /// makes every backend bit-identical.
    fn run_chunks<S, I, F>(
        &self,
        npairs: usize,
        init: I,
        eval: F,
        profile: &mut BuildProfile,
    ) -> Result<Vec<f64>>
    where
        S: Send,
        I: Fn() -> S + Send + Sync,
        F: Fn(&mut S, usize) -> ChunkOut + Send + Sync,
    {
        let nchunks = npairs.div_ceil(2);
        let per_chunk: Vec<ChunkOut> = match self.backend {
            ExecBackend::Serial => {
                let mut sc = init();
                (0..nchunks).map(|ci| eval(&mut sc, ci)).collect()
            }
            ExecBackend::Rayon => (0..nchunks)
                .into_par_iter()
                .map_init(&init, |sc, ci| eval(sc, ci))
                .collect(),
            ExecBackend::Comm { nranks, strategy } => {
                return match self.tuning.pipeline {
                    PipelineMode::Staged => {
                        self.run_chunks_comm(npairs, &init, &eval, nranks, strategy, profile)
                    }
                    PipelineMode::Pipelined => {
                        let job = pipeline::PipelineJob {
                            nitems: nchunks,
                            width: 2,
                            nranks,
                            strategy,
                        };
                        let wrap = |sc: &mut S, ci: usize, buf: &mut Vec<f64>| {
                            let c = eval(sc, ci);
                            buf.push(c.a);
                            buf.push(c.b);
                            (c.t, c.grew)
                        };
                        let mut flat =
                            pipeline::run_pipelined(&job, &init, &wrap, &self.tuning, profile)?;
                        // The last chunk's second slot is padding when the
                        // pair count is odd.
                        flat.truncate(npairs);
                        Ok(flat)
                    }
                };
            }
        };
        let mut out = Vec::with_capacity(npairs);
        for (ci, c) in per_chunk.into_iter().enumerate() {
            profile.t_fft_s += c.t.fft_s;
            profile.t_kernel_s += c.t.kernel_s;
            profile.steady_allocs += c.grew;
            out.push(c.a);
            if 2 * ci + 1 < npairs {
                out.push(c.b);
            }
        }
        Ok(out)
    }

    /// The message-passing execute stage: whole chunks are assigned to
    /// ranks up front (unit cost — every chunk is one or two Poisson
    /// solves), each rank walks its share with one grow-once scratch, and
    /// a single gather per build moves `[chunk contributions…, fft_s,
    /// kernel_s, growth]` to the root, which reassembles canonical pair
    /// order from the deterministic assignment.
    ///
    /// The gather runs the engine's [`CommTuning`]: hierarchical
    /// (binomial-tree) by default — pure data movement, so the canonical
    /// reassembly stays bit-identical to the flat algorithm — and
    /// fault-tolerant when a [`FaultPlan`] is active: a rank that stalls
    /// past the retry budget leaves a hole in the partial gather, and the
    /// root re-issues that rank's chunks locally through the *identical*
    /// kernel (same floating-point sequence, so even a degraded build is
    /// bitwise-equal to a clean one). Stall/re-issue/retry counts land in
    /// the [`BuildProfile`].
    fn run_chunks_comm<S, I, F>(
        &self,
        npairs: usize,
        init: &I,
        eval: &F,
        nranks: usize,
        strategy: BalanceStrategy,
        profile: &mut BuildProfile,
    ) -> Result<Vec<f64>>
    where
        S: Send,
        I: Fn() -> S + Send + Sync,
        F: Fn(&mut S, usize) -> ChunkOut + Send + Sync,
    {
        if nranks == 0 {
            return Err(Error::InvalidConfig("need at least one rank".into()));
        }
        let nchunks = npairs.div_ceil(2);
        let costs = vec![1.0; nchunks];
        let assignment = assign(&costs, nranks, strategy);
        let cfg = CommConfig {
            mode: self.tuning.collectives,
            fault: self.tuning.fault,
            torus: None,
        };
        let run = run_spmd_cfg(nranks, cfg, |comm| {
            if comm.stalled() {
                return Ok(None);
            }
            let mine = &assignment.per_rank[comm.rank()];
            let mut sc = init();
            let mut t = KernelTimings::default();
            let mut grew = 0usize;
            let mut flat = Vec::with_capacity(2 * mine.len() + 3);
            for &ci in mine {
                let c = eval(&mut sc, ci);
                flat.push(c.a);
                flat.push(c.b);
                t.merge(c.t);
                grew += c.grew;
            }
            flat.push(t.fft_s);
            flat.push(t.kernel_s);
            flat.push(grew as f64);
            // The single collective of the build, timed at the root: the
            // staged gather is pure exposed reduce latency, the quantity
            // the pipelined backend exists to hide.
            let tg = Instant::now();
            let parts = comm.gather_partial(0, flat)?;
            Ok(parts.map(|p| (p, tg.elapsed().as_secs_f64())))
        })
        .map_err(Error::Comm)?;
        if let Some((_, _, _, _, retries)) = run.fault_stats {
            profile.comm_retries += retries;
        }
        let (parts, t_gather) = run
            .results
            .into_iter()
            .next()
            .expect("nranks >= 1")
            .map_err(Error::Comm)?
            .expect("rank 0 never stalls and is the gather root");
        profile.t_reduce_s += t_gather;
        let mut out = vec![0.0; npairs];
        let mut reissue_sc: Option<S> = None;
        for (r, part) in parts.iter().enumerate() {
            let mine = &assignment.per_rank[r];
            match part {
                Some(part) => {
                    for (slot, &ci) in mine.iter().enumerate() {
                        out[2 * ci] = part[2 * slot];
                        if 2 * ci + 1 < npairs {
                            out[2 * ci + 1] = part[2 * slot + 1];
                        }
                    }
                    let base = 2 * mine.len();
                    profile.t_fft_s += part[base];
                    profile.t_kernel_s += part[base + 1];
                    profile.steady_allocs += part[base + 2] as usize;
                    profile.bytes_reduced += part.len() * std::mem::size_of::<f64>();
                }
                None => {
                    // Graceful degradation: the rank stalled (or its
                    // subtree was lost); recompute its chunks here with
                    // the same kernel — bit-identical contributions in
                    // the same canonical slots.
                    profile.ranks_stalled += 1;
                    let sc = reissue_sc.get_or_insert_with(init);
                    for &ci in mine {
                        let c = eval(sc, ci);
                        out[2 * ci] = c.a;
                        if 2 * ci + 1 < npairs {
                            out[2 * ci + 1] = c.b;
                        }
                        profile.t_fft_s += c.t.fft_s;
                        profile.t_kernel_s += c.t.kernel_s;
                        profile.steady_allocs += c.grew;
                        profile.chunks_reissued += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Per-pair weighted contributions `−w_ij (ij|ij)` over an explicit
    /// pair slice, in pair order — the recompute stage the incremental
    /// build points at its dirty set. Fills the execute-phase fields of
    /// `profile` (times, growth); the caller owns the counters.
    pub fn pair_contribs(
        &self,
        orbitals: &[Vec<f64>],
        pairs: &[Pair],
        profile: &mut BuildProfile,
    ) -> Vec<f64> {
        self.try_pair_contribs(orbitals, pairs, profile)
            .unwrap_or_else(|e| panic!("exchange pair build failed: {e}"))
    }

    /// Fallible twin of [`ExchangeEngine::pair_contribs`]: orbital-shape
    /// and configuration problems, and unrecovered communication
    /// failures, come back as typed [`Error`]s.
    pub fn try_pair_contribs(
        &self,
        orbitals: &[Vec<f64>],
        pairs: &[Pair],
        profile: &mut BuildProfile,
    ) -> Result<Vec<f64>> {
        if !orbitals.is_empty() {
            self.validate_orbitals(orbitals)?;
        }
        let plan_window = profile::PlanCacheWindow::open();
        let choice = self.energy_choice()?;
        let n = self.grid.len();
        let solver = self.try_full_solver()?;
        let t0 = Instant::now();
        let contribs = self.run_chunks(
            pairs.len(),
            HfxScratch::default,
            |sc, ci| {
                let grew = sc.ensure(n) as usize;
                let chunk = &pairs[2 * ci..(2 * ci + 2).min(pairs.len())];
                let (a, b) = eval_pair_chunk(sc, chunk, choice, solver, orbitals);
                ChunkOut {
                    a,
                    b,
                    t: sc.ws.take_timings(),
                    grew,
                }
            },
            profile,
        )?;
        profile.t_exec_s += t0.elapsed().as_secs_f64();
        plan_window.record(profile);
        Ok(contribs)
    }

    /// Full-cell exchange energy over a screened pair list: execute on the
    /// configured backend, then reduce with an ordered sequential sum (the
    /// same floating-point sequence on every backend).
    pub fn energy(&self, orbitals: &[Vec<f64>], pairs: &PairList) -> HfxResult {
        self.try_energy(orbitals, pairs)
            .unwrap_or_else(|e| panic!("exchange build failed: {e}"))
    }

    /// Fallible twin of [`ExchangeEngine::energy`].
    pub fn try_energy(&self, orbitals: &[Vec<f64>], pairs: &PairList) -> Result<HfxResult> {
        self.validate_orbitals(orbitals)?;
        let mut profile = BuildProfile::default();
        let contribs = self.try_pair_contribs(orbitals, &pairs.pairs, &mut profile)?;
        Ok(self.finish_energy(contribs, pairs, profile))
    }

    /// Exchange energy over *pair-local patches* instead of full-cell
    /// transforms (the compact-representation path): same staging, with a
    /// per-worker [`PatchScratch`] and per-shape cached patch solvers.
    /// The patch spans the center separation plus three spreads per
    /// orbital plus `margin` Bohr.
    pub fn energy_patched(
        &self,
        orbitals: &[Vec<f64>],
        infos: &[OrbitalInfo],
        pairs: &PairList,
        margin: f64,
    ) -> HfxResult {
        self.try_energy_patched(orbitals, infos, pairs, margin)
            .unwrap_or_else(|e| panic!("patched exchange build failed: {e}"))
    }

    /// Fallible twin of [`ExchangeEngine::energy_patched`].
    pub fn try_energy_patched(
        &self,
        orbitals: &[Vec<f64>],
        infos: &[OrbitalInfo],
        pairs: &PairList,
        margin: f64,
    ) -> Result<HfxResult> {
        if orbitals.len() != infos.len() {
            return Err(Error::InvalidConfig(format!(
                "{} orbitals but {} OrbitalInfo records",
                orbitals.len(),
                infos.len()
            )));
        }
        let level = self.simd_choice();
        let h = self.grid.spacing().x;
        let grid = self.grid;
        let plist = &pairs.pairs;
        let mut profile = BuildProfile::default();
        let plan_window = profile::PlanCacheWindow::open();
        let t0 = Instant::now();
        let contribs = self.run_chunks(
            plist.len(),
            PatchScratch::new,
            |scratch, ci| {
                let chunk = &plist[2 * ci..(2 * ci + 2).min(plist.len())];
                let mut out = [0.0, 0.0];
                for (slot, p) in chunk.iter().enumerate() {
                    let (i, j) = (p.i as usize, p.j as usize);
                    let (a, b) = (&infos[i], &infos[j]);
                    let d = a.center.distance(b.center);
                    let midpoint = (a.center + b.center) * 0.5;
                    let phys = d + 3.0 * (a.spread + b.spread) + 2.0 * margin;
                    let extent = ((phys / h).ceil() as usize).max(8);
                    let e_pair = patch_pair_energy_ws_with(
                        level,
                        grid,
                        &orbitals[i],
                        &orbitals[j],
                        midpoint,
                        extent,
                        scratch,
                    );
                    out[slot] = -p.weight * e_pair;
                }
                ChunkOut {
                    a: out[0],
                    b: out[1],
                    t: scratch.take_timings(),
                    grew: 0,
                }
            },
            &mut profile,
        )?;
        profile.t_exec_s += t0.elapsed().as_secs_f64();
        plan_window.record(&mut profile);
        Ok(self.finish_energy(contribs, pairs, profile))
    }

    /// Strict zero-allocation energy build: serial execution into a
    /// caller-owned [`EngineScratch`]. A warm repeat build (same grid,
    /// same pair count) performs no heap allocations at all — the property
    /// the counting-allocator test pins down.
    pub fn energy_into(
        &self,
        orbitals: &[Vec<f64>],
        pairs: &PairList,
        scratch: &mut EngineScratch,
    ) -> HfxResult {
        self.try_energy_into(orbitals, pairs, scratch)
            .unwrap_or_else(|e| panic!("exchange build failed: {e}"))
    }

    /// Fallible twin of [`ExchangeEngine::energy_into`].
    pub fn try_energy_into(
        &self,
        orbitals: &[Vec<f64>],
        pairs: &PairList,
        scratch: &mut EngineScratch,
    ) -> Result<HfxResult> {
        self.validate_orbitals(orbitals)?;
        let choice = self.energy_choice()?;
        let npairs = pairs.len();
        let mut profile = BuildProfile::default();
        // Stats snapshots are plain stack copies — the zero-alloc
        // guarantee of this path is untouched.
        let plan_window = profile::PlanCacheWindow::open();
        let t0 = Instant::now();
        profile.steady_allocs += scratch.pair.ensure(self.grid.len()) as usize;
        profile.steady_allocs += (npairs > scratch.contribs.capacity()) as usize;
        scratch.contribs.clear();
        scratch.contribs.resize(npairs, 0.0);
        let solver = self.try_full_solver()?;
        for ci in 0..npairs.div_ceil(2) {
            let chunk = &pairs.pairs[2 * ci..(2 * ci + 2).min(npairs)];
            let (a, b) = eval_pair_chunk(&mut scratch.pair, chunk, choice, solver, orbitals);
            scratch.contribs[2 * ci] = a;
            if 2 * ci + 1 < npairs {
                scratch.contribs[2 * ci + 1] = b;
            }
        }
        let t = scratch.pair.ws.take_timings();
        profile.t_fft_s += t.fft_s;
        profile.t_kernel_s += t.kernel_s;
        profile.t_exec_s += t0.elapsed().as_secs_f64();
        let tr = Instant::now();
        let energy: f64 = scratch.contribs.iter().sum();
        profile.t_reduce_s += tr.elapsed().as_secs_f64();
        profile.bytes_reduced += npairs * std::mem::size_of::<f64>();
        profile.pairs_computed = npairs;
        profile.pairs_screened = pairs.n_candidates - npairs;
        profile.pairs_considered = pairs.considered;
        plan_window.record(&mut profile);
        Ok(HfxResult {
            energy,
            pairs_evaluated: npairs,
            pairs_screened: pairs.n_candidates - npairs,
            inc: IncStats::default(),
            profile,
        })
    }

    /// Reduce stage of the energy paths: ordered sequential sum of the
    /// canonical contribution vector, plus the profile counters every
    /// build reports.
    fn finish_energy(
        &self,
        contribs: Vec<f64>,
        pairs: &PairList,
        mut profile: BuildProfile,
    ) -> HfxResult {
        let tr = Instant::now();
        let energy: f64 = contribs.iter().sum();
        profile.t_reduce_s += tr.elapsed().as_secs_f64();
        profile.bytes_reduced += contribs.len() * std::mem::size_of::<f64>();
        profile.pairs_computed = pairs.len();
        profile.pairs_screened = pairs.n_candidates - pairs.len();
        profile.pairs_considered = pairs.considered;
        HfxResult {
            energy,
            pairs_evaluated: pairs.len(),
            pairs_screened: pairs.n_candidates - pairs.len(),
            inc: IncStats::default(),
            profile,
        }
    }
}
