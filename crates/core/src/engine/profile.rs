//! The uniform per-build instrumentation record every [`super::ExchangeEngine`]
//! build produces, replacing the ad-hoc per-driver counters.

use serde::{Deserialize, Serialize};

/// Phase-resolved wall times and work counters of one exchange build.
///
/// Every driver that routes through the engine — energy-only, patched,
/// K-operator, message-passing, incremental — fills the same fields, so
/// `repro` tables and downstream tooling can compare builds without
/// knowing which driver produced them. Times are wall seconds; the FFT and
/// kernel phases are summed *across workers* (they can exceed `t_exec_s`
/// on a multi-core build), while `t_exec_s` and `t_reduce_s` are elapsed
/// times of the whole stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BuildProfile {
    /// AO/orbital field evaluation (and localization) ahead of the pair loop.
    pub t_ao_eval_s: f64,
    /// Forward/inverse FFT time summed over all workers.
    pub t_fft_s: f64,
    /// Reciprocal-space kernel multiply / energy-contraction time summed
    /// over all workers.
    pub t_kernel_s: f64,
    /// Elapsed wall time of the execute stage (pair/task loop, all backends).
    pub t_exec_s: f64,
    /// Elapsed wall time of the reduction stage (ordered contribution sum,
    /// column accumulation, or the Comm gather).
    pub t_reduce_s: f64,
    /// Pairs (or K tasks) dropped by ε screening before execution.
    pub pairs_screened: usize,
    /// Pairs (or K tasks) actually computed through a Poisson solve.
    pub pairs_computed: usize,
    /// Pairs (or K tasks) served from the incremental cache instead.
    pub pairs_reused: usize,
    /// Incremental cache hits (entries consulted and found clean).
    pub cache_hits: usize,
    /// Bytes that flowed through the reduction stage (contribution vectors,
    /// gathered columns, allreduce payloads).
    pub bytes_reduced: usize,
    /// Steady-state scratch growth events during execution (0 once every
    /// worker's grow-once buffers are warm).
    pub steady_allocs: usize,
    /// Ranks that stalled under the fault plan and never delivered their
    /// share (their chunks were re-issued to the root).
    pub ranks_stalled: usize,
    /// Chunks recomputed on the root because their owning rank stalled —
    /// the graceful-degradation work of a faulty build.
    pub chunks_reissued: usize,
    /// Receive attempts that timed out and retried during the build's
    /// collectives (0 on a fault-free build).
    pub comm_retries: usize,
}

impl BuildProfile {
    /// Accumulate another build's profile into this one (times and
    /// counters both add — used by SCF loops that profile per iteration).
    pub fn merge(&mut self, other: &BuildProfile) {
        self.t_ao_eval_s += other.t_ao_eval_s;
        self.t_fft_s += other.t_fft_s;
        self.t_kernel_s += other.t_kernel_s;
        self.t_exec_s += other.t_exec_s;
        self.t_reduce_s += other.t_reduce_s;
        self.pairs_screened += other.pairs_screened;
        self.pairs_computed += other.pairs_computed;
        self.pairs_reused += other.pairs_reused;
        self.cache_hits += other.cache_hits;
        self.bytes_reduced += other.bytes_reduced;
        self.steady_allocs += other.steady_allocs;
        self.ranks_stalled += other.ranks_stalled;
        self.chunks_reissued += other.chunks_reissued;
        self.comm_retries += other.comm_retries;
    }

    /// Whether this profile carries any evidence of a build (a populated
    /// profile has either elapsed execute time or non-zero work counters).
    pub fn is_populated(&self) -> bool {
        self.t_exec_s > 0.0
            || self.pairs_computed > 0
            || self.pairs_reused > 0
            || self.pairs_screened > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_times_and_counters() {
        let mut a = BuildProfile {
            t_exec_s: 1.0,
            pairs_computed: 3,
            ..Default::default()
        };
        let b = BuildProfile {
            t_exec_s: 0.5,
            t_fft_s: 0.25,
            pairs_computed: 2,
            pairs_reused: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.t_exec_s, 1.5);
        assert_eq!(a.t_fft_s, 0.25);
        assert_eq!(a.pairs_computed, 5);
        assert_eq!(a.pairs_reused, 7);
    }

    #[test]
    fn default_profile_is_unpopulated() {
        let p = BuildProfile::default();
        assert!(!p.is_populated());
        let q = BuildProfile {
            pairs_computed: 1,
            ..Default::default()
        };
        assert!(q.is_populated());
    }
}
