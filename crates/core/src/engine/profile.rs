//! The uniform per-build instrumentation record every [`super::ExchangeEngine`]
//! build produces, replacing the ad-hoc per-driver counters.

use serde::{Deserialize, Serialize};

/// Phase-resolved wall times and work counters of one exchange build.
///
/// Every driver that routes through the engine — energy-only, patched,
/// K-operator, message-passing, incremental — fills the same fields, so
/// `repro` tables and downstream tooling can compare builds without
/// knowing which driver produced them. Times are wall seconds; the FFT and
/// kernel phases are summed *across workers* (they can exceed `t_exec_s`
/// on a multi-core build), while `t_exec_s` and `t_reduce_s` are elapsed
/// times of the whole stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BuildProfile {
    /// AO/orbital field evaluation (and localization) ahead of the pair loop.
    pub t_ao_eval_s: f64,
    /// Forward/inverse FFT time summed over all workers.
    pub t_fft_s: f64,
    /// Reciprocal-space kernel multiply / energy-contraction time summed
    /// over all workers.
    pub t_kernel_s: f64,
    /// Elapsed wall time of the execute stage (pair/task loop, all backends).
    pub t_exec_s: f64,
    /// Elapsed wall time of the reduction stage (ordered contribution sum,
    /// column accumulation, or the Comm gather).
    pub t_reduce_s: f64,
    /// Pairs (or K tasks) dropped by ε screening before execution.
    pub pairs_screened: usize,
    /// Candidate pairs (or K tasks) the pair source actually *inspected*
    /// while building the list — `N(N+1)/2` for the brute scan, the far
    /// smaller O(N·partners) count for the locality-aware cell-list
    /// source. The per-build evidence of sub-quadratic sourcing.
    #[serde(default)]
    pub pairs_considered: usize,
    /// Pairs (or K tasks) actually computed through a Poisson solve.
    pub pairs_computed: usize,
    /// Pairs (or K tasks) served from the incremental cache instead.
    pub pairs_reused: usize,
    /// Incremental cache hits (entries consulted and found clean).
    pub cache_hits: usize,
    /// FFT plan-cache lookups served warm during this build — the PR 1
    /// process-wide plan cache, windowed per build so serve can report
    /// per-job hit rates without side channels. (The incremental path was
    /// previously the only one reporting any reuse; these two fields make
    /// plan reuse uniform across every driver.)
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// FFT plan-cache lookups that had to build a plan during this build.
    #[serde(default)]
    pub plan_cache_misses: u64,
    /// Bytes that flowed through the reduction stage (contribution vectors,
    /// gathered columns, allreduce payloads).
    pub bytes_reduced: usize,
    /// Steady-state scratch growth events during execution (0 once every
    /// worker's grow-once buffers are warm).
    pub steady_allocs: usize,
    /// Ranks that stalled under the fault plan and never delivered their
    /// share (their chunks were re-issued to the root).
    pub ranks_stalled: usize,
    /// Chunks recomputed on the root because their owning rank stalled —
    /// the graceful-degradation work of a faulty build.
    pub chunks_reissued: usize,
    /// Receive attempts that timed out and retried during the build's
    /// collectives (0 on a fault-free build).
    pub comm_retries: usize,
    /// Reduce/reassembly time hidden behind the execute stage by the
    /// pipelined backend (root-side result ingestion that ran while the
    /// root still had chunks of its own). `t_reduce_s` keeps only the
    /// exposed remainder, so `t_exec_s + t_reduce_s` stays the critical
    /// path and this field is the comm the pipeline took off it.
    pub t_reduce_hidden_s: f64,
    /// Chunks dispatched through the steal queue instead of a static
    /// owner: the dynamic tail plus every chunk re-issued from a stalled
    /// rank. 0 on the staged backend.
    pub chunks_stolen: usize,
    /// Steal-protocol messages the root served: one grant per stolen
    /// chunk claimed by a worker plus one final `Done` per live worker.
    /// Deterministic for a fixed fault seed.
    pub steal_requests: usize,
    /// Busiest rank's compute seconds in the distributed build (0 when
    /// unmeasured; min/max bracket the load balance the steal queue
    /// achieved).
    pub rank_busy_max_s: f64,
    /// Least-busy *live* rank's compute seconds (0 when unmeasured).
    pub rank_busy_min_s: f64,
    /// Compute seconds summed over all ranks.
    pub rank_busy_total_s: f64,
    /// Seconds ranks spent blocked on the steal/stream protocol (waiting
    /// for grants or draining receives), summed over all ranks.
    pub rank_idle_total_s: f64,
}

impl BuildProfile {
    /// Accumulate another build's profile into this one (times and
    /// counters both add — used by SCF loops that profile per iteration).
    pub fn merge(&mut self, other: &BuildProfile) {
        self.t_ao_eval_s += other.t_ao_eval_s;
        self.t_fft_s += other.t_fft_s;
        self.t_kernel_s += other.t_kernel_s;
        self.t_exec_s += other.t_exec_s;
        self.t_reduce_s += other.t_reduce_s;
        self.pairs_screened += other.pairs_screened;
        self.pairs_considered += other.pairs_considered;
        self.pairs_computed += other.pairs_computed;
        self.pairs_reused += other.pairs_reused;
        self.cache_hits += other.cache_hits;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.bytes_reduced += other.bytes_reduced;
        self.steady_allocs += other.steady_allocs;
        self.ranks_stalled += other.ranks_stalled;
        self.chunks_reissued += other.chunks_reissued;
        self.comm_retries += other.comm_retries;
        self.t_reduce_hidden_s += other.t_reduce_hidden_s;
        self.chunks_stolen += other.chunks_stolen;
        self.steal_requests += other.steal_requests;
        self.rank_busy_max_s = self.rank_busy_max_s.max(other.rank_busy_max_s);
        // 0 means "unmeasured", not "a rank that did nothing": only a
        // populated min participates.
        self.rank_busy_min_s = match (self.rank_busy_min_s, other.rank_busy_min_s) {
            (0.0, b) => b,
            (a, 0.0) => a,
            (a, b) => a.min(b),
        };
        self.rank_busy_total_s += other.rank_busy_total_s;
        self.rank_idle_total_s += other.rank_idle_total_s;
    }

    /// Fraction of the build's reduce/reassembly the pipelined backend hid
    /// behind compute: `hidden / (hidden + exposed)`. 0 for a staged or
    /// serial build (nothing was overlapped).
    pub fn exec_reduce_overlap_frac(&self) -> f64 {
        let denom = self.t_reduce_hidden_s + self.t_reduce_s;
        if denom > 0.0 {
            self.t_reduce_hidden_s / denom
        } else {
            0.0
        }
    }

    /// Whether this profile carries any evidence of a build (a populated
    /// profile has either elapsed execute time or non-zero work counters).
    pub fn is_populated(&self) -> bool {
        self.t_exec_s > 0.0
            || self.pairs_computed > 0
            || self.pairs_reused > 0
            || self.pairs_screened > 0
    }
}

/// Per-build window over the process-wide FFT plan-cache counters: open
/// before the build, [`PlanCacheWindow::record`] after, and the delta
/// lands in the profile's `plan_cache_hits`/`plan_cache_misses`. The
/// counters are process-global, so concurrent builds may attribute each
/// other's lookups — acceptable for the aggregate hit rates the serve
/// bench reports, and exact in single-build contexts.
pub(crate) struct PlanCacheWindow {
    start: liair_math::plan::PlanCacheStats,
}

impl PlanCacheWindow {
    pub(crate) fn open() -> PlanCacheWindow {
        PlanCacheWindow {
            start: liair_math::plan::plan_cache_stats(),
        }
    }

    pub(crate) fn record(self, profile: &mut BuildProfile) {
        let delta = liair_math::plan::plan_cache_stats().since(&self.start);
        profile.plan_cache_hits += delta.hits;
        profile.plan_cache_misses += delta.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_times_and_counters() {
        let mut a = BuildProfile {
            t_exec_s: 1.0,
            pairs_computed: 3,
            ..Default::default()
        };
        let b = BuildProfile {
            t_exec_s: 0.5,
            t_fft_s: 0.25,
            pairs_computed: 2,
            pairs_reused: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.t_exec_s, 1.5);
        assert_eq!(a.t_fft_s, 0.25);
        assert_eq!(a.pairs_computed, 5);
        assert_eq!(a.pairs_reused, 7);
    }

    #[test]
    fn merge_adds_plan_cache_counters() {
        let mut a = BuildProfile {
            plan_cache_hits: 10,
            plan_cache_misses: 2,
            ..Default::default()
        };
        let b = BuildProfile {
            plan_cache_hits: 5,
            plan_cache_misses: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.plan_cache_hits, 15);
        assert_eq!(a.plan_cache_misses, 3);
    }

    #[test]
    fn merge_brackets_busy_extremes_and_overlap_is_bounded() {
        let mut a = BuildProfile {
            rank_busy_min_s: 2.0,
            rank_busy_max_s: 3.0,
            t_reduce_hidden_s: 0.8,
            t_reduce_s: 0.2,
            chunks_stolen: 4,
            steal_requests: 6,
            ..Default::default()
        };
        assert_eq!(a.exec_reduce_overlap_frac(), 0.8);
        let b = BuildProfile {
            rank_busy_min_s: 1.0,
            rank_busy_max_s: 5.0,
            chunks_stolen: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rank_busy_min_s, 1.0);
        assert_eq!(a.rank_busy_max_s, 5.0);
        assert_eq!(a.chunks_stolen, 5);
        assert_eq!(a.steal_requests, 6);
        // An unmeasured profile never drags the min to 0.
        a.merge(&BuildProfile::default());
        assert_eq!(a.rank_busy_min_s, 1.0);
        assert_eq!(BuildProfile::default().exec_reduce_overlap_frac(), 0.0);
    }

    #[test]
    fn default_profile_is_unpopulated() {
        let p = BuildProfile::default();
        assert!(!p.is_populated());
        let q = BuildProfile {
            pairs_computed: 1,
            ..Default::default()
        };
        assert!(q.is_populated());
    }
}
