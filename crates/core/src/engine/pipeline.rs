//! The pipelined exec stage: double-buffered comm/compute overlap with a
//! root-coordinated steal queue.
//!
//! The staged Comm backend runs exec and reduce as synchronous phases —
//! every rank finishes its whole share, then one gather lands everything
//! on the root, so the collective is pure exposed latency and one slow
//! rank stalls the build. This module restructures the same work as an
//! asynchronous pipeline:
//!
//! * **streaming results** — each worker fills one of two rotating chunk
//!   buffers while the previous packet is in flight inside the transport
//!   ([`Comm::send`] is non-blocking), so the root ingests contributions
//!   *while* everyone is still computing;
//! * **progress-driven root** — between its own chunks the root polls
//!   [`Comm::try_recv`]: it drains result packets, serves steal requests,
//!   and collects trailers without ever blocking, which is where the
//!   hidden reduce time (`BuildProfile::t_reduce_hidden_s`) comes from;
//! * **hybrid static + dynamic schedule** — the head of the chunk list is
//!   assigned statically (no coordination traffic for the bulk), the tail
//!   feeds a root-owned steal queue that idle ranks claim one chunk at a
//!   time, absorbing load imbalance and stragglers;
//! * **straggler re-issue on timeout** — a rank the fault model's
//!   out-of-band oracle ([`Comm::peer_stalled`], the RAS stand-in)
//!   declares dead has its chunks fed into the steal queue as soon as its
//!   timeout fires, mid-build, instead of after the final gather.
//!
//! **Canonical-order reassembly invariant.** Every result entry travels
//! as `(chunk id, payload words)`; the root writes it into the canonical
//! slot `id` of one flat output vector regardless of arrival order, steal
//! schedule, or duplicate evaluation (a re-issued chunk replays the
//! identical kernel, so a duplicate overwrites the same bits). The
//! assembled vector is therefore byte-for-byte the serial engine's — the
//! property the cross-backend equivalence suite pins down.
//!
//! **Deterministic steal counters.** The stall set is a pure function of
//! the fault seed, the steal queue holds the same chunk ids in the same
//! order for a fixed workload, every grant moves exactly one chunk, and
//! the root serves the queue itself only when no live worker remains — so
//! `chunks_stolen` and `steal_requests` are replayable for a fixed seed
//! even though the *rank* that wins each chunk races.

use super::profile::BuildProfile;
use super::CommTuning;
use crate::balance::{assign, BalanceStrategy};
use crate::error::{Error, Result};
use liair_grid::KernelTimings;
use liair_runtime::{run_spmd_cfg, Comm, CommConfig, CommResult};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Chunk entries per streamed result packet: small enough that the first
/// packet establishes contact early, large enough to amortize per-message
/// overhead.
const STREAM_BATCH: usize = 2;

/// The dynamically stolen tail is `nitems / STATIC_FRAC_DENOM`; the rest
/// of the chunk list is assigned statically up front.
const STATIC_FRAC_DENOM: usize = 4;

/// Engine-reserved message kinds (bit 63 stays clear — that space belongs
/// to the runtime's collectives). The low 40 bits carry the packet or
/// request sequence number, so every message has a unique tag and the
/// transport's per-tag stash keeps streams ordered.
const TAG_KIND_SHIFT: u64 = 40;
/// Worker → root: `[id, payload…]×` result entries.
const T_RESULT: u64 = 1 << TAG_KIND_SHIFT;
/// Worker → root: empty steal request.
const T_REQUEST: u64 = 2 << TAG_KIND_SHIFT;
/// Root → worker: `[chunk id]` grant, or empty = no more work.
const T_GRANT: u64 = 3 << TAG_KIND_SHIFT;
/// Worker → root: `[fft_s, kernel_s, grew, busy_s, idle_s, npackets]`.
const T_TRAILER: u64 = 4 << TAG_KIND_SHIFT;
/// Trailer payload length (see [`T_TRAILER`]).
const TRAILER_LEN: usize = 6;

/// The static description of one pipelined region.
pub(crate) struct PipelineJob {
    /// Chunk count (canonical ids `0..nitems`).
    pub nitems: usize,
    /// Payload words per chunk.
    pub width: usize,
    /// Virtual rank count.
    pub nranks: usize,
    /// Static assignment strategy for the head of the chunk list.
    pub strategy: BalanceStrategy,
}

/// The root-side schedule derived from a [`PipelineJob`].
struct Schedule {
    nitems: usize,
    width: usize,
    /// Static share per rank (chunk ids `0..nstatic`).
    per_rank: Vec<Vec<usize>>,
    /// First tail chunk id; the initial steal queue is `nstatic..nitems`.
    nstatic: usize,
    /// Declare silent ranks dead (oracle-confirmed) once this much wall
    /// time has passed — `None` without a fault plan, where nobody stalls.
    stall_timeout: Option<Duration>,
}

/// Everything the root learned from one pipelined region, merged into the
/// [`BuildProfile`] by [`run_pipelined`].
#[derive(Debug, Default)]
struct RootOut {
    flat: Vec<f64>,
    fft_s: f64,
    kernel_s: f64,
    grew: usize,
    hidden_s: f64,
    exposed_s: f64,
    bytes: usize,
    ranks_stalled: usize,
    chunks_reissued: usize,
    chunks_stolen: usize,
    steal_requests: usize,
    /// The root's own compute seconds (its static share + queue work).
    root_busy_s: f64,
    /// Busy/idle brackets over the worker trailers.
    busy_min_s: f64,
    busy_max_s: f64,
    busy_total_s: f64,
    idle_total_s: f64,
}

/// Per-worker bookkeeping on the root.
#[derive(Debug, Default)]
struct WorkerState {
    /// Next result-packet sequence number expected.
    next_seq: u64,
    /// Next steal-request sequence number expected.
    next_req: u64,
    /// A received request awaiting its reply (replies are deferred while
    /// an undeclared straggler could still grow the queue).
    pending_req: Option<u64>,
    /// First message seen — a contacted rank is provably live.
    contacted: bool,
    /// Declared dead by the oracle after the timeout fired.
    declared_stalled: bool,
    /// Told there is no more work (its trailer is now unconditional).
    done_granted: bool,
    /// Trailer words, once received.
    trailer: Option<Vec<f64>>,
    /// Trailer merged and every announced packet drained.
    finalized: bool,
}

impl WorkerState {
    /// A resolved rank can no longer surprise the queue: it either proved
    /// itself live or was written off.
    fn resolved(&self) -> bool {
        self.contacted || self.declared_stalled
    }
}

/// Write the `(id, payload…)` entries of one result packet into their
/// canonical slots. Duplicates (an original racing its re-issue)
/// overwrite with identical bits.
fn ingest(pkt: &[f64], width: usize, flat: &mut [f64], filled: &mut [bool]) {
    for e in pkt.chunks_exact(width + 1) {
        let id = e[0] as usize;
        filled[id] = true;
        flat[id * width..(id + 1) * width].copy_from_slice(&e[1..]);
    }
}

/// Evaluate chunk `ci` on the root directly into its canonical slot.
fn eval_local<S, F>(
    eval: &F,
    sc: &mut S,
    ci: usize,
    entry: &mut Vec<f64>,
    out: &mut RootOut,
    filled: &mut [bool],
) where
    F: Fn(&mut S, usize, &mut Vec<f64>) -> (KernelTimings, usize),
{
    let t0 = Instant::now();
    entry.clear();
    let (t, g) = eval(sc, ci, entry);
    let w = entry.len();
    out.flat[ci * w..(ci + 1) * w].copy_from_slice(entry);
    filled[ci] = true;
    out.fft_s += t.fft_s;
    out.kernel_s += t.kernel_s;
    out.grew += g;
    out.root_busy_s += t0.elapsed().as_secs_f64();
}

/// The non-root side of the protocol: compute the static share streaming
/// results in double-buffered packets, then steal from the root's queue
/// until told there is nothing left, then send the timing trailer.
fn worker_drive<S, F>(
    comm: &dyn Comm,
    width: usize,
    mine: &[usize],
    mut sc: S,
    eval: &F,
) -> CommResult<()>
where
    F: Fn(&mut S, usize, &mut Vec<f64>) -> (KernelTimings, usize),
{
    let cap = STREAM_BATCH * (width + 1);
    // Two rotating buffers: while one packet is in flight inside the
    // transport, the other buffer fills — the double buffering of the
    // pipeline.
    let mut bufs = [Vec::with_capacity(cap), Vec::with_capacity(cap)];
    let mut cur = 0usize;
    let mut entries = 0usize;
    let mut npackets = 0u64;
    let mut tim = KernelTimings::default();
    let mut grew = 0usize;
    let mut busy_s = 0.0f64;
    let mut idle_s = 0.0f64;
    {
        let mut compute = |ci: usize, sc: &mut S, bufs: &mut [Vec<f64>; 2], cur: &mut usize| {
            let t0 = Instant::now();
            bufs[*cur].push(ci as f64);
            let (t, g) = eval(sc, ci, &mut bufs[*cur]);
            busy_s += t0.elapsed().as_secs_f64();
            tim.merge(t);
            grew += g;
            entries += 1;
            if entries >= STREAM_BATCH {
                let pkt = std::mem::replace(&mut bufs[*cur], Vec::with_capacity(cap));
                let sent = comm.send(0, T_RESULT | npackets, pkt);
                npackets += 1;
                entries = 0;
                *cur ^= 1;
                sent
            } else {
                Ok(())
            }
        };
        for &ci in mine {
            compute(ci, &mut sc, &mut bufs, &mut cur)?;
        }
        // Dynamic tail: one outstanding request, one chunk per grant, until
        // the root replies with an empty grant (no more work anywhere).
        let mut req = 0u64;
        loop {
            comm.send(0, T_REQUEST | req, Vec::new())?;
            let t0 = Instant::now();
            let grant = comm.recv(0, T_GRANT | req)?;
            idle_s += t0.elapsed().as_secs_f64();
            req += 1;
            match grant.first() {
                Some(&ci) => compute(ci as usize, &mut sc, &mut bufs, &mut cur)?,
                None => break,
            }
        }
    }
    if entries > 0 {
        let pkt = std::mem::take(&mut bufs[cur]);
        comm.send(0, T_RESULT | npackets, pkt)?;
        npackets += 1;
    }
    comm.send(
        0,
        T_TRAILER,
        vec![
            tim.fft_s,
            tim.kernel_s,
            grew as f64,
            busy_s,
            idle_s,
            npackets as f64,
        ],
    )?;
    Ok(())
}

/// The root side: interleave its own static chunks with non-blocking
/// progress sweeps, own the steal queue, declare stragglers, and
/// reassemble every contribution in canonical order.
fn root_drive<S, I, F>(comm: &dyn Comm, sched: &Schedule, init: &I, eval: &F) -> CommResult<RootOut>
where
    I: Fn() -> S,
    F: Fn(&mut S, usize, &mut Vec<f64>) -> (KernelTimings, usize),
{
    let p = comm.size();
    let (nitems, width) = (sched.nitems, sched.width);
    let t_start = Instant::now();
    let mut out = RootOut {
        flat: vec![0.0; nitems * width],
        busy_min_s: f64::INFINITY,
        ..Default::default()
    };
    let mut filled = vec![false; nitems];
    let mut queue: VecDeque<usize> = (sched.nstatic..nitems).collect();
    let mut ws: Vec<WorkerState> = (0..p).map(|_| WorkerState::default()).collect();
    ws[0].contacted = true; // the root is trivially live
    let mut sc = init();
    let mut entry = Vec::with_capacity(width);

    // One non-blocking progress sweep over every worker; expands in place
    // (a macro, not a closure, so it can split-borrow the local state).
    // Evaluates to whether anything moved.
    macro_rules! sweep {
        () => {{
            let mut progressed = false;
            for w in 1..p {
                if ws[w].finalized || ws[w].declared_stalled {
                    continue;
                }
                // Drain streamed result packets in sequence order.
                while let Some(pkt) = comm.try_recv(w, T_RESULT | ws[w].next_seq)? {
                    ingest(&pkt, width, &mut out.flat, &mut filled);
                    out.bytes += pkt.len() * std::mem::size_of::<f64>();
                    ws[w].next_seq += 1;
                    ws[w].contacted = true;
                    progressed = true;
                }
                // Pick up a steal request (workers keep one outstanding).
                if ws[w].pending_req.is_none() && !ws[w].done_granted {
                    if comm.try_recv(w, T_REQUEST | ws[w].next_req)?.is_some() {
                        ws[w].pending_req = Some(ws[w].next_req);
                        ws[w].next_req += 1;
                        ws[w].contacted = true;
                        progressed = true;
                    }
                }
                // Reply when possible. An empty queue defers the reply
                // until every rank is resolved — an undeclared straggler
                // could still feed the queue, and a premature `done`
                // would send the thief home early.
                if let Some(req) = ws[w].pending_req {
                    if let Some(ci) = queue.pop_front() {
                        comm.send(w, T_GRANT | req, vec![ci as f64])?;
                        ws[w].pending_req = None;
                        out.chunks_stolen += 1;
                        out.steal_requests += 1;
                        progressed = true;
                    } else if (1..p).all(|r| ws[r].resolved()) {
                        comm.send(w, T_GRANT | req, Vec::new())?;
                        ws[w].pending_req = None;
                        ws[w].done_granted = true;
                        out.steal_requests += 1;
                        progressed = true;
                    }
                }
                if ws[w].trailer.is_none() {
                    if let Some(tr) = comm.try_recv(w, T_TRAILER)? {
                        debug_assert_eq!(tr.len(), TRAILER_LEN);
                        out.bytes += tr.len() * std::mem::size_of::<f64>();
                        ws[w].trailer = Some(tr);
                        ws[w].contacted = true;
                        progressed = true;
                    }
                }
                // Finalize once every announced packet is drained.
                if let Some(tr) = &ws[w].trailer {
                    if ws[w].next_seq >= tr[5] as u64 {
                        out.fft_s += tr[0];
                        out.kernel_s += tr[1];
                        out.grew += tr[2] as usize;
                        out.busy_min_s = out.busy_min_s.min(tr[3]);
                        out.busy_max_s = out.busy_max_s.max(tr[3]);
                        out.busy_total_s += tr[3];
                        out.idle_total_s += tr[4];
                        ws[w].finalized = true;
                        progressed = true;
                    }
                }
            }
            // Straggler path: once a silent rank's timeout fires and the
            // out-of-band oracle confirms it is dead, feed its entire
            // static share to the steal queue *now*, mid-build — the
            // survivors absorb it instead of the root after the gather.
            if let Some(timeout) = sched.stall_timeout {
                if t_start.elapsed() >= timeout {
                    for w in 1..p {
                        if !ws[w].resolved() && comm.peer_stalled(w) {
                            ws[w].declared_stalled = true;
                            out.ranks_stalled += 1;
                            for &ci in &sched.per_rank[w] {
                                queue.push_back(ci);
                                out.chunks_reissued += 1;
                            }
                            progressed = true;
                        }
                    }
                }
            }
            progressed
        }};
    }

    // Phase 1 — the root's own static chunks, one progress sweep after
    // each: everything the sweeps accomplish here is reduce/steal work
    // hidden behind compute.
    for &ci in &sched.per_rank[0] {
        eval_local(eval, &mut sc, ci, &mut entry, &mut out, &mut filled);
        let t0 = Instant::now();
        sweep!();
        out.hidden_s += t0.elapsed().as_secs_f64();
    }

    // Phase 2 — service loop: whatever the root waits on here is the
    // exposed remainder of the reduce.
    let t_drain = Instant::now();
    loop {
        if queue.is_empty() && (1..p).all(|w| ws[w].finalized || ws[w].declared_stalled) {
            break;
        }
        let progressed = sweep!();
        // No live thief will ever come for the queue — the root is the
        // thief of last resort (single-rank regions, every worker dead).
        if !(1..p).any(|w| !ws[w].declared_stalled) {
            while let Some(ci) = queue.pop_front() {
                out.chunks_stolen += 1;
                eval_local(eval, &mut sc, ci, &mut entry, &mut out, &mut filled);
            }
            continue;
        }
        if !progressed {
            // A worker that was told `done` owes its remaining packets
            // and its trailer unconditionally — block for them instead of
            // spinning. A blocking receive that exhausts its retry budget
            // writes the rank off; the safety net below recomputes
            // whatever it still owed.
            let mut blocked = false;
            for w in 1..p {
                if ws[w].done_granted && !ws[w].finalized && !ws[w].declared_stalled {
                    let want_trailer = ws[w].trailer.is_none();
                    let got = if want_trailer {
                        comm.recv(w, T_TRAILER)
                    } else {
                        comm.recv(w, T_RESULT | ws[w].next_seq)
                    };
                    match got {
                        Ok(data) => {
                            out.bytes += data.len() * std::mem::size_of::<f64>();
                            if want_trailer {
                                ws[w].trailer = Some(data);
                            } else {
                                ingest(&data, width, &mut out.flat, &mut filled);
                                ws[w].next_seq += 1;
                            }
                        }
                        Err(_) => {
                            ws[w].declared_stalled = true;
                            out.ranks_stalled += 1;
                        }
                    }
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                // Workers are heads-down computing; don't burn their cores.
                std::thread::yield_now();
            }
        }
    }
    // Safety net: anything still unfilled (a worker written off after
    // chunks were granted to it) is recomputed locally through the
    // identical kernel — bit-identical contributions in the same slots.
    for ci in 0..nitems {
        if !filled[ci] {
            out.chunks_reissued += 1;
            eval_local(eval, &mut sc, ci, &mut entry, &mut out, &mut filled);
        }
    }
    out.exposed_s = t_drain.elapsed().as_secs_f64();
    // The root's own compute participates in the busy bracket; its
    // phase-2 wait is idle time like any worker's.
    out.busy_min_s = out.busy_min_s.min(out.root_busy_s);
    out.busy_max_s = out.busy_max_s.max(out.root_busy_s);
    out.busy_total_s += out.root_busy_s;
    out.idle_total_s += out.exposed_s;
    Ok(out)
}

/// Run a [`PipelineJob`] over the pipelined Comm backend and return the
/// canonical flat output (`nitems × width` words, chunk-major). `eval`
/// appends exactly `width` words for chunk `ci` and reports its kernel
/// timings and scratch growth — the identical closure every other backend
/// runs, which is what keeps the pipeline bit-identical to them.
pub(crate) fn run_pipelined<S, I, F>(
    job: &PipelineJob,
    init: &I,
    eval: &F,
    tuning: &CommTuning,
    profile: &mut BuildProfile,
) -> Result<Vec<f64>>
where
    S: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize, &mut Vec<f64>) -> (KernelTimings, usize) + Send + Sync,
{
    if job.nranks == 0 {
        return Err(Error::InvalidConfig("need at least one rank".into()));
    }
    if job.nitems == 0 {
        return Ok(Vec::new());
    }
    // Hybrid schedule: static head (no coordination traffic for the bulk
    // of the work), stolen tail (absorbs imbalance and stragglers). A
    // single rank keeps everything static — there is nobody to steal.
    let ntail = if job.nranks == 1 {
        0
    } else {
        job.nitems / STATIC_FRAC_DENOM
    };
    let nstatic = job.nitems - ntail;
    let costs = vec![1.0; nstatic];
    let sched = Schedule {
        nitems: job.nitems,
        width: job.width,
        per_rank: assign(&costs, job.nranks, job.strategy).per_rank,
        nstatic,
        stall_timeout: tuning.fault.map(|plan| plan.base_timeout),
    };
    let cfg = CommConfig {
        mode: tuning.collectives,
        fault: tuning.fault,
        torus: None,
    };
    let run = run_spmd_cfg(job.nranks, cfg, |comm| -> CommResult<Option<RootOut>> {
        if comm.stalled() {
            return Ok(None);
        }
        if comm.rank() == 0 {
            root_drive(comm, &sched, init, eval).map(Some)
        } else {
            worker_drive(
                comm,
                sched.width,
                &sched.per_rank[comm.rank()],
                init(),
                eval,
            )
            .map(|()| None)
        }
    })
    .map_err(Error::Comm)?;
    if let Some((_, _, _, _, retries)) = run.fault_stats {
        profile.comm_retries += retries;
    }
    let out = run
        .results
        .into_iter()
        .next()
        .expect("nranks >= 1")
        .map_err(Error::Comm)?
        .expect("rank 0 never stalls and drives the pipeline");
    profile.t_fft_s += out.fft_s;
    profile.t_kernel_s += out.kernel_s;
    profile.steady_allocs += out.grew;
    profile.bytes_reduced += out.bytes + out.flat.len() * std::mem::size_of::<f64>();
    profile.t_reduce_hidden_s += out.hidden_s;
    profile.t_reduce_s += out.exposed_s;
    profile.ranks_stalled += out.ranks_stalled;
    profile.chunks_reissued += out.chunks_reissued;
    profile.chunks_stolen += out.chunks_stolen;
    profile.steal_requests += out.steal_requests;
    profile.rank_busy_max_s = profile.rank_busy_max_s.max(out.busy_max_s);
    profile.rank_busy_min_s = match (profile.rank_busy_min_s, out.busy_min_s) {
        (0.0, b) => b,
        (a, b) => a.min(b),
    };
    profile.rank_busy_total_s += out.busy_total_s;
    profile.rank_idle_total_s += out.idle_total_s;
    Ok(out.flat)
}
