//! # liair-core
//!
//! The paper's primary contribution: a communication-avoiding,
//! pair-distributed evaluation of Hartree–Fock exact exchange (HFX) for
//! condensed-phase ab initio MD, with controllable accuracy.
//!
//! The exchange energy over occupied orbitals decomposes into independent
//! orbital-pair terms `(ij|ij) = ∬ ρ_ij(r) ρ_ij(r') v_C`, each costing one
//! forward/inverse FFT pair on a small pair-local grid. The scheme:
//!
//! 1. **Localize** the occupied orbitals (`liair-grid::localize`) so pair
//!    magnitudes decay with center distance;
//! 2. **Screen** ([`screening`]) with a single accuracy knob ε — the
//!    surviving pair list is the task list;
//! 3. **Balance** ([`balance`]) tasks across ranks (greedy LPT by default);
//! 4. **Execute**: node-local threaded FFTs per pair ([`hfx`] — the real
//!    rayon executor), partial energies/potentials combined by *one*
//!    reduction per build instead of per-FFT all-to-alls — this
//!    restructuring is the entire 10–20× win;
//! 5. At scale beyond the pair count, pairs are processed by small **node
//!    groups** ([`simulate`]) — the hierarchical second level of
//!    parallelism that keeps 6,291,456 threads busy.
//!
//! [`distributed`] runs the same algorithm over the message-passing runtime
//! (correctness at laptop scale); [`simulate`] prices the same task lists
//! on the BG/Q model (performance at paper scale), alongside the two
//! baselines the paper compares against.
//!
//! All of the above are thin configurations of one staged driver:
//! [`engine::ExchangeEngine`] owns the canonical build pipeline (pair
//! source → execute backend → ordered accumulate), the autotuned kernel
//! choice, and the per-phase [`engine::BuildProfile`] instrumentation.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod balance;
pub mod cachepool;
pub mod distributed;
pub mod domain;
pub mod engine;
pub mod error;
pub mod hfx;
pub mod incremental;
pub mod operator;
pub mod screening;
pub mod simulate;
pub mod workload;

pub use balance::{assign_pairs, Assignment, BalanceStrategy};
pub use cachepool::{CachePoolStats, ExchangeCachePool, SystemKey};
pub use domain::{
    build_pair_list_sharded, exchange_halo, sharded_pair_list_spmd, DomainDecomposition,
    DomainGeometry,
};
pub use engine::{
    BuildProfile, CollectiveMode, CommTuning, EngineBuilder, EngineScratch, ExchangeEngine,
    ExecBackend, FaultPlan, KBuildOutcome, KernelChoice, PairPath, PipelineMode,
};
pub use error::{Error, Result};
pub use hfx::{exchange_energy, exchange_energy_patched, HfxResult};
pub use incremental::{Fingerprint, IncStats, IncrementalExchange};
pub use operator::{
    exchange_operator_grid, rhf_with_grid_exchange, rhf_with_grid_exchange_in_cell,
    rhf_with_grid_exchange_incremental, rhf_with_grid_exchange_scheduled, GridScfResult,
};
pub use screening::{
    build_pair_list, build_pair_list_celllist, source_pairs, CrossBins, EpsSchedule, IncSchedule,
    OrbitalInfo, Pair, PairList,
};
pub use simulate::{simulate_hfx_build, Scheme, SimOutcome};
pub use workload::Workload;
