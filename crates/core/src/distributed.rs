//! The pair-distributed exchange over the message-passing runtime — thin
//! configurations of [`crate::engine::ExchangeEngine`] on the
//! [`ExecBackend::Comm`] backend.
//!
//! Every rank holds the (replicated) orbital fields, claims its share of
//! the balanced chunk list, computes its contributions with the node-local
//! kernel, and a single gather per build lands them on the root — the
//! communication-avoiding structure of the paper. Run over
//! `liair-runtime`'s threaded backend, this is the *correctness* proof of
//! the distributed algorithm; the BG/Q-scale behaviour of the identical
//! task lists is priced in [`crate::simulate`]. Because the engine
//! distributes whole pair chunks and reassembles canonical order before
//! the ordered reduction, the distributed energies and K matrices are
//! bit-identical to the serial backend.

use crate::balance::BalanceStrategy;
use crate::engine::{ExchangeEngine, ExecBackend};
use crate::hfx::HfxResult;
use crate::screening::PairList;
use liair_grid::{PoissonSolver, RealGrid};

/// Compute the exchange energy with `nranks` virtual ranks.
///
/// Deterministic: every rank derives the same chunk assignment from the
/// shared pair list, so no task-coordination messages are needed — only
/// the final gather. Each rank owns one grow-once pair-density scratch
/// and runs the autotuned pair kernel, so the per-pair loop is
/// allocation-free in steady state — the same hot path as the threaded
/// executor.
pub fn distributed_exchange(
    grid: &RealGrid,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
    pairs: &PairList,
    nranks: usize,
    strategy: BalanceStrategy,
) -> HfxResult {
    ExchangeEngine::builder(grid, solver)
        .backend(ExecBackend::Comm { nranks, strategy })
        .build()
        .unwrap_or_else(|e| panic!("distributed exchange configuration rejected: {e}"))
        .energy(orbitals, pairs)
}

/// Distributed build of the grid exchange *operator*: the `(occupied j,
/// AO ν)` solve tasks are split round-robin over ranks; per-task output
/// columns combine on the root in canonical task order — the
/// message-passing twin of [`crate::operator::exchange_operator_grid`],
/// bit-identical to it. Each rank reuses one grow-once density buffer and
/// Poisson workspace across its whole share of tasks (the per-task
/// allocations of the earlier implementation are gone).
pub fn distributed_exchange_operator(
    basis: &liair_basis::Basis,
    c_occ: &liair_math::Mat,
    nocc: usize,
    grid: &RealGrid,
    solver: &PoissonSolver,
    nranks: usize,
) -> liair_math::Mat {
    ExchangeEngine::builder(grid, solver)
        .backend(ExecBackend::Comm {
            nranks,
            strategy: BalanceStrategy::RoundRobin,
        })
        .build()
        .unwrap_or_else(|e| panic!("distributed K-build configuration rejected: {e}"))
        .k_operator(basis, c_occ, nocc, 0.0)
        .k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hfx::exchange_energy;
    use crate::screening::{source_pairs, OrbitalInfo};
    use liair_basis::Cell;
    use liair_math::approx_eq;
    use liair_math::rng::SplitMix64;
    use liair_math::Vec3;

    /// Synthetic smooth "orbitals": normalized Gaussians on grid points.
    fn synthetic_setup(
        norb: usize,
        n: usize,
    ) -> (RealGrid, PoissonSolver, Vec<Vec<f64>>, PairList) {
        let l = 14.0;
        let grid = RealGrid::cubic(Cell::cubic(l), n);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = SplitMix64::new(42);
        let mut centers = Vec::new();
        for _ in 0..norb {
            centers.push(Vec3::new(
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
            ));
        }
        let fields: Vec<Vec<f64>> = centers
            .iter()
            .map(|&c| {
                let alpha: f64 = 1.1;
                let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
                (0..grid.len())
                    .map(|i| {
                        let d = grid.cell.min_image(c, grid.point_flat(i));
                        norm * (-alpha * d.norm_sqr()).exp()
                    })
                    .collect()
            })
            .collect();
        let infos: Vec<OrbitalInfo> = centers
            .iter()
            .map(|&c| OrbitalInfo {
                center: c,
                spread: 0.7,
            })
            .collect();
        // Route the distributed drivers through the canonical cell-list
        // source (finite ε + periodic cell) — serial and distributed run
        // the identical canonical list.
        let pairs = source_pairs(&infos, 1e-9, Some(&grid.cell));
        (grid, solver, fields, pairs)
    }

    #[test]
    fn distributed_matches_serial() {
        let (grid, solver, fields, pairs) = synthetic_setup(4, 24);
        let serial = exchange_energy(&grid, &solver, &fields, &pairs);
        for nranks in [1, 2, 3, 5] {
            for strat in [BalanceStrategy::RoundRobin, BalanceStrategy::GreedyLpt] {
                let dist = distributed_exchange(&grid, &solver, &fields, &pairs, nranks, strat);
                assert!(
                    approx_eq(dist.energy, serial.energy, 1e-10),
                    "nranks={nranks} {strat:?}: {} vs {}",
                    dist.energy,
                    serial.energy
                );
            }
        }
    }

    #[test]
    fn more_ranks_than_pairs_is_fine() {
        let (grid, solver, fields, pairs) = synthetic_setup(2, 16);
        let serial = exchange_energy(&grid, &solver, &fields, &pairs);
        let dist = distributed_exchange(
            &grid,
            &solver,
            &fields,
            &pairs,
            8,
            BalanceStrategy::GreedyLpt,
        );
        assert!(approx_eq(dist.energy, serial.energy, 1e-10));
    }

    #[test]
    fn distributed_operator_matches_shared_memory() {
        use liair_basis::{systems, Basis};
        use liair_scf::{rhf, ScfOptions};
        let mol = systems::h2();
        let basis0 = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis0, &ScfOptions::default());
        let edge = 14.0;
        let mut mol_c = mol.clone();
        mol_c.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
        let basis = Basis::sto3g(&mol_c);
        let grid = RealGrid::cubic(Cell::cubic(edge), 32);
        let solver = PoissonSolver::isolated(grid);
        let serial =
            crate::operator::exchange_operator_grid(&basis, &scf.c, scf.nocc, &grid, &solver);
        for nranks in [1, 3] {
            let dist =
                distributed_exchange_operator(&basis, &scf.c, scf.nocc, &grid, &solver, nranks);
            let err = dist.sub(&serial).fro_norm();
            assert!(err < 1e-12, "nranks={nranks}: K error {err}");
        }
    }

    #[test]
    fn energy_is_negative_definite() {
        let (grid, solver, fields, pairs) = synthetic_setup(3, 16);
        let dist = distributed_exchange(&grid, &solver, &fields, &pairs, 2, BalanceStrategy::Block);
        assert!(dist.energy < 0.0);
        assert_eq!(dist.pairs_evaluated, pairs.len());
        assert!(dist.profile.is_populated(), "Comm build must fill profile");
        assert!(dist.profile.bytes_reduced > 0, "gather bytes unaccounted");
    }
}
