//! The pair-distributed exchange over the message-passing runtime.
//!
//! Every rank holds the (replicated) orbital fields, claims its share of
//! the balanced pair list, computes partial exchange energies with the
//! node-local kernel, and a single allreduce combines them — one collective
//! per build, the communication-avoiding structure of the paper. Run over
//! `liair-runtime`'s threaded backend, this is the *correctness* proof of
//! the distributed algorithm; the BG/Q-scale behaviour of the identical
//! task lists is priced in [`crate::simulate`].

use crate::balance::{assign_pairs, BalanceStrategy};
use crate::hfx::HfxResult;
use crate::screening::PairList;
use liair_grid::{PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::simd;
use liair_runtime::{run_spmd, Comm};

/// Compute the exchange energy with `nranks` virtual ranks.
///
/// Deterministic: every rank derives the same assignment from the shared
/// pair list, so no task-coordination messages are needed — only the final
/// energy reduction.
///
/// Each rank owns one grow-once pair-density buffer and Poisson workspace
/// and runs the energy-only (forward-transform-only) pair kernel, so the
/// per-pair loop is allocation-free in steady state — the same hot path
/// as the threaded executor, instead of the full potential solve with a
/// fresh density vector per pair it used to run.
pub fn distributed_exchange(
    grid: &RealGrid,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
    pairs: &PairList,
    nranks: usize,
    strategy: BalanceStrategy,
) -> HfxResult {
    let assignment = assign_pairs(pairs, nranks, strategy);
    let level = simd::level();
    let n = grid.len();
    let results = run_spmd(nranks, |comm| {
        let mine = &assignment.per_rank[comm.rank()];
        let mut rho = vec![0.0; n];
        let mut ws = PoissonWorkspace::new();
        let mut partial = 0.0;
        for &t in mine {
            let p = pairs.pairs[t];
            let (i, j) = (p.i as usize, p.j as usize);
            simd::mul_into_with(level, &mut rho, &orbitals[i], &orbitals[j]);
            partial -= p.weight * solver.exchange_pair_energy_with(level, &rho, &mut ws);
        }
        // The single collective of the build.
        let mut buf = [partial];
        comm.allreduce_sum(&mut buf);
        buf[0]
    });
    // Every rank must agree on the reduced value.
    let energy = results[0];
    for (r, &e) in results.iter().enumerate() {
        assert!(
            (e - energy).abs() <= 1e-12 * (1.0 + energy.abs()),
            "rank {r} disagrees: {e} vs {energy}"
        );
    }
    HfxResult {
        energy,
        pairs_evaluated: pairs.len(),
        pairs_screened: pairs.n_candidates - pairs.len(),
        inc: crate::incremental::IncStats::default(),
    }
}

/// Distributed build of the grid exchange *operator*: the `(occupied j,
/// AO ν)` solve tasks are split round-robin over ranks; the partial K
/// matrices combine in one allreduce — the message-passing twin of
/// [`crate::operator::exchange_operator_grid`].
pub fn distributed_exchange_operator(
    basis: &liair_basis::Basis,
    c_occ: &liair_math::Mat,
    nocc: usize,
    grid: &RealGrid,
    solver: &PoissonSolver,
    nranks: usize,
) -> liair_math::Mat {
    use liair_grid::{ao_values, orbitals_on_grid};
    let nao = basis.nao();
    let aos = ao_values(basis, grid);
    let orbitals = orbitals_on_grid(basis, c_occ, nocc, grid);
    let results = run_spmd(nranks, |comm| {
        let mut partial = vec![0.0; nao * nao];
        let mut task = 0usize;
        for j in 0..nocc {
            for nu in 0..nao {
                if task % comm.size() == comm.rank() {
                    let rho: Vec<f64> = orbitals[j]
                        .iter()
                        .zip(&aos[nu])
                        .map(|(a, b)| a * b)
                        .collect();
                    let v = solver.solve(&rho);
                    for mu in 0..nao {
                        let mut acc = 0.0;
                        for p in 0..grid.len() {
                            acc += aos[mu][p] * orbitals[j][p] * v[p];
                        }
                        partial[mu * nao + nu] += acc * grid.dvol();
                    }
                }
                task += 1;
            }
        }
        comm.allreduce_sum(&mut partial);
        partial
    });
    let mut k = liair_math::Mat::from_vec(nao, nao, results.into_iter().next().unwrap());
    // Symmetrize, matching the shared-memory builder.
    for mu in 0..nao {
        for nu in (mu + 1)..nao {
            let s = 0.5 * (k[(mu, nu)] + k[(nu, mu)]);
            k[(mu, nu)] = s;
            k[(nu, mu)] = s;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hfx::exchange_energy;
    use crate::screening::{build_pair_list, OrbitalInfo};
    use liair_basis::Cell;
    use liair_math::approx_eq;
    use liair_math::rng::SplitMix64;
    use liair_math::Vec3;

    /// Synthetic smooth "orbitals": normalized Gaussians on grid points.
    fn synthetic_setup(
        norb: usize,
        n: usize,
    ) -> (RealGrid, PoissonSolver, Vec<Vec<f64>>, PairList) {
        let l = 14.0;
        let grid = RealGrid::cubic(Cell::cubic(l), n);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = SplitMix64::new(42);
        let mut centers = Vec::new();
        for _ in 0..norb {
            centers.push(Vec3::new(
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
            ));
        }
        let fields: Vec<Vec<f64>> = centers
            .iter()
            .map(|&c| {
                let alpha: f64 = 1.1;
                let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
                (0..grid.len())
                    .map(|i| {
                        let d = grid.cell.min_image(c, grid.point_flat(i));
                        norm * (-alpha * d.norm_sqr()).exp()
                    })
                    .collect()
            })
            .collect();
        let infos: Vec<OrbitalInfo> = centers
            .iter()
            .map(|&c| OrbitalInfo {
                center: c,
                spread: 0.7,
            })
            .collect();
        let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
        (grid, solver, fields, pairs)
    }

    #[test]
    fn distributed_matches_serial() {
        let (grid, solver, fields, pairs) = synthetic_setup(4, 24);
        let serial = exchange_energy(&grid, &solver, &fields, &pairs);
        for nranks in [1, 2, 3, 5] {
            for strat in [BalanceStrategy::RoundRobin, BalanceStrategy::GreedyLpt] {
                let dist = distributed_exchange(&grid, &solver, &fields, &pairs, nranks, strat);
                assert!(
                    approx_eq(dist.energy, serial.energy, 1e-10),
                    "nranks={nranks} {strat:?}: {} vs {}",
                    dist.energy,
                    serial.energy
                );
            }
        }
    }

    #[test]
    fn more_ranks_than_pairs_is_fine() {
        let (grid, solver, fields, pairs) = synthetic_setup(2, 16);
        let serial = exchange_energy(&grid, &solver, &fields, &pairs);
        let dist = distributed_exchange(
            &grid,
            &solver,
            &fields,
            &pairs,
            8,
            BalanceStrategy::GreedyLpt,
        );
        assert!(approx_eq(dist.energy, serial.energy, 1e-10));
    }

    #[test]
    fn distributed_operator_matches_shared_memory() {
        use liair_basis::{systems, Basis};
        use liair_scf::{rhf, ScfOptions};
        let mol = systems::h2();
        let basis0 = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis0, &ScfOptions::default());
        let edge = 14.0;
        let mut mol_c = mol.clone();
        mol_c.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
        let basis = Basis::sto3g(&mol_c);
        let grid = RealGrid::cubic(Cell::cubic(edge), 32);
        let solver = PoissonSolver::isolated(grid);
        let serial =
            crate::operator::exchange_operator_grid(&basis, &scf.c, scf.nocc, &grid, &solver);
        for nranks in [1, 3] {
            let dist =
                distributed_exchange_operator(&basis, &scf.c, scf.nocc, &grid, &solver, nranks);
            let err = dist.sub(&serial).fro_norm();
            assert!(err < 1e-12, "nranks={nranks}: K error {err}");
        }
    }

    #[test]
    fn energy_is_negative_definite() {
        let (grid, solver, fields, pairs) = synthetic_setup(3, 16);
        let dist = distributed_exchange(&grid, &solver, &fields, &pairs, 2, BalanceStrategy::Block);
        assert!(dist.energy < 0.0);
        assert_eq!(dist.pairs_evaluated, pairs.len());
    }
}
