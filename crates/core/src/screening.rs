//! Controllable-accuracy pair screening.
//!
//! For localized orbitals `i`, `j` with centers `c_i`, `c_j` and spreads
//! `σ_i`, `σ_j`, the pair density magnitude is bounded by the Gaussian
//! overlap estimate
//!
//! `B_ij = exp(−d²/(2(σ_i² + σ_j²)))`, `d = |c_i − c_j|` (minimum image in
//! periodic cells).
//!
//! Since `(ij|ij)` is quadratic in the pair density, dropping pairs with
//! `B_ij < ε` discards exchange contributions of order `ε²·(ii|ii)` —
//! the error is controlled *monotonically* by the single knob ε, which is
//! the paper's "highly controllable manner". ε = 0 disables screening.

use liair_basis::Cell;
use liair_math::Vec3;
use serde::{Deserialize, Serialize};

/// What screening needs to know about one localized occupied orbital.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitalInfo {
    /// Localization center (Bohr).
    #[serde(with = "vec3_serde")]
    pub center: Vec3,
    /// Spread σ (Bohr).
    pub spread: f64,
}

mod vec3_serde {
    use liair_math::Vec3;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &Vec3, s: S) -> Result<S::Ok, S::Error> {
        [v.x, v.y, v.z].serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec3, D::Error> {
        let a = <[f64; 3]>::deserialize(d)?;
        Ok(Vec3::new(a[0], a[1], a[2]))
    }
}

/// One surviving exchange task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pair {
    /// First orbital index (`i ≤ j`).
    pub i: u32,
    /// Second orbital index.
    pub j: u32,
    /// Multiplicity in the exchange sum: 1 for diagonal, 2 for off-diagonal
    /// (E_x = −Σ_{i≤j} w_ij (ij|ij) for a closed shell).
    pub weight: f64,
    /// The screening bound the pair survived with (1.0 for diagonal).
    pub bound: f64,
}

/// The task list after screening.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairList {
    /// Surviving pairs, `i ≤ j`, sorted lexicographically by `(i, j)` —
    /// the canonical order every builder emits and the engine's chunk
    /// discipline relies on.
    pub pairs: Vec<Pair>,
    /// Total candidate count `N(N+1)/2`.
    pub n_candidates: usize,
    /// Candidate pairs the builder actually inspected (distance/bound
    /// evaluations, diagonals included). `n_candidates` for the O(N²)
    /// scan; O(N·partners) for the cell-list source — the observable
    /// evidence of sub-quadratic sourcing.
    #[serde(default)]
    pub considered: usize,
    /// The ε used.
    pub eps: f64,
}

impl PairList {
    /// Number of surviving pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing survived (only possible for pathological ε > 1).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of candidates kept.
    pub fn survival(&self) -> f64 {
        if self.n_candidates == 0 {
            return 1.0;
        }
        self.pairs.len() as f64 / self.n_candidates as f64
    }

    /// Fraction of the N(N+1)/2 candidates the builder had to inspect
    /// (1.0 for the brute-force scan, ≪ 1 for locality-aware sources).
    pub fn considered_fraction(&self) -> f64 {
        if self.n_candidates == 0 {
            return 1.0;
        }
        self.considered as f64 / self.n_candidates as f64
    }
}

/// The Gaussian-overlap screening bound for one orbital pair.
pub fn pair_bound(a: &OrbitalInfo, b: &OrbitalInfo, cell: Option<&Cell>) -> f64 {
    let d = match cell {
        Some(c) => c.distance(a.center, b.center),
        None => a.center.distance(b.center),
    };
    let denom = 2.0 * (a.spread * a.spread + b.spread * b.spread);
    assert!(denom > 0.0, "orbital spreads must be positive");
    (-d * d / denom).exp()
}

/// Distance beyond which a pair of spread-σ orbitals drops below ε.
pub fn cutoff_radius(sigma_a: f64, sigma_b: f64, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps <= 1.0);
    (2.0 * (sigma_a * sigma_a + sigma_b * sigma_b) * (1.0 / eps).ln()).sqrt()
}

/// Build the screened pair list over `orbitals` with threshold `eps`
/// (`eps = 0` keeps everything); distances use the minimum image if a
/// periodic cell is given.
pub fn build_pair_list(orbitals: &[OrbitalInfo], eps: f64, cell: Option<&Cell>) -> PairList {
    let n = orbitals.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        pairs.push(Pair {
            i: i as u32,
            j: i as u32,
            weight: 1.0,
            bound: 1.0,
        });
        for j in (i + 1)..n {
            let b = pair_bound(&orbitals[i], &orbitals[j], cell);
            if b >= eps {
                pairs.push(Pair {
                    i: i as u32,
                    j: j as u32,
                    weight: 2.0,
                    bound: b,
                });
            }
        }
    }
    let considered = n * (n + 1) / 2;
    PairList {
        pairs,
        n_candidates: considered,
        considered,
        eps,
    }
}

/// The engine's canonical pair source. Routes to the O(N·partners)
/// cell-list builder whenever a periodic cell and a finite threshold
/// (`0 < ε ≤ 1`) are present, and falls back to the O(N²) scan otherwise
/// (ε = 0 keeps every pair, so there is no cutoff radius to bin by).
/// Every route emits the identical canonical `(i, j)`-sorted list, so
/// callers can switch freely without perturbing a single bit downstream.
pub fn source_pairs(orbitals: &[OrbitalInfo], eps: f64, cell: Option<&Cell>) -> PairList {
    match cell {
        Some(c) if eps > 0.0 && eps <= 1.0 => {
            build_pair_list_celllist(orbitals, eps, c).expect("eps range checked")
        }
        _ => build_pair_list(orbitals, eps, cell),
    }
}

/// Per-axis bin index set within `shells` of `center` on a periodic axis
/// of `nb` bins (deduplicated when the shell range wraps the whole axis).
fn axis_bin_range(center: usize, shells: usize, nb: usize) -> Vec<usize> {
    if 2 * shells + 1 >= nb {
        return (0..nb).collect();
    }
    (-(shells as i64)..=shells as i64)
        .map(|s| (center as i64 + s).rem_euclid(nb as i64) as usize)
        .collect()
}

/// Linear-scaling pair-list construction for large condensed systems,
/// O(N·partners) instead of O(N²); the result is identical to
/// [`build_pair_list`] — same canonical order, same bound bits.
///
/// Orbitals are binned by wrapped center; the pair `(i, j)` is *claimed*
/// by its wider partner (ties by index), which searches only its own
/// cutoff radius `r_σ = cutoff_radius(σ, σ, eps)` — exact because
/// `cutoff_radius(σ, σ', eps) ≤ r_σ` whenever `σ' ≤ σ`. The per-orbital
/// search radius means a dense population of narrow orbitals never pays
/// for one wide outlier (the old global `sigma_max` bin sizing degraded
/// every orbital's search to the widest cutoff).
///
/// Needs a finite cutoff radius: `0 < eps ≤ 1`, else
/// [`crate::error::Error::InvalidEps`].
pub fn build_pair_list_celllist(
    orbitals: &[OrbitalInfo],
    eps: f64,
    cell: &Cell,
) -> crate::error::Result<PairList> {
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(crate::error::Error::InvalidEps { eps });
    }
    let n = orbitals.len();
    if n == 0 {
        return Ok(PairList {
            pairs: Vec::new(),
            n_candidates: 0,
            considered: 0,
            eps,
        });
    }
    // Bin width from the *median* self-cutoff: the typical orbital then
    // searches O(1) shells regardless of the spread distribution's tail.
    let mut spreads: Vec<f64> = orbitals.iter().map(|o| o.spread).collect();
    spreads.sort_by(f64::total_cmp);
    let sigma_med = spreads[n / 2];
    let target = cutoff_radius(sigma_med, sigma_med, eps).max(1e-9);
    // Cap total bins at ~8N so sparse systems in huge cells stay O(N).
    let cap = (((n as f64).cbrt().ceil() as usize) * 2).max(1);
    let nbins = |l: f64| ((l / target).floor() as usize).clamp(1, cap);
    let nb = [
        nbins(cell.lengths.x),
        nbins(cell.lengths.y),
        nbins(cell.lengths.z),
    ];
    let width = [
        cell.lengths.x / nb[0] as f64,
        cell.lengths.y / nb[1] as f64,
        cell.lengths.z / nb[2] as f64,
    ];
    let bin_of = |p: liair_math::Vec3| -> [usize; 3] {
        let w = cell.wrap(p);
        [
            ((w.x / cell.lengths.x * nb[0] as f64) as usize).min(nb[0] - 1),
            ((w.y / cell.lengths.y * nb[1] as f64) as usize).min(nb[1] - 1),
            ((w.z / cell.lengths.z * nb[2] as f64) as usize).min(nb[2] - 1),
        ]
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nb[0] * nb[1] * nb[2]];
    let mut home = Vec::with_capacity(n);
    for o in orbitals {
        let b = bin_of(o.center);
        home.push(b);
        bins[(b[0] * nb[1] + b[1]) * nb[2] + b[2]].push((home.len() - 1) as u32);
    }
    // A pair is claimed exactly once, by its wider partner.
    let claims = |i: usize, j: usize| -> bool {
        let (si, sj) = (orbitals[i].spread, orbitals[j].spread);
        si > sj || (si == sj && i < j)
    };
    let mut pairs = Vec::with_capacity(2 * n);
    let mut considered = n; // the always-kept diagonals
    for i in 0..n {
        pairs.push(Pair {
            i: i as u32,
            j: i as u32,
            weight: 1.0,
            bound: 1.0,
        });
        // Tiny inflation guards the shell count against the float rounding
        // of the radius/width quotient right at an integer boundary.
        let ri = cutoff_radius(orbitals[i].spread, orbitals[i].spread, eps) * (1.0 + 1e-12);
        let shells: Vec<[usize; 3]> = {
            let sx = axis_bin_range(home[i][0], (ri / width[0]).ceil() as usize, nb[0]);
            let sy = axis_bin_range(home[i][1], (ri / width[1]).ceil() as usize, nb[1]);
            let sz = axis_bin_range(home[i][2], (ri / width[2]).ceil() as usize, nb[2]);
            let mut out = Vec::with_capacity(sx.len() * sy.len() * sz.len());
            for &x in &sx {
                for &y in &sy {
                    for &z in &sz {
                        out.push([x, y, z]);
                    }
                }
            }
            out
        };
        for b in shells {
            for &cand in &bins[(b[0] * nb[1] + b[1]) * nb[2] + b[2]] {
                let j = cand as usize;
                if j == i || !claims(i, j) {
                    continue;
                }
                considered += 1;
                let bound = pair_bound(&orbitals[i], &orbitals[j], Some(cell));
                if bound >= eps {
                    pairs.push(Pair {
                        i: i.min(j) as u32,
                        j: i.max(j) as u32,
                        weight: 2.0,
                        bound,
                    });
                }
            }
        }
    }
    // Each surviving pair was claimed by exactly one orbital and each bin
    // visited once, so sorting restores the canonical (i, j) order with no
    // duplicates (the dedup is a cheap invariant guard).
    pairs.sort_unstable_by_key(|p| (p.i, p.j));
    pairs.dedup_by_key(|p| (p.i, p.j));
    Ok(PairList {
        pairs,
        n_candidates: n * (n + 1) / 2,
        considered,
        eps,
    })
}

/// Locality-aware source for the *cross* task list of the K path: bins
/// `cols` (the AOs) once in their bounding box so each row (a localized
/// occupied orbital) inspects only columns within its cutoff radius —
/// O(rows·partners) instead of O(rows·cols). Partner sets are exactly the
/// brute filter `pair_bound(row, col, None) ≥ eps`, returned ascending,
/// so the canonical j-major ν-ascending task order is preserved bit for
/// bit.
pub struct CrossBins {
    lo: Vec3,
    nb: [usize; 3],
    width: [f64; 3],
    bins: Vec<Vec<u32>>,
    sigma_col_max: f64,
    eps: f64,
}

impl CrossBins {
    /// Bin the column orbitals. Needs `0 < eps ≤ 1` (a finite radius).
    pub fn new(cols: &[OrbitalInfo], eps: f64) -> crate::error::Result<CrossBins> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(crate::error::Error::InvalidEps { eps });
        }
        let n = cols.len().max(1);
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for c in cols {
            lo = Vec3::new(
                lo.x.min(c.center.x),
                lo.y.min(c.center.y),
                lo.z.min(c.center.z),
            );
            hi = Vec3::new(
                hi.x.max(c.center.x),
                hi.y.max(c.center.y),
                hi.z.max(c.center.z),
            );
        }
        if cols.is_empty() {
            lo = Vec3::splat(0.0);
            hi = Vec3::splat(0.0);
        }
        let mut spreads: Vec<f64> = cols.iter().map(|o| o.spread).collect();
        spreads.sort_by(f64::total_cmp);
        let sigma_med = spreads.get(cols.len() / 2).copied().unwrap_or(1.0);
        let sigma_col_max = spreads.last().copied().unwrap_or(1.0);
        let target = cutoff_radius(sigma_med, sigma_med, eps).max(1e-9);
        let cap = (((n as f64).cbrt().ceil() as usize) * 2).max(1);
        let nbins = |l: f64| ((l / target).floor() as usize).clamp(1, cap);
        let ext = hi - lo;
        let nb = [nbins(ext.x), nbins(ext.y), nbins(ext.z)];
        let width = [
            (ext.x / nb[0] as f64).max(1e-9),
            (ext.y / nb[1] as f64).max(1e-9),
            (ext.z / nb[2] as f64).max(1e-9),
        ];
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nb[0] * nb[1] * nb[2]];
        let clampi = |v: f64, n: usize| (v as i64).clamp(0, n as i64 - 1) as usize;
        for (k, c) in cols.iter().enumerate() {
            let bx = clampi((c.center.x - lo.x) / width[0], nb[0]);
            let by = clampi((c.center.y - lo.y) / width[1], nb[1]);
            let bz = clampi((c.center.z - lo.z) / width[2], nb[2]);
            bins[(bx * nb[1] + by) * nb[2] + bz].push(k as u32);
        }
        Ok(CrossBins {
            lo,
            nb,
            width,
            bins,
            sigma_col_max,
            eps,
        })
    }

    /// Collect into `out` (ascending) every column index whose bound
    /// against `row` survives ε; returns the number of candidates
    /// inspected. Exactly equal to filtering `0..cols.len()` brute-force.
    pub fn partners(&self, row: &OrbitalInfo, cols: &[OrbitalInfo], out: &mut Vec<usize>) -> usize {
        out.clear();
        let r = cutoff_radius(row.spread, self.sigma_col_max, self.eps) * (1.0 + 1e-12);
        // All bins intersecting the axis-aligned ball envelope; the row
        // may sit outside the column bounding box — ranges clamp to it.
        let range = |p: f64, lo: f64, w: f64, n: usize| -> (usize, usize) {
            let a = (((p - r - lo) / w).floor() as i64).clamp(0, n as i64 - 1) as usize;
            let b = (((p + r - lo) / w).floor() as i64).clamp(0, n as i64 - 1) as usize;
            (a, b)
        };
        let (x0, x1) = range(row.center.x, self.lo.x, self.width[0], self.nb[0]);
        let (y0, y1) = range(row.center.y, self.lo.y, self.width[1], self.nb[1]);
        let (z0, z1) = range(row.center.z, self.lo.z, self.width[2], self.nb[2]);
        let mut inspected = 0;
        for bx in x0..=x1 {
            for by in y0..=y1 {
                for bz in z0..=z1 {
                    for &cand in &self.bins[(bx * self.nb[1] + by) * self.nb[2] + bz] {
                        inspected += 1;
                        let c = cand as usize;
                        if pair_bound(row, &cols[c], None) >= self.eps {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        inspected
    }
}

/// An ε schedule over SCF iterations: early iterations run with loose
/// screening (cheap, approximate exchange), tightening geometrically to
/// `eps_final` as the density converges — the standard trick the
/// controllable-accuracy knob enables (final energies are unaffected
/// because the last iterations run at full accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsSchedule {
    /// Screening threshold for the first iteration.
    pub eps_start: f64,
    /// Threshold from `tighten_over` iterations onward.
    pub eps_final: f64,
    /// Number of iterations over which to tighten.
    pub tighten_over: usize,
}

impl EpsSchedule {
    /// A fixed (non-adaptive) schedule.
    pub fn fixed(eps: f64) -> Self {
        Self {
            eps_start: eps,
            eps_final: eps,
            tighten_over: 1,
        }
    }

    /// Geometric interpolation between start and final thresholds.
    pub fn eps_for(&self, iteration: usize) -> f64 {
        if iteration + 1 >= self.tighten_over || self.eps_start == self.eps_final {
            return self.eps_final;
        }
        let t = iteration as f64 / (self.tighten_over.max(2) - 1) as f64;
        // Geometric path handles eps_final = 0 by switching at the end.
        if self.eps_final <= 0.0 {
            if iteration + 1 >= self.tighten_over {
                0.0
            } else {
                self.eps_start * (1e-6f64).powf(t)
            }
        } else {
            self.eps_start * (self.eps_final / self.eps_start).powf(t)
        }
    }
}

/// Incremental-exchange tolerance schedule over SCF iterations, the
/// temporal twin of [`EpsSchedule`]: early iterations (where orbitals move
/// a lot anyway) may reuse aggressively, tightening geometrically toward
/// `eps_inc_final` as the density converges. Feeds
/// [`crate::incremental::IncrementalExchange::eps_inc`] each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncSchedule {
    /// Reuse tolerance for the first iteration.
    pub eps_inc_start: f64,
    /// Tolerance from `tighten_over` iterations onward.
    pub eps_inc_final: f64,
    /// Number of iterations over which to tighten.
    pub tighten_over: usize,
    /// Force a full rebuild every N builds (`0` = never force).
    pub rebuild_every: usize,
}

impl IncSchedule {
    /// A fixed (non-adaptive) tolerance with full-rebuild cadence.
    pub fn fixed(eps_inc: f64, rebuild_every: usize) -> Self {
        Self {
            eps_inc_start: eps_inc,
            eps_inc_final: eps_inc,
            tighten_over: 1,
            rebuild_every,
        }
    }

    /// Reuse disabled: every build is from scratch (the exact path).
    pub fn off() -> Self {
        Self::fixed(0.0, 0)
    }

    /// The tolerance for `iteration` (0-based) — the same geometric
    /// interpolation as [`EpsSchedule::eps_for`].
    pub fn eps_for(&self, iteration: usize) -> f64 {
        EpsSchedule {
            eps_start: self.eps_inc_start,
            eps_final: self.eps_inc_final,
            tighten_over: self.tighten_over,
        }
        .eps_for(iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    fn orb(x: f64, s: f64) -> OrbitalInfo {
        OrbitalInfo {
            center: Vec3::new(x, 0.0, 0.0),
            spread: s,
        }
    }

    #[test]
    fn diagonal_pairs_always_kept() {
        let orbs = vec![orb(0.0, 1.0), orb(100.0, 1.0)];
        let pl = build_pair_list(&orbs, 0.9999, None);
        // Both diagonals survive; the distant off-diagonal does not.
        assert_eq!(pl.len(), 2);
        assert!(pl.pairs.iter().all(|p| p.i == p.j));
    }

    #[test]
    fn eps_zero_keeps_everything() {
        let orbs: Vec<_> = (0..10).map(|k| orb(3.0 * k as f64, 1.2)).collect();
        let pl = build_pair_list(&orbs, 0.0, None);
        assert_eq!(pl.len(), pl.n_candidates);
        assert_eq!(pl.n_candidates, 55);
        assert!(approx_eq(pl.survival(), 1.0, 1e-15));
    }

    #[test]
    fn survivors_monotone_in_eps() {
        let orbs: Vec<_> = (0..20).map(|k| orb(1.5 * k as f64, 1.0)).collect();
        let mut prev = usize::MAX;
        for eps in [0.0, 1e-12, 1e-8, 1e-4, 1e-2, 0.5] {
            let pl = build_pair_list(&orbs, eps, None);
            assert!(pl.len() <= prev, "eps = {eps}");
            prev = pl.len();
        }
    }

    #[test]
    fn bound_matches_cutoff_radius() {
        let (sa, sb, eps) = (1.3, 0.9, 1e-6);
        let rc = cutoff_radius(sa, sb, eps);
        let just_inside = pair_bound(
            &orb(0.0, sa),
            &OrbitalInfo {
                center: Vec3::new(rc - 1e-9, 0.0, 0.0),
                spread: sb,
            },
            None,
        );
        let just_outside = pair_bound(
            &orb(0.0, sa),
            &OrbitalInfo {
                center: Vec3::new(rc + 1e-9, 0.0, 0.0),
                spread: sb,
            },
            None,
        );
        assert!(just_inside >= eps);
        assert!(just_outside < eps);
    }

    #[test]
    fn periodic_screening_wraps() {
        // Two orbitals near opposite faces of the cell are *close* through
        // the boundary.
        let cell = Cell::cubic(20.0);
        let a = orb(0.5, 1.0);
        let b = orb(19.5, 1.0);
        let with_cell = pair_bound(&a, &b, Some(&cell));
        let without = pair_bound(&a, &b, None);
        assert!(with_cell > 0.5); // distance 1.0
        assert!(without < 1e-30); // distance 19.0
    }

    #[test]
    fn weights_encode_multiplicity() {
        let orbs = vec![orb(0.0, 1.0), orb(0.5, 1.0)];
        let pl = build_pair_list(&orbs, 1e-10, None);
        assert_eq!(pl.len(), 3);
        let total_weight: f64 = pl.pairs.iter().map(|p| p.weight).sum();
        // N² ordered pairs = Σ weights = 4.
        assert!(approx_eq(total_weight, 4.0, 1e-15));
    }

    #[test]
    fn celllist_matches_brute_force() {
        use liair_math::rng::SplitMix64;
        // The cell must be several cutoff radii per axis for locality to
        // pay off (rc(1.2, 1.2, 1e-6) ≈ 8.9 Bohr against a 60 Bohr edge);
        // in smaller boxes the bins legitimately cover everything.
        let cell = Cell::cubic(60.0);
        let mut rng = SplitMix64::new(13);
        let orbitals: Vec<OrbitalInfo> = (0..900)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, 60.0),
                    rng.range_f64(0.0, 60.0),
                    rng.range_f64(0.0, 60.0),
                ),
                spread: 1.2,
            })
            .collect();
        for eps in [1e-2, 1e-6] {
            let brute = build_pair_list(&orbitals, eps, Some(&cell));
            let fast = build_pair_list_celllist(&orbitals, eps, &cell).unwrap();
            // Canonical order is part of the contract: the sequences match
            // directly, no sorting.
            let key = |pl: &PairList| {
                let v: Vec<(u32, u32)> = pl.pairs.iter().map(|p| (p.i, p.j)).collect();
                v
            };
            assert_eq!(key(&brute), key(&fast), "eps = {eps}");
            // Sub-quadratic sourcing is observable: far fewer candidates
            // inspected than the N(N+1)/2 the brute scan pays.
            assert_eq!(brute.considered, brute.n_candidates);
            assert!(
                fast.considered < fast.n_candidates / 2,
                "considered {} of {}",
                fast.considered,
                fast.n_candidates
            );
            assert!(fast.len() <= fast.considered);
        }
    }

    #[test]
    fn celllist_rejects_unbinnable_eps() {
        let cell = Cell::cubic(10.0);
        let orbs = vec![orb(1.0, 1.0)];
        for eps in [0.0, -1.0, 1.5] {
            let err = build_pair_list_celllist(&orbs, eps, &cell).unwrap_err();
            assert!(
                matches!(err, crate::error::Error::InvalidEps { .. }),
                "eps = {eps}"
            );
        }
    }

    #[test]
    fn source_pairs_routes_and_falls_back() {
        let cell = Cell::cubic(36.0);
        let orbs: Vec<_> = (0..60).map(|k| orb(0.6 * k as f64, 0.5)).collect();
        // Cell + finite eps: the cell-list route, canonical order.
        let sourced = source_pairs(&orbs, 1e-4, Some(&cell));
        let brute = build_pair_list(&orbs, 1e-4, Some(&cell));
        assert_eq!(sourced.pairs, brute.pairs);
        assert!(sourced.considered < sourced.n_candidates);
        // eps = 0 (no finite cutoff) and no-cell both fall back brute.
        assert_eq!(
            source_pairs(&orbs, 0.0, Some(&cell)).considered,
            brute.n_candidates
        );
        assert_eq!(
            source_pairs(&orbs, 1e-4, None).len(),
            build_pair_list(&orbs, 1e-4, None).len()
        );
    }

    #[test]
    fn wide_outlier_does_not_degrade_narrow_search() {
        // One wide orbital among many narrow ones: with per-orbital radii
        // only the outlier searches far, so the candidate count stays far
        // below the global-sigma_max regime (which would approach N²/2).
        use liair_math::rng::SplitMix64;
        let cell = Cell::cubic(40.0);
        let mut rng = SplitMix64::new(99);
        let mut orbitals: Vec<OrbitalInfo> = (0..500)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, 40.0),
                    rng.range_f64(0.0, 40.0),
                    rng.range_f64(0.0, 40.0),
                ),
                spread: 0.6,
            })
            .collect();
        orbitals[250].spread = 6.0;
        let pl = build_pair_list_celllist(&orbitals, 1e-6, &cell).unwrap();
        let brute = build_pair_list(&orbitals, 1e-6, Some(&cell));
        assert_eq!(pl.pairs, brute.pairs);
        assert!(
            pl.considered < pl.n_candidates / 4,
            "considered {} of {}",
            pl.considered,
            pl.n_candidates
        );
    }

    #[test]
    fn cross_bins_match_brute_filter() {
        use liair_math::rng::SplitMix64;
        let mut rng = SplitMix64::new(4);
        let cols: Vec<OrbitalInfo> = (0..120)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, 22.0),
                    rng.range_f64(0.0, 22.0),
                    rng.range_f64(0.0, 22.0),
                ),
                spread: rng.range_f64(0.3, 1.8),
            })
            .collect();
        for eps in [1e-2, 1e-5, 1e-8] {
            let bins = CrossBins::new(&cols, eps).unwrap();
            let mut got = Vec::new();
            for row in cols.iter().step_by(7) {
                let inspected = bins.partners(row, &cols, &mut got);
                assert!(inspected <= cols.len());
                let want: Vec<usize> = (0..cols.len())
                    .filter(|&c| pair_bound(row, &cols[c], None) >= eps)
                    .collect();
                assert_eq!(got, want, "eps = {eps}");
            }
        }
        assert!(CrossBins::new(&cols, 0.0).is_err());
    }

    #[test]
    fn eps_schedule_tightens_monotonically() {
        let s = EpsSchedule {
            eps_start: 1e-2,
            eps_final: 1e-8,
            tighten_over: 6,
        };
        let mut prev = f64::INFINITY;
        for it in 0..10 {
            let e = s.eps_for(it);
            assert!(e <= prev + 1e-18, "iteration {it}: {e} > {prev}");
            prev = e;
        }
        assert!(approx_eq(s.eps_for(0), 1e-2, 1e-12));
        assert!(approx_eq(s.eps_for(9), 1e-8, 1e-12));
        // Fixed schedules are constant.
        let f = EpsSchedule::fixed(1e-6);
        assert_eq!(f.eps_for(0), 1e-6);
        assert_eq!(f.eps_for(50), 1e-6);
    }

    #[test]
    fn inc_schedule_tightens_and_off_disables() {
        let s = IncSchedule {
            eps_inc_start: 1e-2,
            eps_inc_final: 1e-5,
            tighten_over: 4,
            rebuild_every: 10,
        };
        let mut prev = f64::INFINITY;
        for it in 0..8 {
            let e = s.eps_for(it);
            assert!(e <= prev + 1e-18);
            prev = e;
        }
        assert!(approx_eq(s.eps_for(7), 1e-5, 1e-15));
        let off = IncSchedule::off();
        assert_eq!(off.eps_for(0), 0.0);
        assert_eq!(off.rebuild_every, 0);
    }

    #[test]
    fn bound_is_symmetric_and_unit_at_zero() {
        let a = orb(0.0, 0.8);
        let b = orb(2.5, 1.7);
        assert!(approx_eq(
            pair_bound(&a, &b, None),
            pair_bound(&b, &a, None),
            1e-15
        ));
        assert!(approx_eq(pair_bound(&a, &a, None), 1.0, 1e-15));
    }
}
