//! Controllable-accuracy pair screening.
//!
//! For localized orbitals `i`, `j` with centers `c_i`, `c_j` and spreads
//! `σ_i`, `σ_j`, the pair density magnitude is bounded by the Gaussian
//! overlap estimate
//!
//! `B_ij = exp(−d²/(2(σ_i² + σ_j²)))`, `d = |c_i − c_j|` (minimum image in
//! periodic cells).
//!
//! Since `(ij|ij)` is quadratic in the pair density, dropping pairs with
//! `B_ij < ε` discards exchange contributions of order `ε²·(ii|ii)` —
//! the error is controlled *monotonically* by the single knob ε, which is
//! the paper's "highly controllable manner". ε = 0 disables screening.

use liair_basis::Cell;
use liair_math::Vec3;
use serde::{Deserialize, Serialize};

/// What screening needs to know about one localized occupied orbital.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitalInfo {
    /// Localization center (Bohr).
    #[serde(with = "vec3_serde")]
    pub center: Vec3,
    /// Spread σ (Bohr).
    pub spread: f64,
}

mod vec3_serde {
    use liair_math::Vec3;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &Vec3, s: S) -> Result<S::Ok, S::Error> {
        [v.x, v.y, v.z].serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec3, D::Error> {
        let a = <[f64; 3]>::deserialize(d)?;
        Ok(Vec3::new(a[0], a[1], a[2]))
    }
}

/// One surviving exchange task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pair {
    /// First orbital index (`i ≤ j`).
    pub i: u32,
    /// Second orbital index.
    pub j: u32,
    /// Multiplicity in the exchange sum: 1 for diagonal, 2 for off-diagonal
    /// (E_x = −Σ_{i≤j} w_ij (ij|ij) for a closed shell).
    pub weight: f64,
    /// The screening bound the pair survived with (1.0 for diagonal).
    pub bound: f64,
}

/// The task list after screening.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairList {
    /// Surviving pairs, `i ≤ j`.
    pub pairs: Vec<Pair>,
    /// Total candidate count `N(N+1)/2`.
    pub n_candidates: usize,
    /// The ε used.
    pub eps: f64,
}

impl PairList {
    /// Number of surviving pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing survived (only possible for pathological ε > 1).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of candidates kept.
    pub fn survival(&self) -> f64 {
        if self.n_candidates == 0 {
            return 1.0;
        }
        self.pairs.len() as f64 / self.n_candidates as f64
    }
}

/// The Gaussian-overlap screening bound for one orbital pair.
pub fn pair_bound(a: &OrbitalInfo, b: &OrbitalInfo, cell: Option<&Cell>) -> f64 {
    let d = match cell {
        Some(c) => c.distance(a.center, b.center),
        None => a.center.distance(b.center),
    };
    let denom = 2.0 * (a.spread * a.spread + b.spread * b.spread);
    assert!(denom > 0.0, "orbital spreads must be positive");
    (-d * d / denom).exp()
}

/// Distance beyond which a pair of spread-σ orbitals drops below ε.
pub fn cutoff_radius(sigma_a: f64, sigma_b: f64, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps <= 1.0);
    (2.0 * (sigma_a * sigma_a + sigma_b * sigma_b) * (1.0 / eps).ln()).sqrt()
}

/// Build the screened pair list over `orbitals` with threshold `eps`
/// (`eps = 0` keeps everything); distances use the minimum image if a
/// periodic cell is given.
pub fn build_pair_list(orbitals: &[OrbitalInfo], eps: f64, cell: Option<&Cell>) -> PairList {
    let n = orbitals.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        pairs.push(Pair {
            i: i as u32,
            j: i as u32,
            weight: 1.0,
            bound: 1.0,
        });
        for j in (i + 1)..n {
            let b = pair_bound(&orbitals[i], &orbitals[j], cell);
            if b >= eps {
                pairs.push(Pair {
                    i: i as u32,
                    j: j as u32,
                    weight: 2.0,
                    bound: b,
                });
            }
        }
    }
    PairList {
        pairs,
        n_candidates: n * (n + 1) / 2,
        eps,
    }
}

/// Linear-scaling pair-list construction for large condensed systems:
/// orbitals are binned into cells of the screening cutoff radius, and only
/// neighbouring bins are searched — O(N·partners) instead of O(N²).
/// Requires `eps > 0` (a finite cutoff radius) and a periodic cell; the
/// result is identical to [`build_pair_list`].
pub fn build_pair_list_celllist(orbitals: &[OrbitalInfo], eps: f64, cell: &Cell) -> PairList {
    assert!(eps > 0.0, "cell-list construction needs a finite eps");
    let n = orbitals.len();
    let sigma_max = orbitals.iter().map(|o| o.spread).fold(0.0f64, f64::max);
    let rc = cutoff_radius(sigma_max, sigma_max, eps);
    // Bin size ≥ rc so neighbours live in the 27 surrounding bins.
    let nbins = |l: f64| ((l / rc).floor() as usize).max(1);
    let (bx, by, bz) = (
        nbins(cell.lengths.x),
        nbins(cell.lengths.y),
        nbins(cell.lengths.z),
    );
    let bin_of = |p: liair_math::Vec3| -> (usize, usize, usize) {
        let w = cell.wrap(p);
        (
            ((w.x / cell.lengths.x * bx as f64) as usize).min(bx - 1),
            ((w.y / cell.lengths.y * by as f64) as usize).min(by - 1),
            ((w.z / cell.lengths.z * bz as f64) as usize).min(bz - 1),
        )
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); bx * by * bz];
    for (i, o) in orbitals.iter().enumerate() {
        let (ix, iy, iz) = bin_of(o.center);
        bins[(ix * by + iy) * bz + iz].push(i as u32);
    }
    let mut pairs = Vec::new();
    for i in 0..n {
        pairs.push(Pair {
            i: i as u32,
            j: i as u32,
            weight: 1.0,
            bound: 1.0,
        });
    }
    let shifts: Vec<i64> = vec![-1, 0, 1];
    for ix in 0..bx {
        for iy in 0..by {
            for iz in 0..bz {
                let here = &bins[(ix * by + iy) * bz + iz];
                for &dx in &shifts {
                    for &dy in &shifts {
                        for &dz in &shifts {
                            let jx = (ix as i64 + dx).rem_euclid(bx as i64) as usize;
                            let jy = (iy as i64 + dy).rem_euclid(by as i64) as usize;
                            let jz = (iz as i64 + dz).rem_euclid(bz as i64) as usize;
                            let there = &bins[(jx * by + jy) * bz + jz];
                            for &a in here {
                                for &b in there {
                                    if b <= a {
                                        continue;
                                    }
                                    let bound = pair_bound(
                                        &orbitals[a as usize],
                                        &orbitals[b as usize],
                                        Some(cell),
                                    );
                                    if bound >= eps {
                                        pairs.push(Pair {
                                            i: a,
                                            j: b,
                                            weight: 2.0,
                                            bound,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Duplicates are possible when few bins exist per axis (the same
    // neighbour bin visited via two wraps); deduplicate.
    pairs.sort_by_key(|p| (p.i, p.j));
    pairs.dedup_by_key(|p| (p.i, p.j));
    PairList {
        pairs,
        n_candidates: n * (n + 1) / 2,
        eps,
    }
}

/// An ε schedule over SCF iterations: early iterations run with loose
/// screening (cheap, approximate exchange), tightening geometrically to
/// `eps_final` as the density converges — the standard trick the
/// controllable-accuracy knob enables (final energies are unaffected
/// because the last iterations run at full accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsSchedule {
    /// Screening threshold for the first iteration.
    pub eps_start: f64,
    /// Threshold from `tighten_over` iterations onward.
    pub eps_final: f64,
    /// Number of iterations over which to tighten.
    pub tighten_over: usize,
}

impl EpsSchedule {
    /// A fixed (non-adaptive) schedule.
    pub fn fixed(eps: f64) -> Self {
        Self {
            eps_start: eps,
            eps_final: eps,
            tighten_over: 1,
        }
    }

    /// Geometric interpolation between start and final thresholds.
    pub fn eps_for(&self, iteration: usize) -> f64 {
        if iteration + 1 >= self.tighten_over || self.eps_start == self.eps_final {
            return self.eps_final;
        }
        let t = iteration as f64 / (self.tighten_over.max(2) - 1) as f64;
        // Geometric path handles eps_final = 0 by switching at the end.
        if self.eps_final <= 0.0 {
            if iteration + 1 >= self.tighten_over {
                0.0
            } else {
                self.eps_start * (1e-6f64).powf(t)
            }
        } else {
            self.eps_start * (self.eps_final / self.eps_start).powf(t)
        }
    }
}

/// Incremental-exchange tolerance schedule over SCF iterations, the
/// temporal twin of [`EpsSchedule`]: early iterations (where orbitals move
/// a lot anyway) may reuse aggressively, tightening geometrically toward
/// `eps_inc_final` as the density converges. Feeds
/// [`crate::incremental::IncrementalExchange::eps_inc`] each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncSchedule {
    /// Reuse tolerance for the first iteration.
    pub eps_inc_start: f64,
    /// Tolerance from `tighten_over` iterations onward.
    pub eps_inc_final: f64,
    /// Number of iterations over which to tighten.
    pub tighten_over: usize,
    /// Force a full rebuild every N builds (`0` = never force).
    pub rebuild_every: usize,
}

impl IncSchedule {
    /// A fixed (non-adaptive) tolerance with full-rebuild cadence.
    pub fn fixed(eps_inc: f64, rebuild_every: usize) -> Self {
        Self {
            eps_inc_start: eps_inc,
            eps_inc_final: eps_inc,
            tighten_over: 1,
            rebuild_every,
        }
    }

    /// Reuse disabled: every build is from scratch (the exact path).
    pub fn off() -> Self {
        Self::fixed(0.0, 0)
    }

    /// The tolerance for `iteration` (0-based) — the same geometric
    /// interpolation as [`EpsSchedule::eps_for`].
    pub fn eps_for(&self, iteration: usize) -> f64 {
        EpsSchedule {
            eps_start: self.eps_inc_start,
            eps_final: self.eps_inc_final,
            tighten_over: self.tighten_over,
        }
        .eps_for(iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    fn orb(x: f64, s: f64) -> OrbitalInfo {
        OrbitalInfo {
            center: Vec3::new(x, 0.0, 0.0),
            spread: s,
        }
    }

    #[test]
    fn diagonal_pairs_always_kept() {
        let orbs = vec![orb(0.0, 1.0), orb(100.0, 1.0)];
        let pl = build_pair_list(&orbs, 0.9999, None);
        // Both diagonals survive; the distant off-diagonal does not.
        assert_eq!(pl.len(), 2);
        assert!(pl.pairs.iter().all(|p| p.i == p.j));
    }

    #[test]
    fn eps_zero_keeps_everything() {
        let orbs: Vec<_> = (0..10).map(|k| orb(3.0 * k as f64, 1.2)).collect();
        let pl = build_pair_list(&orbs, 0.0, None);
        assert_eq!(pl.len(), pl.n_candidates);
        assert_eq!(pl.n_candidates, 55);
        assert!(approx_eq(pl.survival(), 1.0, 1e-15));
    }

    #[test]
    fn survivors_monotone_in_eps() {
        let orbs: Vec<_> = (0..20).map(|k| orb(1.5 * k as f64, 1.0)).collect();
        let mut prev = usize::MAX;
        for eps in [0.0, 1e-12, 1e-8, 1e-4, 1e-2, 0.5] {
            let pl = build_pair_list(&orbs, eps, None);
            assert!(pl.len() <= prev, "eps = {eps}");
            prev = pl.len();
        }
    }

    #[test]
    fn bound_matches_cutoff_radius() {
        let (sa, sb, eps) = (1.3, 0.9, 1e-6);
        let rc = cutoff_radius(sa, sb, eps);
        let just_inside = pair_bound(
            &orb(0.0, sa),
            &OrbitalInfo {
                center: Vec3::new(rc - 1e-9, 0.0, 0.0),
                spread: sb,
            },
            None,
        );
        let just_outside = pair_bound(
            &orb(0.0, sa),
            &OrbitalInfo {
                center: Vec3::new(rc + 1e-9, 0.0, 0.0),
                spread: sb,
            },
            None,
        );
        assert!(just_inside >= eps);
        assert!(just_outside < eps);
    }

    #[test]
    fn periodic_screening_wraps() {
        // Two orbitals near opposite faces of the cell are *close* through
        // the boundary.
        let cell = Cell::cubic(20.0);
        let a = orb(0.5, 1.0);
        let b = orb(19.5, 1.0);
        let with_cell = pair_bound(&a, &b, Some(&cell));
        let without = pair_bound(&a, &b, None);
        assert!(with_cell > 0.5); // distance 1.0
        assert!(without < 1e-30); // distance 19.0
    }

    #[test]
    fn weights_encode_multiplicity() {
        let orbs = vec![orb(0.0, 1.0), orb(0.5, 1.0)];
        let pl = build_pair_list(&orbs, 1e-10, None);
        assert_eq!(pl.len(), 3);
        let total_weight: f64 = pl.pairs.iter().map(|p| p.weight).sum();
        // N² ordered pairs = Σ weights = 4.
        assert!(approx_eq(total_weight, 4.0, 1e-15));
    }

    #[test]
    fn celllist_matches_brute_force() {
        use liair_math::rng::SplitMix64;
        let cell = Cell::cubic(28.0);
        let mut rng = SplitMix64::new(13);
        let orbitals: Vec<OrbitalInfo> = (0..300)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, 28.0),
                    rng.range_f64(0.0, 28.0),
                    rng.range_f64(0.0, 28.0),
                ),
                spread: 1.5,
            })
            .collect();
        for eps in [1e-2, 1e-6] {
            let brute = build_pair_list(&orbitals, eps, Some(&cell));
            let fast = build_pair_list_celllist(&orbitals, eps, &cell);
            let key = |pl: &PairList| {
                let mut v: Vec<(u32, u32)> = pl.pairs.iter().map(|p| (p.i, p.j)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(key(&brute), key(&fast), "eps = {eps}");
        }
    }

    #[test]
    fn eps_schedule_tightens_monotonically() {
        let s = EpsSchedule {
            eps_start: 1e-2,
            eps_final: 1e-8,
            tighten_over: 6,
        };
        let mut prev = f64::INFINITY;
        for it in 0..10 {
            let e = s.eps_for(it);
            assert!(e <= prev + 1e-18, "iteration {it}: {e} > {prev}");
            prev = e;
        }
        assert!(approx_eq(s.eps_for(0), 1e-2, 1e-12));
        assert!(approx_eq(s.eps_for(9), 1e-8, 1e-12));
        // Fixed schedules are constant.
        let f = EpsSchedule::fixed(1e-6);
        assert_eq!(f.eps_for(0), 1e-6);
        assert_eq!(f.eps_for(50), 1e-6);
    }

    #[test]
    fn inc_schedule_tightens_and_off_disables() {
        let s = IncSchedule {
            eps_inc_start: 1e-2,
            eps_inc_final: 1e-5,
            tighten_over: 4,
            rebuild_every: 10,
        };
        let mut prev = f64::INFINITY;
        for it in 0..8 {
            let e = s.eps_for(it);
            assert!(e <= prev + 1e-18);
            prev = e;
        }
        assert!(approx_eq(s.eps_for(7), 1e-5, 1e-15));
        let off = IncSchedule::off();
        assert_eq!(off.eps_for(0), 0.0);
        assert_eq!(off.rebuild_every, 0);
    }

    #[test]
    fn bound_is_symmetric_and_unit_at_zero() {
        let a = orb(0.0, 0.8);
        let b = orb(2.5, 1.7);
        assert!(approx_eq(
            pair_bound(&a, &b, None),
            pair_bound(&b, &a, None),
            1e-15
        ));
        assert!(approx_eq(pair_bound(&a, &a, None), 1.0, 1e-15));
    }
}
