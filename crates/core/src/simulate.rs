//! BG/Q-scale execution of the exchange build, for the paper's scaling
//! figures.
//!
//! Three parallelization schemes are priced on the machine model:
//!
//! * [`Scheme::PairDistributed`] — **this work**: screened pairs on
//!   pair-local grids, balanced across node groups, node-local threaded
//!   FFTs, one reduction per build. The per-node work vector comes from the
//!   *actual* load-balancer assignment of the *actual* screened pair list.
//! * [`Scheme::FullGridPairs`] — the "directly comparable approach" of the
//!   abstract's >10× time-to-solution claim: the same pair distribution but
//!   with full-cell FFTs (no compact pair-local representation) and no
//!   hierarchical node groups.
//! * [`Scheme::PwDistributed`] — the prior state of the art in scaling:
//!   plane-wave-decomposed FFTs across the whole partition (pencil
//!   decomposition, all-to-alls per transform). Its useful node count is
//!   capped by the pencil count, which is what limits it to ~0.3 M threads
//!   (hence the abstract's "more than 20-fold" scalability gap).
//! * [`Scheme::ReplicatedDirect`] — a Gaussian integral-direct exchange
//!   with replicated density and a full K-matrix allreduce per build (the
//!   conventional quantum-chemistry route), included for context.

use crate::balance::{assign_pairs, BalanceStrategy};
use crate::engine::BuildProfile;
use crate::workload::Workload;
use liair_bgq::bsp::{comm_time, simulate, BspPhase, BspReport, CommOp, PhaseCompute, PhaseTiming};
use liair_bgq::collectives::{self, CollectiveAlgo};
use liair_bgq::MachineConfig;
use serde::{Deserialize, Serialize};

/// Which parallelization to model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// The paper's scheme.
    PairDistributed {
        /// Task balancing strategy.
        strategy: BalanceStrategy,
        /// Nodes cooperating on one pair (None = automatic).
        group_size: Option<usize>,
        /// Threads per node (1..=64).
        threads: usize,
        /// Whether the QPX-style SIMD kernels are used.
        simd: bool,
    },
    /// Pair-distributed but with full-cell grids, flat (no groups).
    FullGridPairs,
    /// Plane-wave (pencil) distributed FFTs.
    PwDistributed,
    /// Replicated-data integral-direct Gaussian exchange.
    ReplicatedDirect,
}

impl Scheme {
    /// Default configuration of the paper's scheme.
    pub fn ours() -> Scheme {
        Scheme::PairDistributed {
            strategy: BalanceStrategy::GreedyLpt,
            group_size: None,
            threads: 64,
            simd: true,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::PairDistributed { .. } => "pair-distributed (this work)",
            Scheme::FullGridPairs => "full-grid pairs (comparable approach)",
            Scheme::PwDistributed => "PW-distributed (prior state of the art)",
            Scheme::ReplicatedDirect => "replicated integral-direct",
        }
    }
}

/// Result of a modelled build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Machine size in nodes.
    pub nodes: usize,
    /// Machine size in hardware threads.
    pub threads: usize,
    /// Wall time of one exchange build (seconds).
    pub time: f64,
    /// Node-group size used (1 for flat schemes).
    pub group_size: usize,
    /// Phase-resolved report.
    pub report: BspReport,
    /// Modelled build profile on the same axes as measured builds, so the
    /// repro tables can report one uniform schema for simulated and real
    /// executions.
    pub profile: BuildProfile,
}

/// Pick the node-group size: smallest power of two giving each group at
/// least ~4 tasks, capped at 64 (the intra-group FFT stops paying off).
pub fn auto_group_size(npairs: usize, nodes: usize) -> usize {
    let mut g = 1usize;
    while g < 64 && npairs * g < 4 * nodes {
        g *= 2;
    }
    g.min(nodes.max(1))
}

/// Parallel efficiency of distributing one pair FFT over `g` nodes
/// (pencil exchange inside a compact subtorus; fitted to published
/// small-transpose scalings).
fn group_fft_efficiency(g: usize) -> f64 {
    0.93f64.powf((g as f64).log2())
}

/// Model one exchange build.
pub fn simulate_hfx_build(
    w: &Workload,
    m: &MachineConfig,
    scheme: Scheme,
    algo: CollectiveAlgo,
) -> SimOutcome {
    let nodes = m.nodes();
    match scheme {
        Scheme::PairDistributed {
            strategy,
            group_size,
            threads,
            simd,
        } => {
            let g = group_size
                .unwrap_or_else(|| auto_group_size(w.pairs.len(), nodes))
                .clamp(1, nodes);
            let ngroups = (nodes / g).max(1);
            let assignment = assign_pairs(&w.pairs, ngroups, strategy);
            let t_pair = m.node.compute_time(w.pair_flops(), threads, simd)
                / (g as f64 * group_fft_efficiency(g));
            // Per-node compute vector: every node of a group carries the
            // group's time.
            let mut per_node = vec![0.0; nodes];
            for (grp, &load) in assignment.loads.iter().enumerate() {
                for member in 0..g {
                    let node = grp * g + member;
                    if node < nodes {
                        per_node[node] = load * t_pair;
                    }
                }
            }
            let max_pairs = assignment
                .per_rank
                .iter()
                .map(|v| v.len())
                .max()
                .unwrap_or(0) as f64;
            // Traffic: pairs are assigned in orbital blocks (locality-aware),
            // so a node touches ~2√(2·pairs) distinct orbitals — each
            // orbital's patch is fetched once and its accumulated exchange
            // potential returned once. Prefetching hides this behind the
            // FFTs; only the non-hideable remainder is charged.
            let unique_orbitals = (2.0 * (2.0 * max_pairs).sqrt())
                .min(2.0 * max_pairs)
                .min(w.norb as f64);
            let traffic_bytes = unique_orbitals * 2.0 * w.patch_bytes() / g as f64;
            let t_traffic = collectives::point_to_point(m, traffic_bytes);
            let compute_report = simulate(
                m,
                algo,
                &[BspPhase {
                    name: "pair FFTs".into(),
                    compute: PhaseCompute::PerRank(per_node),
                    comm: CommOp::None,
                }],
            );
            let makespan = compute_report.total;
            let exposed_comm = (t_traffic - makespan).max(0.0);
            let t_allreduce = comm_time(m, algo, &CommOp::Allreduce { bytes: 8.0 });
            let total = makespan + exposed_comm + t_allreduce;
            let report = BspReport {
                total,
                phases: vec![
                    PhaseTiming {
                        name: "pair FFTs".into(),
                        compute: makespan,
                        compute_mean: compute_report.phases[0].compute_mean,
                        comm: 0.0,
                    },
                    PhaseTiming {
                        name: "patch traffic (exposed)".into(),
                        compute: 0.0,
                        compute_mean: 0.0,
                        comm: exposed_comm,
                    },
                    PhaseTiming {
                        name: "energy allreduce".into(),
                        compute: 0.0,
                        compute_mean: 0.0,
                        comm: t_allreduce,
                    },
                ],
                compute_utilization: if total > 0.0 {
                    compute_report.phases[0].compute_mean / total
                } else {
                    1.0
                },
                imbalance: compute_report.imbalance,
            };
            let profile = BuildProfile {
                t_fft_s: makespan,
                t_exec_s: makespan + exposed_comm,
                t_reduce_s: t_allreduce,
                pairs_computed: w.pairs.len(),
                bytes_reduced: 8,
                ..BuildProfile::default()
            };
            SimOutcome {
                scheme: scheme.name().into(),
                nodes,
                threads: m.threads(),
                time: total,
                group_size: g,
                report,
                profile,
            }
        }
        Scheme::FullGridPairs => {
            // Same pair list & balancing, but each pair transforms the full
            // cell grid node-locally; no groups, so at extreme scale the
            // integer pair quantum also costs efficiency.
            let assignment = assign_pairs(&w.pairs, nodes, BalanceStrategy::GreedyLpt);
            let t_pair = m.node.compute_time(w.full_grid_flops(), 64, true);
            let per_node: Vec<f64> = assignment.loads.iter().map(|&l| l * t_pair).collect();
            let max_pairs = assignment
                .per_rank
                .iter()
                .map(|v| v.len())
                .max()
                .unwrap_or(0) as f64;
            // Without the compact pair-local representation, the orbital
            // data moved is the full real-space field (same locality-aware
            // unique-orbital model as the main scheme, to keep the
            // comparison about representation and decomposition).
            let unique_orbitals = (2.0 * (2.0 * max_pairs).sqrt())
                .min(2.0 * max_pairs)
                .min(w.norb as f64);
            let traffic_bytes = unique_orbitals * 2.0 * w.full_grid_bytes() / 2.0;
            let t_traffic = collectives::point_to_point(m, traffic_bytes);
            let compute_report = simulate(
                m,
                algo,
                &[BspPhase {
                    name: "pair FFTs (full grid)".into(),
                    compute: PhaseCompute::PerRank(per_node),
                    comm: CommOp::None,
                }],
            );
            let makespan = compute_report.total;
            let exposed_comm = (t_traffic - makespan).max(0.0);
            let t_allreduce = comm_time(m, algo, &CommOp::Allreduce { bytes: 8.0 });
            let total = makespan + exposed_comm + t_allreduce;
            let report = BspReport {
                total,
                phases: vec![
                    PhaseTiming {
                        name: "pair FFTs (full grid)".into(),
                        compute: makespan,
                        compute_mean: compute_report.phases[0].compute_mean,
                        comm: 0.0,
                    },
                    PhaseTiming {
                        name: "field traffic (exposed)".into(),
                        compute: 0.0,
                        compute_mean: 0.0,
                        comm: exposed_comm,
                    },
                    PhaseTiming {
                        name: "energy allreduce".into(),
                        compute: 0.0,
                        compute_mean: 0.0,
                        comm: t_allreduce,
                    },
                ],
                compute_utilization: if total > 0.0 {
                    compute_report.phases[0].compute_mean / total
                } else {
                    1.0
                },
                imbalance: compute_report.imbalance,
            };
            let profile = BuildProfile {
                t_fft_s: makespan,
                t_exec_s: makespan + exposed_comm,
                t_reduce_s: t_allreduce,
                pairs_computed: w.pairs.len(),
                bytes_reduced: 8,
                ..BuildProfile::default()
            };
            SimOutcome {
                scheme: scheme.name().into(),
                nodes,
                threads: m.threads(),
                time: total,
                group_size: 1,
                report,
                profile,
            }
        }
        Scheme::PwDistributed => {
            // Pencil decomposition: at most (full_grid/2)² pencils exist,
            // so nodes beyond that cap idle — this is the structural limit
            // that stalled the prior state of the art near ~0.26 M threads.
            // Within the cap a well-pipelined pencil FFT sustains ~50 %
            // parallel efficiency (transposes folded into the factor).
            let cap = (w.full_grid / 2) * (w.full_grid / 2);
            let used = nodes.min(cap);
            let t_compute =
                m.node.compute_time(w.full_grid_flops(), 64, true) / (used as f64 * 0.5);
            let total = w.pairs.len() as f64 * t_compute;
            let busy_fraction = used as f64 / nodes as f64;
            let report = BspReport {
                total,
                phases: vec![PhaseTiming {
                    name: "distributed FFTs".into(),
                    compute: total,
                    compute_mean: total * busy_fraction,
                    comm: 0.0,
                }],
                compute_utilization: busy_fraction,
                imbalance: nodes as f64 / used as f64,
            };
            let profile = BuildProfile {
                t_fft_s: total,
                t_exec_s: total,
                pairs_computed: w.pairs.len(),
                // Pencil FFTs pay an all-to-all inside every transform; the
                // moved bytes are folded into t_fft here, but the volume is
                // still worth reporting.
                bytes_reduced: w.pairs.len() * w.full_grid * w.full_grid * w.full_grid * 8,
                ..BuildProfile::default()
            };
            SimOutcome {
                scheme: scheme.name().into(),
                nodes,
                threads: m.threads(),
                time: total,
                group_size: used,
                report,
                profile,
            }
        }
        Scheme::ReplicatedDirect => {
            // Integral-direct: significant shell pairs ~ nao·κ; quartets =
            // pairs²; plus a K-matrix allreduce per build.
            let kappa = 60.0; // significant AO partners in the condensed phase
            let sig_pairs = w.nao as f64 * kappa;
            let flops = sig_pairs * sig_pairs * 120.0;
            let t_compute = m.node.compute_time(flops, 64, true) / nodes as f64;
            let k_bytes = (w.nao * w.nao) as f64 * 8.0;
            let t_reduce = collectives::allreduce(m, algo, k_bytes);
            let total = t_compute + t_reduce;
            let report = BspReport {
                total,
                phases: vec![
                    PhaseTiming {
                        name: "ERI quartets".into(),
                        compute: t_compute,
                        compute_mean: t_compute,
                        comm: 0.0,
                    },
                    PhaseTiming {
                        name: "K allreduce".into(),
                        compute: 0.0,
                        compute_mean: 0.0,
                        comm: t_reduce,
                    },
                ],
                compute_utilization: t_compute / total,
                imbalance: 1.0,
            };
            let profile = BuildProfile {
                t_kernel_s: t_compute,
                t_exec_s: t_compute,
                t_reduce_s: t_reduce,
                pairs_computed: (sig_pairs * sig_pairs) as usize,
                bytes_reduced: k_bytes as usize,
                ..BuildProfile::default()
            };
            SimOutcome {
                scheme: scheme.name().into(),
                nodes,
                threads: m.threads(),
                time: total,
                group_size: 1,
                report,
                profile,
            }
        }
    }
}

/// Strong-scaling efficiency of a series of outcomes relative to the first:
/// `E_k = (T₀ · P₀) / (T_k · P_k)`.
pub fn parallel_efficiency(series: &[SimOutcome]) -> Vec<f64> {
    assert!(!series.is_empty());
    let ref_work = series[0].time * series[0].nodes as f64;
    series
        .iter()
        .map(|o| ref_work / (o.time * o.nodes as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_bgq::machine::scaling_series;

    fn paper_workload() -> Workload {
        Workload::paper_water_box()
    }

    #[test]
    fn our_scheme_scales_to_96_racks() {
        let w = paper_workload();
        let outcomes: Vec<SimOutcome> = scaling_series()
            .iter()
            .map(|m| simulate_hfx_build(&w, m, Scheme::ours(), CollectiveAlgo::TorusPipelined))
            .collect();
        let eff = parallel_efficiency(&outcomes);
        // Near-perfect parallel efficiency at 6.29M threads (abstract).
        let last = *eff.last().unwrap();
        assert!(last > 0.75, "efficiency at 96 racks: {last} ({eff:?})");
        assert_eq!(outcomes.last().unwrap().threads, 6_291_456);
        // Times strictly decrease with machine size.
        for w2 in outcomes.windows(2) {
            assert!(w2[1].time < w2[0].time, "{} !< {}", w2[1].time, w2[0].time);
        }
    }

    #[test]
    fn comparable_approach_is_10x_slower() {
        let w = paper_workload();
        let m = MachineConfig::bgq_racks(4);
        let ours = simulate_hfx_build(&w, &m, Scheme::ours(), CollectiveAlgo::TorusPipelined);
        let full = simulate_hfx_build(
            &w,
            &m,
            Scheme::FullGridPairs,
            CollectiveAlgo::TorusPipelined,
        );
        let speedup = full.time / ours.time;
        assert!(speedup > 10.0, "time-to-solution speedup {speedup}");
    }

    #[test]
    fn pw_baseline_saturates_early() {
        let w = paper_workload();
        let small = simulate_hfx_build(
            &w,
            &MachineConfig::bgq_racks(1),
            Scheme::PwDistributed,
            CollectiveAlgo::TorusPipelined,
        );
        let large = simulate_hfx_build(
            &w,
            &MachineConfig::bgq_racks(96),
            Scheme::PwDistributed,
            CollectiveAlgo::TorusPipelined,
        );
        // 96× more nodes buys barely any speedup (pencil cap).
        assert!(
            large.time > 0.2 * small.time,
            "PW baseline kept scaling: {} vs {}",
            large.time,
            small.time
        );
        // While our scheme keeps accelerating through the same range.
        let ours_small = simulate_hfx_build(
            &w,
            &MachineConfig::bgq_racks(1),
            Scheme::ours(),
            CollectiveAlgo::TorusPipelined,
        );
        let ours_large = simulate_hfx_build(
            &w,
            &MachineConfig::bgq_racks(96),
            Scheme::ours(),
            CollectiveAlgo::TorusPipelined,
        );
        assert!(ours_large.time < ours_small.time / 50.0);
    }

    #[test]
    fn auto_group_size_kicks_in_at_scale() {
        let w = paper_workload();
        assert_eq!(auto_group_size(w.pairs.len(), 1024), 1);
        let g_large = auto_group_size(w.pairs.len(), 98304);
        assert!(g_large >= 2, "group size at 96 racks: {g_large}");
    }

    #[test]
    fn compute_dominates_our_scheme() {
        let w = paper_workload();
        let m = MachineConfig::bgq_racks(16);
        let ours = simulate_hfx_build(&w, &m, Scheme::ours(), CollectiveAlgo::TorusPipelined);
        assert!(
            ours.report.compute_total() > 2.0 * ours.report.comm_total(),
            "comm-bound: compute {} vs comm {}",
            ours.report.compute_total(),
            ours.report.comm_total()
        );
        assert!(ours.profile.is_populated());
        assert_eq!(ours.profile.pairs_computed, w.pairs.len());
    }

    #[test]
    fn scalar_no_simd_is_much_slower() {
        let w = Workload::water_box_small();
        let m = MachineConfig::bgq_racks(1);
        let fast = simulate_hfx_build(&w, &m, Scheme::ours(), CollectiveAlgo::TorusPipelined);
        let slow = simulate_hfx_build(
            &w,
            &m,
            Scheme::PairDistributed {
                strategy: BalanceStrategy::GreedyLpt,
                group_size: None,
                threads: 1,
                simd: false,
            },
            CollectiveAlgo::TorusPipelined,
        );
        assert!(slow.time > 30.0 * fast.time);
    }
}
