//! Static load balancing of exchange-pair tasks across ranks.
//!
//! With screening on, per-orbital pair counts become inhomogeneous (bulk
//! orbitals keep more partners than interface ones), so naive round-robin
//! striping develops stragglers. The paper's near-perfect efficiency rests
//! on a cheap static balance over the known task list; we implement the
//! classic greedy LPT (longest processing time first) heuristic, whose
//! makespan is within 4/3 of optimal.

use crate::screening::PairList;
use serde::{Deserialize, Serialize};

/// Assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceStrategy {
    /// Task `k` goes to rank `k mod P`.
    RoundRobin,
    /// Contiguous blocks of the task list.
    Block,
    /// Greedy LPT: sort by cost descending, place on the least-loaded rank.
    GreedyLpt,
}

/// The result of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Task indices per rank.
    pub per_rank: Vec<Vec<usize>>,
    /// Total cost per rank.
    pub loads: Vec<f64>,
}

impl Assignment {
    /// Max/mean load (1.0 = perfectly balanced; ranks with no tasks are
    /// counted in the mean).
    pub fn imbalance(&self) -> f64 {
        let max = self.loads.iter().copied().fold(0.0f64, f64::max);
        let mean = self.loads.iter().sum::<f64>() / self.loads.len().max(1) as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Makespan (the busiest rank's load).
    pub fn makespan(&self) -> f64 {
        self.loads.iter().copied().fold(0.0f64, f64::max)
    }
}

/// Assign `costs`-weighted tasks to `nranks` ranks.
pub fn assign(costs: &[f64], nranks: usize, strategy: BalanceStrategy) -> Assignment {
    assert!(nranks >= 1);
    let mut per_rank = vec![Vec::new(); nranks];
    let mut loads = vec![0.0; nranks];
    match strategy {
        BalanceStrategy::RoundRobin => {
            for (k, &c) in costs.iter().enumerate() {
                let r = k % nranks;
                per_rank[r].push(k);
                loads[r] += c;
            }
        }
        BalanceStrategy::Block => {
            let per = costs.len().div_ceil(nranks.max(1)).max(1);
            for (k, &c) in costs.iter().enumerate() {
                let r = (k / per).min(nranks - 1);
                per_rank[r].push(k);
                loads[r] += c;
            }
        }
        BalanceStrategy::GreedyLpt => {
            let mut order: Vec<usize> = (0..costs.len()).collect();
            order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
            // Binary heap of (load, rank) — BinaryHeap is a max-heap, so
            // store negated loads via Reverse on an ordered-float pattern.
            // With up to ~10⁵ ranks a linear argmin scan per task would be
            // O(T·P); keep a heap instead.
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            #[derive(PartialEq)]
            struct Load(f64, usize);
            impl Eq for Load {}
            impl PartialOrd for Load {
                fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(o))
                }
            }
            impl Ord for Load {
                fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                    self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
                }
            }
            let mut heap: BinaryHeap<Reverse<Load>> =
                (0..nranks).map(|r| Reverse(Load(0.0, r))).collect();
            for k in order {
                let Reverse(Load(load, r)) = heap.pop().expect("heap holds one entry per rank");
                per_rank[r].push(k);
                loads[r] = load + costs[k];
                heap.push(Reverse(Load(loads[r], r)));
            }
        }
    }
    Assignment { per_rank, loads }
}

/// Assign the pairs of a [`PairList`] with unit cost per pair (pair-local
/// FFTs are same-sized, so cost ≡ count).
pub fn assign_pairs(pairs: &PairList, nranks: usize, strategy: BalanceStrategy) -> Assignment {
    let costs = vec![1.0; pairs.len()];
    assign(&costs, nranks, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::rng::SplitMix64;

    #[test]
    fn all_tasks_assigned_exactly_once() {
        let costs: Vec<f64> = (0..57).map(|k| 1.0 + (k % 5) as f64).collect();
        for strat in [
            BalanceStrategy::RoundRobin,
            BalanceStrategy::Block,
            BalanceStrategy::GreedyLpt,
        ] {
            let a = assign(&costs, 7, strat);
            let mut seen = vec![false; costs.len()];
            for tasks in &a.per_rank {
                for &t in tasks {
                    assert!(!seen[t], "{strat:?}: task {t} assigned twice");
                    seen[t] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{strat:?}: missing tasks");
            // Loads are consistent with the task sets.
            for (r, tasks) in a.per_rank.iter().enumerate() {
                let sum: f64 = tasks.iter().map(|&t| costs[t]).sum();
                assert!((sum - a.loads[r]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_costs() {
        // Skewed costs sorted ascending — round-robin puts all the heavy
        // tail on the same stride.
        let mut rng = SplitMix64::new(5);
        let mut costs: Vec<f64> = (0..400).map(|_| rng.next_f64().powi(4) * 100.0).collect();
        costs.sort_by(|a, b| a.total_cmp(b));
        let rr = assign(&costs, 16, BalanceStrategy::RoundRobin);
        let lpt = assign(&costs, 16, BalanceStrategy::GreedyLpt);
        assert!(lpt.makespan() <= rr.makespan());
        assert!(lpt.imbalance() < 1.05, "LPT imbalance {}", lpt.imbalance());
    }

    #[test]
    fn lpt_respects_4_thirds_bound_witness() {
        // LPT makespan ≤ 4/3 · OPT; OPT ≥ max(total/P, max cost).
        let mut rng = SplitMix64::new(9);
        for trial in 0..20 {
            let n = 30 + trial;
            let p = 5;
            let costs: Vec<f64> = (0..n).map(|_| 0.5 + rng.next_f64()).collect();
            let a = assign(&costs, p, BalanceStrategy::GreedyLpt);
            let total: f64 = costs.iter().sum();
            let opt_lower = (total / p as f64).max(costs.iter().copied().fold(0.0, f64::max));
            assert!(
                a.makespan() <= 4.0 / 3.0 * opt_lower + 1e-9,
                "trial {trial}: {} > 4/3·{opt_lower}",
                a.makespan()
            );
        }
    }

    #[test]
    fn more_ranks_than_tasks() {
        let costs = vec![1.0; 3];
        let a = assign(&costs, 10, BalanceStrategy::GreedyLpt);
        assert_eq!(a.loads.iter().filter(|&&l| l > 0.0).count(), 3);
        assert_eq!(a.per_rank.iter().map(|v| v.len()).sum::<usize>(), 3);
    }

    #[test]
    fn uniform_costs_balance_perfectly_when_divisible() {
        let costs = vec![2.0; 64];
        for strat in [
            BalanceStrategy::RoundRobin,
            BalanceStrategy::Block,
            BalanceStrategy::GreedyLpt,
        ] {
            let a = assign(&costs, 8, strat);
            assert!((a.imbalance() - 1.0).abs() < 1e-12, "{strat:?}");
        }
    }
}
