//! Condensed-phase exchange workloads for the scaling studies.
//!
//! A workload fixes everything the cost model needs: the orbital count and
//! their (synthetic liquid) localization geometry, the screened pair list
//! actually produced by [`crate::screening`], and the grid sizes of the
//! pair-local and full-cell FFTs.

use crate::screening::{source_pairs, OrbitalInfo, PairList};
use liair_basis::Cell;
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use serde::{Deserialize, Serialize};

/// A fully-specified exchange workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable label.
    pub name: String,
    /// Occupied (localized) orbital count.
    pub norb: usize,
    /// Cubic cell edge (Bohr).
    pub cell_edge: f64,
    /// Pair-local FFT extent (the paper's compact pair representation).
    pub pair_grid: usize,
    /// Full-cell FFT extent (what the comparable approaches transform).
    pub full_grid: usize,
    /// AO dimension of the equivalent Gaussian-basis computation (for the
    /// replicated integral-direct baseline model).
    pub nao: usize,
    /// Localization spread used when building the orbitals (Bohr).
    pub spread: f64,
    /// Screened pair list.
    pub pairs: PairList,
}

impl Workload {
    /// Build a synthetic condensed-phase workload: `norb` localized
    /// orbitals uniformly random in a cubic cell, screened at `eps`.
    #[allow(clippy::too_many_arguments)]
    pub fn condensed(
        name: &str,
        norb: usize,
        cell_edge: f64,
        spread: f64,
        eps: f64,
        pair_grid: usize,
        full_grid: usize,
        seed: u64,
    ) -> Workload {
        assert!(norb >= 1 && cell_edge > 0.0 && spread > 0.0);
        let cell = Cell::cubic(cell_edge);
        let mut rng = SplitMix64::new(seed);
        let orbitals: Vec<OrbitalInfo> = (0..norb)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, cell_edge),
                    rng.range_f64(0.0, cell_edge),
                    rng.range_f64(0.0, cell_edge),
                ),
                spread,
            })
            .collect();
        // The canonical source: O(N·partners) cell lists whenever ε is
        // finite (the linear-scaling construction the paper's pair lists
        // need), the O(N²) scan only for unscreened workloads. The cost
        // model below inherits `pairs.considered`, so sourcing cost is
        // observable per workload.
        let pairs = source_pairs(&orbitals, eps, Some(&cell));
        Workload {
            name: name.to_string(),
            norb,
            cell_edge,
            pair_grid,
            full_grid,
            // STO-3G-ish water stoichiometry: 4 occupied valence orbitals
            // and 7 AOs per molecule → nao ≈ 1.75 · norb.
            nao: norb * 7 / 4,
            spread,
            pairs,
        }
    }

    /// Per-pair costs under the *adaptive pair-box* variant: the pair-local
    /// box must cover both orbitals, so its edge grows with the center
    /// separation — `cost ∝ (6σ + d)³ / (6σ)³` relative to a same-center
    /// pair. (The fixed-box production path prices every pair equally;
    /// this cost model drives the load-balancing ablation.)
    pub fn adaptive_pair_costs(&self) -> Vec<f64> {
        let sigma = self.spread;
        let base = 6.0 * sigma;
        self.pairs
            .pairs
            .iter()
            .map(|p| {
                // Recover the separation from the stored screening bound:
                // bound = exp(−d²/(4σ²)) ⇒ d = 2σ√(−ln bound).
                let d = if p.i == p.j || p.bound >= 1.0 {
                    0.0
                } else {
                    2.0 * sigma * (-p.bound.ln()).max(0.0).sqrt()
                };
                ((base + d) / base).powi(3)
            })
            .collect()
    }

    /// The paper-scale benchmark: a 1024-molecule water supercell
    /// (4096 localized valence orbitals, 59 Bohr cell, ε = 10⁻⁶,
    /// 48³ pair-local grids — a ~22 Bohr pair box at the full grid's
    /// 0.46 Bohr spacing — against a 128³ full-cell grid).
    pub fn paper_water_box() -> Workload {
        Workload::condensed("water-1024", 4096, 59.2, 1.5, 1e-6, 48, 128, 2014)
    }

    /// A smaller condensed workload for quick runs (256 orbitals).
    pub fn water_box_small() -> Workload {
        Workload::condensed("water-64", 256, 23.5, 1.5, 1e-6, 32, 64, 7)
    }

    /// Flops of one pair-local exchange kernel: forward + inverse complex
    /// 3-D FFT (5 N log₂N each) plus the reciprocal kernel multiply and
    /// pair-density formation.
    pub fn pair_flops(&self) -> f64 {
        Self::kernel_flops(self.pair_grid)
    }

    /// Flops of the same kernel on the full cell grid (comparable-approach
    /// cost).
    pub fn full_grid_flops(&self) -> f64 {
        Self::kernel_flops(self.full_grid)
    }

    fn kernel_flops(extent: usize) -> f64 {
        let n = (extent * extent * extent) as f64;
        2.0 * 5.0 * n * n.log2() + 8.0 * n + 2.0 * n
    }

    /// Bytes of one orbital patch on the pair-local grid (real f64 field).
    pub fn patch_bytes(&self) -> f64 {
        (self.pair_grid * self.pair_grid * self.pair_grid) as f64 * 8.0
    }

    /// Bytes of a complex full-cell grid.
    pub fn full_grid_bytes(&self) -> f64 {
        (self.full_grid * self.full_grid * self.full_grid) as f64 * 16.0
    }

    /// Mean surviving partners per orbital.
    pub fn partners_per_orbital(&self) -> f64 {
        2.0 * self.pairs.len() as f64 / self.norb as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let w = Workload::paper_water_box();
        assert_eq!(w.norb, 4096);
        // Screening keeps a few percent of the 8.4M candidates —
        // a physically sensible ~50–200 partners per orbital.
        assert!(w.pairs.n_candidates > 8_000_000);
        let partners = w.partners_per_orbital();
        assert!(
            (30.0..300.0).contains(&partners),
            "partners per orbital: {partners}"
        );
        assert!(w.pairs.survival() < 0.1, "survival {}", w.pairs.survival());
        // Enough tasks to occupy ≥ 1 rack outright.
        assert!(w.pairs.len() > 100_000);
    }

    #[test]
    fn flops_are_sane() {
        let w = Workload::paper_water_box();
        // 48³ kernel ≈ 20 MF; full-grid kernel > 10× bigger (the paper's
        // "surpasses a 10-fold decrease" headroom).
        assert!(
            w.pair_flops() > 1e7 && w.pair_flops() < 1e8,
            "{}",
            w.pair_flops()
        );
        let ratio = w.full_grid_flops() / w.pair_flops();
        assert!(
            ratio > 10.0 && ratio < 40.0,
            "full/pair flops ratio {ratio}"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Workload::condensed("x", 100, 20.0, 1.5, 1e-6, 32, 64, 3);
        let b = Workload::condensed("x", 100, 20.0, 1.5, 1e-6, 32, 64, 3);
        assert_eq!(a.pairs.len(), b.pairs.len());
        let c = Workload::condensed("x", 100, 20.0, 1.5, 1e-6, 32, 64, 4);
        assert_ne!(
            a.pairs.pairs.iter().map(|p| (p.i, p.j)).collect::<Vec<_>>(),
            c.pairs.pairs.iter().map(|p| (p.i, p.j)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tighter_eps_keeps_more_pairs() {
        let loose = Workload::condensed("a", 200, 25.0, 1.5, 1e-3, 32, 64, 1);
        let tight = Workload::condensed("a", 200, 25.0, 1.5, 1e-9, 32, 64, 1);
        assert!(tight.pairs.len() > loose.pairs.len());
    }
}
