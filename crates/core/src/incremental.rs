//! Incremental exact exchange: dirty-pair tracking and contribution caching
//! across SCF iterations and MD steps.
//!
//! The pair-screened exchange build exploits locality in *space* (distant
//! orbital pairs are dropped); this module exploits the matching locality
//! in *time*: between consecutive SCF iterations — and especially between
//! consecutive MD steps — most localized orbitals barely move, yet the
//! from-scratch builds re-solve one Poisson problem per surviving pair
//! every call.
//!
//! [`IncrementalExchange`] persists per-pair state across builds:
//!
//! * **energy path** — for each screened pair `(i, j)` the weighted
//!   contribution `−w_ij (ij|ij)` is cached;
//! * **operator path** — for each occupied orbital `j` the (unsymmetrized)
//!   K-matrix contribution `ΔK_j = Σ_ν` column of `(μ j | j ν)` tasks is
//!   cached, so a clean orbital re-enters `K` without a single Poisson
//!   solve.
//!
//! Each cached entry carries a [`Fingerprint`] of the orbital(s) it was
//! computed from: localization center, spread, and a coarse 4×4×4
//! grid-coefficient mass signature (per-cell `∫ φ²`). On the next build a
//! pair/orbital is **clean** when its fingerprint distance from the cached
//! state stays within the tolerance `eps_inc` (cached contribution reused)
//! and **dirty** otherwise (recomputed through the workspace fast path,
//! rayon-parallel over the dirty work only).
//!
//! Three rules bound the error:
//!
//! 1. *Invalidation* — dirtiness is measured against the fingerprint the
//!    cached contribution was **computed at**, not the previous build, so
//!    slow drift accumulates in the comparison and eventually triggers a
//!    recompute instead of being reused forever;
//! 2. *Global invalidation* — any change of grid shape, basis size,
//!    orbital count, or screening threshold discards the whole cache;
//! 3. *Cadence* — `rebuild_every > 0` forces a full recompute every
//!    N builds, bounding worst-case drift regardless of the tolerance.
//!
//! `eps_inc = 0` disables reuse entirely: every pair is dirty and the
//! build is exactly the from-scratch one (bit-identical for the operator
//! path — property-tested).

use crate::engine::{BuildProfile, ExchangeEngine, ExecBackend, KernelChoice};
use crate::screening::{OrbitalInfo, Pair, PairList};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::{Mat, Vec3};
use std::collections::HashMap;
use std::time::Instant;

/// Cells per axis of the coarse mass signature (4³ = 64 cells).
const SIG_PER_AXIS: usize = 4;
/// Total signature cells.
const SIG_CELLS: usize = SIG_PER_AXIS * SIG_PER_AXIS * SIG_PER_AXIS;

/// Coarse, sign-invariant summary of one orbital field used to decide
/// whether a cached contribution is still valid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fingerprint {
    /// Localization center (Bohr); `Vec3::ZERO` when unknown.
    pub center: Vec3,
    /// Localization spread (Bohr); `1.0` when unknown.
    pub spread: f64,
    /// Total mass `∫ φ² dV`.
    pub mass: f64,
    /// Per-coarse-cell mass `∫_cell φ² dV` (quadratic in φ, so invariant
    /// under the arbitrary sign the eigensolver/localizer assigns).
    sig: [f64; SIG_CELLS],
}

impl Fingerprint {
    /// Fingerprint an orbital field sampled on `grid`. `info` supplies the
    /// localization center/spread when the caller has them.
    pub fn of_field(grid: &RealGrid, field: &[f64], info: Option<&OrbitalInfo>) -> Self {
        assert_eq!(field.len(), grid.len());
        let (nx, ny, nz) = grid.dims;
        let mut sig = [0.0; SIG_CELLS];
        let mut idx = 0;
        for ix in 0..nx {
            let cx = ix * SIG_PER_AXIS / nx;
            for iy in 0..ny {
                let cy = iy * SIG_PER_AXIS / ny;
                let row = (cx * SIG_PER_AXIS + cy) * SIG_PER_AXIS;
                for iz in 0..nz {
                    let cz = iz * SIG_PER_AXIS / nz;
                    let v = field[idx];
                    sig[row + cz] += v * v;
                    idx += 1;
                }
            }
        }
        let dvol = grid.dvol();
        let mut mass = 0.0;
        for s in sig.iter_mut() {
            *s *= dvol;
            mass += *s;
        }
        let (center, spread) = match info {
            Some(o) => (o.center, o.spread.max(0.3)),
            None => (Vec3::ZERO, 1.0),
        };
        Fingerprint {
            center,
            spread,
            mass,
            sig,
        }
    }

    /// Dimensionless distance between two fingerprints: relative movement
    /// of the coarse mass distribution plus center displacement in units
    /// of the spread. ~0 for an unchanged orbital, O(1) for a relocated
    /// one; a uniform amplitude change `φ → (1+γ)φ` scores ≈ 2γ.
    pub fn distance(&self, other: &Fingerprint) -> f64 {
        let mut dd = 0.0;
        for (a, b) in self.sig.iter().zip(&other.sig) {
            let d = a - b;
            dd += d * d;
        }
        let scale = self.mass.max(other.mass).max(1e-300);
        let d_field = dd.sqrt() / scale;
        let d_center = self.center.distance(other.center) / self.spread.max(other.spread);
        d_field + d_center
    }
}

/// Reuse counters of one incremental build (also accumulated across
/// builds in [`IncrementalExchange::totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IncStats {
    /// Pairs (or operator tasks) whose cached contribution was reused.
    pub pairs_reused: usize,
    /// Pairs (or operator tasks) recomputed through the workspace path.
    pub pairs_recomputed: usize,
    /// Pairs invalidated wholesale (cache miss, cadence, or a global
    /// invalidation — grid/basis/ε change) rather than by fingerprint.
    pub pairs_invalidated: usize,
    /// Estimated wall-clock saved by reuse (seconds), from the measured
    /// per-pair cost of the recomputed work.
    pub time_saved_s: f64,
}

impl IncStats {
    /// Add another build's counters into this accumulator.
    pub fn accumulate(&mut self, other: &IncStats) {
        self.pairs_reused += other.pairs_reused;
        self.pairs_recomputed += other.pairs_recomputed;
        self.pairs_invalidated += other.pairs_invalidated;
        self.time_saved_s += other.time_saved_s;
    }

    /// The counters accumulated since a previous cumulative snapshot
    /// `baseline` — the work attributable to what ran between the two
    /// reads (e.g. one MD outer step against the trajectory totals).
    pub fn since(&self, baseline: &IncStats) -> IncStats {
        IncStats {
            pairs_reused: self.pairs_reused.saturating_sub(baseline.pairs_reused),
            pairs_recomputed: self
                .pairs_recomputed
                .saturating_sub(baseline.pairs_recomputed),
            pairs_invalidated: self
                .pairs_invalidated
                .saturating_sub(baseline.pairs_invalidated),
            time_saved_s: (self.time_saved_s - baseline.time_saved_s).max(0.0),
        }
    }
}

/// Cached state of the pair-energy path.
struct EnergyCache {
    dims: (usize, usize, usize),
    norb: usize,
    eps_screen: f64,
    /// Fingerprint each cached contribution was computed at.
    fps: Vec<Fingerprint>,
    /// `(i, j) → −w_ij (ij|ij)` exactly as the from-scratch loop computes it.
    contrib: HashMap<(u32, u32), f64>,
    /// Smoothed seconds per recomputed pair (for the time-saved estimate).
    cost_per_pair: f64,
    builds_since_full: usize,
}

/// Cached state of the K-operator path.
struct KCache {
    dims: (usize, usize, usize),
    nao: usize,
    nocc: usize,
    eps_screen: f64,
    fps: Vec<Fingerprint>,
    /// Unsymmetrized `ΔK_j` per occupied orbital (`K = Σ_j ΔK_j`).
    contribs: Vec<Mat>,
    /// `(evaluated, skipped)` task counts behind each cached `ΔK_j`.
    tasks: Vec<(usize, usize)>,
    cost_per_task: f64,
    builds_since_full: usize,
}

/// Persistent incremental-exchange state. One instance lives across the
/// SCF iterations of a driver (and across the MD steps of a trajectory)
/// and owns both the energy-path and operator-path caches.
pub struct IncrementalExchange {
    /// Clean/dirty fingerprint tolerance. `0` disables reuse (every build
    /// is from scratch); typical SCF values are 1e-4..1e-2.
    pub eps_inc: f64,
    /// Force a full rebuild every N builds (`0` = never force). Bounds
    /// error drift independently of `eps_inc`.
    pub rebuild_every: usize,
    energy: Option<EnergyCache>,
    k: Option<KCache>,
    /// Cumulative counters across all builds since construction.
    pub totals: IncStats,
    /// Per-phase instrumentation of the most recent build (either path).
    pub last_profile: BuildProfile,
    /// Pinned kernel choice for the dirty recompute (None = autotune),
    /// see [`IncrementalExchange::force_kernel_choice`].
    kernel_choice: Option<KernelChoice>,
    /// Execution backend of the dirty recompute (None = rayon). The serve
    /// scheduler points this at its rank-pool lease
    /// (`ExecBackend::Comm { nranks, .. }`); engine bit-identity across
    /// backends means the cache stays valid across backend changes.
    backend: Option<ExecBackend>,
    // Grow-once scratch reused across builds (zero allocations in the
    // all-clean steady state).
    fp_scratch: Vec<Fingerprint>,
    dirty_orb: Vec<bool>,
    dirty_pairs: Vec<Pair>,
    dirty_slots: Vec<usize>,
}

impl std::fmt::Debug for IncrementalExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalExchange")
            .field("eps_inc", &self.eps_inc)
            .field("rebuild_every", &self.rebuild_every)
            .field("totals", &self.totals)
            .finish()
    }
}

impl IncrementalExchange {
    /// Fresh state with tolerance `eps_inc` and full-rebuild cadence
    /// `rebuild_every` (`0` = no forced rebuilds).
    pub fn new(eps_inc: f64, rebuild_every: usize) -> Self {
        assert!(eps_inc >= 0.0, "eps_inc must be non-negative");
        Self {
            eps_inc,
            rebuild_every,
            energy: None,
            k: None,
            totals: IncStats::default(),
            last_profile: BuildProfile::default(),
            kernel_choice: None,
            backend: None,
            fp_scratch: Vec::new(),
            dirty_orb: Vec::new(),
            dirty_pairs: Vec::new(),
            dirty_slots: Vec::new(),
        }
    }

    /// Drop all cached state (next builds are from scratch).
    pub fn invalidate(&mut self) {
        self.energy = None;
        self.k = None;
    }

    /// Pin the kernel (pair path, SIMD level) of the dirty recompute
    /// instead of autotuning — needed when one process must compare an
    /// incremental build bit-for-bit against an engine build running a
    /// specific choice. Invalidates the cache: contributions computed
    /// under a different kernel would no longer be bit-compatible.
    pub fn force_kernel_choice(&mut self, choice: KernelChoice) {
        if self.kernel_choice != Some(choice) {
            self.kernel_choice = Some(choice);
            self.invalidate();
        }
    }

    /// Route the dirty recompute through `backend` instead of the default
    /// rayon pool. Unlike [`IncrementalExchange::force_kernel_choice`]
    /// this does *not* invalidate the cache: every backend produces
    /// bit-identical contributions (the engine's canonical-order
    /// guarantee), so cached entries remain exact.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = Some(backend);
    }

    /// The configured engine over `grid`/`solver` (rayon backend unless
    /// one was set, pinned kernel choice when one was forced).
    fn engine<'a>(&self, grid: &'a RealGrid, solver: &'a PoissonSolver) -> ExchangeEngine<'a> {
        let mut builder = ExchangeEngine::builder(grid, solver);
        if let Some(c) = self.kernel_choice {
            builder = builder.kernel_choice(c);
        }
        if let Some(b) = self.backend {
            builder = builder.backend(b);
        }
        builder
            .build()
            .expect("a backend over an optional pinned kernel is always a valid configuration")
    }

    /// Incremental twin of [`crate::hfx::exchange_energy`]: clean pairs
    /// are summed from the cache, dirty pairs are recomputed
    /// (rayon-parallel over the dirty work only) and re-cached. `infos`
    /// supplies per-orbital centers/spreads for the fingerprints (same
    /// length as `orbitals`).
    pub fn exchange_energy(
        &mut self,
        grid: &RealGrid,
        solver: &PoissonSolver,
        orbitals: &[Vec<f64>],
        infos: &[OrbitalInfo],
        pairs: &PairList,
    ) -> crate::hfx::HfxResult {
        assert_eq!(orbitals.len(), infos.len());
        let norb = orbitals.len();
        self.fingerprint_all(grid, orbitals, Some(infos));

        // Global invalidation + cadence.
        let cache_ok = self
            .energy
            .as_ref()
            .is_some_and(|c| c.dims == grid.dims && c.norb == norb && c.eps_screen == pairs.eps);
        let cadence_hit = self.rebuild_every > 0
            && self
                .energy
                .as_ref()
                .is_some_and(|c| c.builds_since_full + 1 >= self.rebuild_every);
        let full = !cache_ok || cadence_hit || self.eps_inc <= 0.0;

        // Per-orbital dirtiness against the *cached* fingerprints.
        self.dirty_orb.clear();
        self.dirty_orb.resize(norb, true);
        if !full {
            let cache = self
                .energy
                .as_ref()
                .expect("a non-full build implies a validated energy cache");
            for j in 0..norb {
                self.dirty_orb[j] = cache.fps[j].distance(&self.fp_scratch[j]) > self.eps_inc;
            }
        }

        // Classify pairs; sum clean contributions straight from the cache.
        self.dirty_pairs.clear();
        let mut clean_sum = 0.0;
        let mut reused = 0;
        let mut invalidated = 0;
        for p in &pairs.pairs {
            let key = (p.i, p.j);
            let cached = if full {
                None
            } else {
                self.energy
                    .as_ref()
                    .expect("a non-full build implies a validated energy cache")
                    .contrib
                    .get(&key)
                    .copied()
            };
            match cached {
                Some(c) if !self.dirty_orb[p.i as usize] && !self.dirty_orb[p.j as usize] => {
                    clean_sum += c;
                    reused += 1;
                }
                _ => {
                    if full || cached.is_none() {
                        invalidated += 1;
                    }
                    self.dirty_pairs.push(*p);
                }
            }
        }

        // Recompute the dirty pairs through the engine (rayon backend,
        // same chunking and kernel choice as a from-scratch build, so the
        // dirty contributions are bit-identical to that build's).
        let n_dirty = self.dirty_pairs.len();
        let mut profile = BuildProfile::default();
        let t_dirty0 = Instant::now();
        let contribs = if n_dirty > 0 {
            self.engine(grid, solver)
                .pair_contribs(orbitals, &self.dirty_pairs, &mut profile)
        } else {
            Vec::new()
        };
        let dt_dirty = t_dirty0.elapsed().as_secs_f64();

        // Install the recomputed contributions. A full build starts a
        // fresh cache; the steady all-clean rebuild touches nothing here
        // (no allocations).
        if full || self.energy.is_none() {
            self.energy = Some(EnergyCache {
                dims: grid.dims,
                norb,
                eps_screen: pairs.eps,
                fps: self.fp_scratch.clone(),
                contrib: HashMap::new(),
                cost_per_pair: 0.0,
                builds_since_full: 0,
            });
        }
        let cache = self
            .energy
            .as_mut()
            .expect("the energy cache was just installed above");
        let mut dirty_sum = 0.0;
        for (p, c) in self.dirty_pairs.iter().zip(&contribs) {
            cache.contrib.insert((p.i, p.j), *c);
            dirty_sum += *c;
        }
        // Refresh the fingerprint baselines of *dirty* orbitals only (all
        // their pairs were just recomputed). Clean orbitals keep the
        // fingerprint their cached data was computed at, so slow drift
        // accumulates in the comparison instead of being re-baselined away.
        for (j, &d) in self.dirty_orb.iter().enumerate() {
            if d {
                cache.fps[j] = self.fp_scratch[j];
            }
        }
        if n_dirty > 0 {
            cache.cost_per_pair = dt_dirty / n_dirty as f64;
        }
        cache.builds_since_full = if full { 0 } else { cache.builds_since_full + 1 };

        let stats = IncStats {
            pairs_reused: reused,
            pairs_recomputed: n_dirty,
            pairs_invalidated: invalidated,
            time_saved_s: reused as f64 * cache.cost_per_pair,
        };
        self.totals.accumulate(&stats);
        profile.pairs_computed = n_dirty;
        profile.pairs_reused = reused;
        profile.cache_hits = reused;
        profile.pairs_screened = pairs.n_candidates - pairs.len();
        profile.bytes_reduced += contribs.len() * std::mem::size_of::<f64>();
        self.last_profile = profile;
        crate::hfx::HfxResult {
            energy: clean_sum + dirty_sum,
            pairs_evaluated: pairs.len(),
            pairs_screened: pairs.n_candidates - pairs.len(),
            inc: stats,
            profile,
        }
    }

    /// Incremental twin of
    /// [`crate::operator::exchange_operator_grid_screened`]: the
    /// `(occupied j, AO ν)` Poisson tasks of a clean orbital are replaced
    /// by its cached `ΔK_j`; dirty orbitals re-run their surviving tasks
    /// (rayon-parallel over dirty tasks only). With `eps_inc = 0` the
    /// result is bit-identical to the from-scratch build.
    ///
    /// Returns `(K, evaluated, skipped, stats)` where evaluated/skipped
    /// count the *logical* tasks of this build (reused ones included, so
    /// the numbers match the from-scratch call).
    pub fn exchange_operator(
        &mut self,
        basis: &liair_basis::Basis,
        c_occ: &Mat,
        nocc: usize,
        grid: &RealGrid,
        solver: &PoissonSolver,
        eps: f64,
    ) -> (Mat, usize, usize, IncStats) {
        let mut profile = BuildProfile::default();
        let t_ao = Instant::now();
        let setup = crate::engine::kpath::k_build_setup(basis, c_occ, nocc, grid, eps);
        profile.t_ao_eval_s += t_ao.elapsed().as_secs_f64();
        let nao = basis.nao();
        let infos = if setup.orb_info.is_empty() {
            None
        } else {
            Some(setup.orb_info.as_slice())
        };
        self.fingerprint_all(grid, &setup.orbitals, infos);

        let cache_ok = self.k.as_ref().is_some_and(|c| {
            c.dims == grid.dims && c.nao == nao && c.nocc == nocc && c.eps_screen == eps
        });
        let cadence_hit = self.rebuild_every > 0
            && self
                .k
                .as_ref()
                .is_some_and(|c| c.builds_since_full + 1 >= self.rebuild_every);
        let full = !cache_ok || cadence_hit || self.eps_inc <= 0.0;

        self.dirty_orb.clear();
        self.dirty_orb.resize(nocc, true);
        if !full {
            let cache = self
                .k
                .as_ref()
                .expect("a non-full build implies a validated K cache");
            for j in 0..nocc {
                self.dirty_orb[j] = cache.fps[j].distance(&self.fp_scratch[j]) > self.eps_inc;
            }
        }
        self.dirty_slots.clear();
        self.dirty_slots
            .extend((0..nocc).filter(|&j| self.dirty_orb[j]));

        let t_dirty0 = Instant::now();
        let dirty_results = self
            .engine(grid, solver)
            .k_orbital_contribs(&setup, eps, &self.dirty_slots, &mut profile)
            .unwrap_or_else(|e| panic!("incremental K rebuild failed: {e}"));
        let dt_dirty = t_dirty0.elapsed().as_secs_f64();

        // Install recomputed contributions, then assemble K = Σ_j ΔK_j in
        // ascending-j order (the same floating-point sequence as the
        // from-scratch task accumulation).
        if full || self.k.is_none() {
            self.k = Some(KCache {
                dims: grid.dims,
                nao,
                nocc,
                eps_screen: eps,
                fps: self.fp_scratch.clone(),
                contribs: vec![Mat::zeros(nao, nao); nocc],
                tasks: vec![(0, 0); nocc],
                cost_per_task: 0.0,
                builds_since_full: 0,
            });
        }
        let cache = self
            .k
            .as_mut()
            .expect("the K cache was just installed above");
        let mut recomputed_tasks = 0;
        for ((j, dk), counts) in dirty_results {
            recomputed_tasks += counts.0;
            cache.contribs[j] = dk;
            cache.tasks[j] = counts;
            cache.fps[j] = self.fp_scratch[j];
        }
        if recomputed_tasks > 0 {
            cache.cost_per_task = dt_dirty / recomputed_tasks as f64;
        }
        let mut k = Mat::zeros(nao, nao);
        let mut evaluated = 0;
        let mut skipped = 0;
        let mut reused_tasks = 0;
        for j in 0..nocc {
            k.axpy(1.0, &cache.contribs[j]);
            evaluated += cache.tasks[j].0;
            skipped += cache.tasks[j].1;
            if !self.dirty_orb[j] {
                reused_tasks += cache.tasks[j].0;
            }
        }
        crate::engine::kpath::symmetrize(&mut k);

        cache.builds_since_full = if full { 0 } else { cache.builds_since_full + 1 };
        let stats = IncStats {
            pairs_reused: reused_tasks,
            pairs_recomputed: recomputed_tasks,
            pairs_invalidated: if full { recomputed_tasks } else { 0 },
            time_saved_s: reused_tasks as f64 * cache.cost_per_task,
        };
        self.totals.accumulate(&stats);
        profile.pairs_computed = recomputed_tasks;
        profile.pairs_reused = reused_tasks;
        profile.cache_hits = reused_tasks;
        profile.pairs_screened = skipped;
        self.last_profile = profile;
        (k, evaluated, skipped, stats)
    }

    /// Compute fingerprints for all orbital fields into the reusable
    /// scratch (no allocations once the scratch has the right length).
    fn fingerprint_all(
        &mut self,
        grid: &RealGrid,
        orbitals: &[Vec<f64>],
        infos: Option<&[OrbitalInfo]>,
    ) {
        let n = orbitals.len();
        if self.fp_scratch.len() != n {
            self.fp_scratch.resize(
                n,
                Fingerprint {
                    center: Vec3::ZERO,
                    spread: 1.0,
                    mass: 0.0,
                    sig: [0.0; SIG_CELLS],
                },
            );
        }
        for (j, field) in orbitals.iter().enumerate() {
            let info = infos.map(|i| &i[j]);
            self.fp_scratch[j] = Fingerprint::of_field(grid, field, info);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screening::build_pair_list;
    use liair_basis::Cell;
    use liair_math::rng::SplitMix64;

    fn gaussian_field(grid: &RealGrid, center: Vec3, sigma: f64) -> Vec<f64> {
        (0..grid.len())
            .map(|p| {
                let r = grid.point_flat(p);
                let d2 = r.distance(center).powi(2);
                (-d2 / (2.0 * sigma * sigma)).exp()
            })
            .collect()
    }

    fn test_setup() -> (RealGrid, PoissonSolver, Vec<Vec<f64>>, Vec<OrbitalInfo>) {
        let grid = RealGrid::cubic(Cell::cubic(12.0), 20);
        let solver = PoissonSolver::isolated(grid);
        let centers = [
            Vec3::new(4.0, 6.0, 6.0),
            Vec3::new(6.0, 6.0, 6.0),
            Vec3::new(8.0, 6.0, 6.0),
        ];
        let fields: Vec<Vec<f64>> = centers
            .iter()
            .map(|&c| gaussian_field(&grid, c, 1.0))
            .collect();
        let infos: Vec<OrbitalInfo> = centers
            .iter()
            .map(|&c| OrbitalInfo {
                center: c,
                spread: 1.0,
            })
            .collect();
        (grid, solver, fields, infos)
    }

    #[test]
    fn identical_rebuild_reuses_everything() {
        let (grid, solver, fields, infos) = test_setup();
        let pairs = build_pair_list(&infos, 0.0, None);
        let mut inc = IncrementalExchange::new(1e-6, 0);
        let first = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(first.inc.pairs_recomputed, pairs.len());
        assert_eq!(first.inc.pairs_reused, 0);
        let second = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(second.inc.pairs_reused, pairs.len());
        assert_eq!(second.inc.pairs_recomputed, 0);
        assert_eq!(second.energy, first.energy);
        assert!(inc.totals.pairs_reused == pairs.len());
    }

    #[test]
    fn moved_orbital_dirties_only_its_pairs() {
        let (grid, solver, mut fields, mut infos) = test_setup();
        let pairs = build_pair_list(&infos, 0.0, None);
        let mut inc = IncrementalExchange::new(1e-4, 0);
        inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        // Move orbital 2 by a Bohr: its 3 pairs (0,2) (1,2) (2,2) go dirty,
        // the other 3 stay clean.
        infos[2].center = Vec3::new(9.0, 6.0, 6.0);
        fields[2] = gaussian_field(&grid, infos[2].center, 1.0);
        let r = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(r.inc.pairs_recomputed, 3);
        assert_eq!(r.inc.pairs_reused, 3);
        // And the result matches a from-scratch build closely.
        let scratch = crate::hfx::exchange_energy(&grid, &solver, &fields, &pairs);
        assert!(
            (r.energy - scratch.energy).abs() < 1e-12,
            "{} vs {}",
            r.energy,
            scratch.energy
        );
    }

    #[test]
    fn cadence_forces_full_rebuild() {
        let (grid, solver, fields, infos) = test_setup();
        let pairs = build_pair_list(&infos, 0.0, None);
        let mut inc = IncrementalExchange::new(1e-4, 2);
        inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        let a = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(a.inc.pairs_reused, pairs.len());
        let b = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        // Next build hits the every-2 cadence: everything recomputed.
        assert_eq!(b.inc.pairs_recomputed, pairs.len(), "{:?}", b.inc);
    }

    #[test]
    fn grid_change_invalidates_globally() {
        let (grid, solver, fields, infos) = test_setup();
        let pairs = build_pair_list(&infos, 0.0, None);
        let mut inc = IncrementalExchange::new(1e-4, 0);
        inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        let grid2 = RealGrid::cubic(Cell::cubic(12.0), 24);
        let solver2 = PoissonSolver::isolated(grid2);
        let fields2: Vec<Vec<f64>> = infos
            .iter()
            .map(|o| gaussian_field(&grid2, o.center, 1.0))
            .collect();
        let r = inc.exchange_energy(&grid2, &solver2, &fields2, &infos, &pairs);
        assert_eq!(r.inc.pairs_reused, 0);
        assert_eq!(r.inc.pairs_invalidated, pairs.len());
    }

    #[test]
    fn fingerprint_is_sign_invariant_and_scales() {
        let grid = RealGrid::cubic(Cell::cubic(10.0), 16);
        let f = gaussian_field(&grid, Vec3::new(5.0, 5.0, 5.0), 1.2);
        let neg: Vec<f64> = f.iter().map(|v| -v).collect();
        let a = Fingerprint::of_field(&grid, &f, None);
        let b = Fingerprint::of_field(&grid, &neg, None);
        assert!(a.distance(&b) < 1e-14, "sign flip must be invisible");
        // A 1% amplitude change scores ≈ 2% distance.
        let scaled: Vec<f64> = f.iter().map(|v| 1.01 * v).collect();
        let c = Fingerprint::of_field(&grid, &scaled, None);
        let d = a.distance(&c);
        assert!(d > 5e-3 && d < 5e-2, "distance {d}");
    }

    #[test]
    fn random_fields_match_scratch_when_dirty() {
        // eps_inc = 0: every build recomputes; energies equal from-scratch.
        let grid = RealGrid::cubic(Cell::cubic(8.0), 16);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = SplitMix64::new(42);
        let fields: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect())
            .collect();
        let infos = vec![
            OrbitalInfo {
                center: Vec3::ZERO,
                spread: 1.0,
            };
            3
        ];
        let pairs = build_pair_list(&infos, 0.0, None);
        let mut inc = IncrementalExchange::new(0.0, 0);
        let a = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        let b = crate::hfx::exchange_energy(&grid, &solver, &fields, &pairs);
        assert!((a.energy - b.energy).abs() <= 1e-12 * b.energy.abs());
        assert_eq!(a.inc.pairs_reused, 0);
    }
}
