//! The grid exact-exchange *operator* — the full coupling of the paper's
//! pair-Poisson exchange into the self-consistent field.
//!
//! The energy-only path (`crate::hfx`) evaluates `Σ w_ij (ij|ij)`; an SCF
//! additionally needs the AO-basis exchange matrix
//!
//! `K_{μν} = Σ_{j occ} (μ j | j ν)
//!         = Σ_j ∬ χ_μ(r) φ_j(r) v_C(r,r') φ_j(r') χ_ν(r')`,
//!
//! built as one Poisson solve per `(occupied j, AO ν)` pair density — the
//! same work unit the parallel scheme distributes (in CPMD terms: the
//! exchange potentials `v_jν` acting back on the orbitals). The build
//! itself lives in the engine ([`ExchangeEngine::k_operator`]); the entry
//! points here are thin rayon-backend configurations of it, and the
//! [`rhf_with_grid_exchange`] driver converges an SCF in which *all*
//! exact exchange comes from the grid path, validating the full pipeline
//! against the purely analytic RHF.

use crate::engine::{BuildProfile, ExchangeEngine};
use liair_basis::{Basis, Cell, Molecule};
use liair_grid::{PoissonSolver, RealGrid};
use liair_integrals::{kinetic_matrix, nuclear_matrix, overlap_matrix, JkBuilder};
use liair_math::linalg::{eigh, sym_inv_sqrt};
use liair_math::Mat;

/// Build `K_{μν}` on the grid from occupied orbital fields.
///
/// `c_occ` holds the occupied MO coefficients (`nao × nocc`) in the same
/// (box-centered) basis the grid fields are evaluated in.
pub fn exchange_operator_grid(
    basis: &Basis,
    c_occ: &Mat,
    nocc: usize,
    grid: &RealGrid,
    solver: &PoissonSolver,
) -> Mat {
    exchange_operator_grid_screened(basis, c_occ, nocc, grid, solver, 0.0).0
}

/// As [`exchange_operator_grid`], dropping `(orbital j, AO ν)` tasks whose
/// Gaussian-overlap bound falls below `eps` (the same knob as the energy
/// path). Returns `(K, tasks_evaluated, tasks_skipped)`.
///
/// Thin wrapper over [`ExchangeEngine::k_operator`] on the rayon backend.
/// Built as `K = Σ_j ΔK_j` from per-orbital contributions — the same
/// assembly the incremental path ([`crate::incremental::IncrementalExchange`])
/// uses, so an incremental build with `eps_inc = 0` is bit-identical.
pub fn exchange_operator_grid_screened(
    basis: &Basis,
    c_occ: &Mat,
    nocc: usize,
    grid: &RealGrid,
    solver: &PoissonSolver,
    eps: f64,
) -> (Mat, usize, usize) {
    let out = ExchangeEngine::new(grid, solver).k_operator(basis, c_occ, nocc, eps);
    (out.k, out.evaluated, out.skipped)
}

/// Result of the grid-exchange SCF.
#[derive(Debug, Clone)]
pub struct GridScfResult {
    /// Total energy (Hartree).
    pub energy: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Converged flag.
    pub converged: bool,
    /// Final occupied coefficients (box-centered basis).
    pub c_occ: Mat,
    /// Total `(j, ν)` exchange tasks evaluated across all iterations.
    pub tasks_evaluated: usize,
    /// Total tasks dropped by the ε schedule.
    pub tasks_skipped: usize,
    /// Tasks satisfied from the incremental cache instead of a Poisson
    /// solve (0 for non-incremental runs; included in `tasks_evaluated`).
    pub tasks_reused: usize,
    /// Per-phase build instrumentation accumulated over every K build of
    /// the SCF (times and counters sum across iterations).
    pub profile: BuildProfile,
}

/// Restricted Hartree–Fock in which the exchange matrix is built on the
/// grid every iteration (Coulomb and one-electron parts stay analytic —
/// exactly the split of the paper's plane-wave code, where the Hartree
/// term rides the density FFT and exchange is the expensive pair loop).
///
/// The molecule is centered in a cubic box of edge `extent + 2·padding`
/// with an `n³` grid. Suitable for small valence-only-friendly systems
/// (H-based molecules); heavier atoms need core filtering as in
/// [`crate::hfx::grid_exchange_for_molecule`].
pub fn rhf_with_grid_exchange(
    mol: &Molecule,
    n: usize,
    padding: f64,
    max_iter: usize,
    tol: f64,
) -> GridScfResult {
    rhf_with_grid_exchange_scheduled(
        mol,
        n,
        padding,
        max_iter,
        tol,
        crate::screening::EpsSchedule::fixed(0.0),
    )
}

/// As [`rhf_with_grid_exchange`] with an ε *schedule*: early iterations
/// screen aggressively (fewer exchange tasks), tightening toward
/// convergence — the SCF-level payoff of the controllable-accuracy knob.
pub fn rhf_with_grid_exchange_scheduled(
    mol: &Molecule,
    n: usize,
    padding: f64,
    max_iter: usize,
    tol: f64,
    schedule: crate::screening::EpsSchedule,
) -> GridScfResult {
    let (mol_c, grid, solver) = center_in_box(mol, n, padding);
    rhf_with_grid_exchange_in_cell(&mol_c, &grid, &solver, max_iter, tol, schedule, None, None)
}

/// As [`rhf_with_grid_exchange_scheduled`] with an incremental-exchange
/// state reused across the SCF iterations: the K build of iteration `it`
/// recomputes only the orbitals that moved since their cached contribution
/// (tolerance from `inc_schedule`), reusing the rest. `inc` persists
/// across calls, so a caller stepping a geometry (MD) keeps the cache warm
/// between steps *provided the box frame is fixed* — use
/// [`rhf_with_grid_exchange_in_cell`] directly for that; this entry point
/// re-centers per call and is meant for single-point runs.
#[allow(clippy::too_many_arguments)]
pub fn rhf_with_grid_exchange_incremental(
    mol: &Molecule,
    n: usize,
    padding: f64,
    max_iter: usize,
    tol: f64,
    schedule: crate::screening::EpsSchedule,
    inc_schedule: crate::screening::IncSchedule,
    inc: &mut crate::incremental::IncrementalExchange,
) -> GridScfResult {
    let (mol_c, grid, solver) = center_in_box(mol, n, padding);
    rhf_with_grid_exchange_in_cell(
        &mol_c,
        &grid,
        &solver,
        max_iter,
        tol,
        schedule,
        Some((inc, inc_schedule)),
        None,
    )
}

/// Center `mol` in a cubic box sized to its extent plus `padding` on each
/// side, with an `n³` grid and an isolated Poisson solver.
fn center_in_box(mol: &Molecule, n: usize, padding: f64) -> (Molecule, RealGrid, PoissonSolver) {
    let (lo, hi) = mol.bounding_box();
    let extent = (hi - lo).x.max((hi - lo).y).max((hi - lo).z);
    let edge = extent + 2.0 * padding;
    let shift = liair_math::Vec3::splat(edge / 2.0) - (lo + hi) * 0.5;
    let mut mol_c = mol.clone();
    mol_c.translate(shift);
    let grid = RealGrid::cubic(Cell::cubic(edge), n);
    let solver = PoissonSolver::isolated(grid);
    (mol_c, grid, solver)
}

/// The grid-exchange SCF loop itself, in a caller-fixed frame: `mol_c`
/// must already sit inside the cell `grid` discretizes. This is the MD
/// entry point — a fixed box keeps orbital fields comparable across steps,
/// which is what lets an [`crate::incremental::IncrementalExchange`] passed
/// in `inc` carry its cache from one step to the next.
#[allow(clippy::too_many_arguments)]
pub fn rhf_with_grid_exchange_in_cell(
    mol_c: &Molecule,
    grid: &RealGrid,
    solver: &PoissonSolver,
    max_iter: usize,
    tol: f64,
    schedule: crate::screening::EpsSchedule,
    mut inc: Option<(
        &mut crate::incremental::IncrementalExchange,
        crate::screening::IncSchedule,
    )>,
    guess: Option<&Mat>,
) -> GridScfResult {
    let basis = Basis::sto3g(mol_c);
    let nocc = mol_c.nocc();
    let nao = basis.nao();

    let s = overlap_matrix(&basis);
    let h = kinetic_matrix(&basis).add(&nuclear_matrix(&basis, mol_c));
    let x = sym_inv_sqrt(&s);
    let e_nuc = mol_c.nuclear_repulsion();
    let jk = JkBuilder::new(&basis);
    let engine = ExchangeEngine::new(grid, solver);

    // Core guess, unless the caller warm-starts from a previous step's
    // converged orbitals (an MD loop: iteration 1 then starts next to the
    // cached fingerprints instead of at the delocalized core guess).
    let mut c_occ = match guess {
        Some(c) => c.clone(),
        None => occupied_from(&h, &x, nao, nocc),
    };
    let mut energy = 0.0;
    let mut converged = false;
    let mut iterations = 0;
    let mut tasks_evaluated = 0;
    let mut tasks_skipped = 0;
    let mut tasks_reused = 0;
    let mut profile = BuildProfile::default();
    for it in 1..=max_iter {
        iterations = it;
        let density = density_of(&c_occ, nocc);
        let (j, _unused_k) = jk.build(&density, 1e-11);
        // K here is Σ_j (μj|jν) = K(D)/2, so the RHF Fock term −½K(D)
        // becomes −K and the exchange energy −¼Tr(D·K(D)) becomes
        // −½Tr(D·K).
        let eps = schedule.eps_for(it - 1);
        let (k, evaluated, skipped) = match inc.as_mut() {
            Some((state, inc_schedule)) => {
                state.eps_inc = inc_schedule.eps_for(it - 1);
                state.rebuild_every = inc_schedule.rebuild_every;
                let (k, evaluated, skipped, stats) =
                    state.exchange_operator(&basis, &c_occ, nocc, grid, solver, eps);
                tasks_reused += stats.pairs_reused;
                profile.merge(&state.last_profile);
                (k, evaluated, skipped)
            }
            None => {
                let out = engine.k_operator(&basis, &c_occ, nocc, eps);
                profile.merge(&out.profile);
                (out.k, out.evaluated, out.skipped)
            }
        };
        tasks_evaluated += evaluated;
        tasks_skipped += skipped;
        let mut f = h.clone();
        f.axpy(1.0, &j);
        f.axpy(-1.0, &k);
        let e_elec = density.trace_product(&h) + 0.5 * density.trace_product(&j)
            - 0.5 * density.trace_product(&k);
        let new_energy = e_elec + e_nuc;
        let de = (new_energy - energy).abs();
        energy = new_energy;
        c_occ = occupied_from(&f, &x, nao, nocc);
        if it > 1 && de < tol {
            converged = true;
            break;
        }
    }
    GridScfResult {
        energy,
        iterations,
        converged,
        c_occ,
        tasks_evaluated,
        tasks_skipped,
        tasks_reused,
        profile,
    }
}

fn occupied_from(f: &Mat, x: &Mat, nao: usize, nocc: usize) -> Mat {
    let fp = x.transpose().matmul(f).matmul(x);
    let (_, cp) = eigh(&fp);
    let c = x.matmul(&cp);
    let mut out = Mat::zeros(nao, nocc);
    for mu in 0..nao {
        for k in 0..nocc {
            out[(mu, k)] = c[(mu, k)];
        }
    }
    out
}

fn density_of(c_occ: &Mat, nocc: usize) -> Mat {
    let nao = c_occ.nrows();
    let mut d = Mat::zeros(nao, nao);
    for mu in 0..nao {
        for nu in 0..nao {
            let mut acc = 0.0;
            for k in 0..nocc {
                acc += c_occ[(mu, k)] * c_occ[(nu, k)];
            }
            d[(mu, nu)] = 2.0 * acc;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::approx_eq;
    use liair_scf::{rhf, ScfOptions};

    #[test]
    fn grid_k_matches_analytic_k() {
        // Build K on the grid for the converged H2 density and compare to
        // the analytic K(D)/2 (K(D) contracts the doubled density).
        let mol = systems::h2();
        let basis0 = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis0, &ScfOptions::default());
        // Center everything in a box.
        let edge = 16.0;
        let shift = liair_math::Vec3::splat(edge / 2.0) - mol.centroid();
        let mut mol_c = mol.clone();
        mol_c.translate(shift);
        let basis = Basis::sto3g(&mol_c);
        let grid = RealGrid::cubic(Cell::cubic(edge), 64);
        let solver = PoissonSolver::isolated(grid);
        let k_grid = exchange_operator_grid(&basis, &scf.c, scf.nocc, &grid, &solver);
        // Analytic: K(D) with D = 2CCᵀ equals 2 × Σ_j (μj|jν).
        let (_, k_an) = liair_integrals::build_jk(&basis, &scf.density, 0.0);
        let err = k_grid.scale(2.0).sub(&k_an).fro_norm() / k_an.fro_norm();
        assert!(err < 5e-3, "relative K error {err}");
    }

    #[test]
    fn grid_exchange_scf_reproduces_analytic_rhf() {
        // The full loop: SCF where exchange comes from the grid path must
        // land on the analytic RHF energy to grid accuracy.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let reference = rhf(&mol, &basis, &ScfOptions::default());
        let grid_scf = rhf_with_grid_exchange(&mol, 64, 7.0, 40, 1e-8);
        assert!(grid_scf.converged, "grid-exchange SCF did not converge");
        assert!(
            approx_eq(grid_scf.energy, reference.energy, 2e-3),
            "grid SCF {} vs analytic {}",
            grid_scf.energy,
            reference.energy
        );
        assert!(
            grid_scf.profile.is_populated(),
            "SCF must accumulate build profiles: {:?}",
            grid_scf.profile
        );
        assert_eq!(grid_scf.profile.pairs_computed, grid_scf.tasks_evaluated);
    }

    #[test]
    fn adaptive_schedule_converges_to_same_energy_with_fewer_tasks() {
        // Two well-separated H2 molecules: distant (j, ν) tasks are
        // screenable; the scheduled SCF must hit the same energy while
        // evaluating fewer exchange tasks.
        let mut mol = systems::h2();
        let mut far = systems::h2();
        far.translate(liair_math::Vec3::new(0.0, 9.0, 0.0));
        mol.merge(&far);
        let plain = rhf_with_grid_exchange(&mol, 48, 6.0, 40, 1e-8);
        let scheduled = rhf_with_grid_exchange_scheduled(
            &mol,
            48,
            6.0,
            40,
            1e-8,
            crate::screening::EpsSchedule {
                eps_start: 1e-2,
                eps_final: 1e-5,
                tighten_over: 5,
            },
        );
        assert!(plain.converged && scheduled.converged);
        assert!(
            approx_eq(plain.energy, scheduled.energy, 1e-4),
            "{} vs {}",
            plain.energy,
            scheduled.energy
        );
        assert!(scheduled.tasks_skipped > 0, "schedule skipped nothing");
        assert!(scheduled.tasks_evaluated < plain.tasks_evaluated);
    }

    #[test]
    fn incremental_scf_matches_scheduled_and_reuses_tasks() {
        // Same molecule, same screening: the incremental SCF must land on
        // the scheduled SCF's energy (reuse tolerance only perturbs
        // mid-convergence iterations) while skipping Poisson solves.
        let mol = systems::h2();
        let sched = crate::screening::EpsSchedule::fixed(1e-4);
        let plain = rhf_with_grid_exchange_scheduled(&mol, 48, 6.0, 40, 1e-8, sched);
        let mut inc = crate::incremental::IncrementalExchange::new(1e-3, 0);
        let incr = rhf_with_grid_exchange_incremental(
            &mol,
            48,
            6.0,
            40,
            1e-8,
            sched,
            crate::screening::IncSchedule::fixed(1e-3, 0),
            &mut inc,
        );
        assert!(plain.converged && incr.converged);
        assert!(
            approx_eq(plain.energy, incr.energy, 2e-3),
            "{} vs {}",
            plain.energy,
            incr.energy
        );
        assert!(incr.tasks_reused > 0, "no tasks reused: {incr:?}");
        assert_eq!(incr.tasks_reused, inc.totals.pairs_reused);
        assert_eq!(incr.tasks_reused, incr.profile.pairs_reused);
    }

    #[test]
    fn grid_k_is_symmetric_and_psd_on_diagonal() {
        let mol = systems::h2();
        let basis0 = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis0, &ScfOptions::default());
        let edge = 14.0;
        let shift = liair_math::Vec3::splat(edge / 2.0) - mol.centroid();
        let mut mol_c = mol.clone();
        mol_c.translate(shift);
        let basis = Basis::sto3g(&mol_c);
        let grid = RealGrid::cubic(Cell::cubic(edge), 48);
        let solver = PoissonSolver::isolated(grid);
        let k = exchange_operator_grid(&basis, &scf.c, scf.nocc, &grid, &solver);
        assert!(k.asymmetry() < 1e-12); // symmetrized by construction
        for i in 0..basis.nao() {
            assert!(k[(i, i)] > 0.0, "K[{i},{i}] = {}", k[(i, i)]);
        }
    }
}
