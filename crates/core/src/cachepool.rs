//! Keyed, bounded, cross-job registry of incremental-exchange caches.
//!
//! PR 2's [`IncrementalExchange`] warms its fingerprint caches across the
//! builds of *one* calculation. Screening traffic (the serve workload)
//! is a stream of near-duplicate calculations: many tenants submitting
//! the same solvent boxes at the same grids. [`ExchangeCachePool`] makes
//! the reuse deliberate and *cross-job*: caches are keyed by a
//! [`SystemKey`] describing the physical system + discretization, checked
//! out exclusively by a running job, and checked back in when the job
//! completes — so the next job on the same system starts with every pair
//! warm instead of cold.
//!
//! Checkout **removes** the entry (exclusive ownership): two concurrent
//! jobs on the same key never alias one cache — the second simply takes a
//! miss and builds its own, and check-in keeps whichever returns last.
//! The pool is bounded: beyond `capacity` entries the least-recently-used
//! cache is dropped (eviction = forgetting warm state, never wrong
//! answers — a rebuilt cache reproduces the same bits from scratch).
//!
//! Correctness does not depend on hitting: a cached contribution is only
//! reused when the orbital fingerprints match within `eps_inc`, and at
//! `eps_inc = 0` reuse of *identical* orbitals is bit-identical to
//! recomputation (the PR 2 property). The pool only changes who gets to
//! start warm.

use crate::incremental::IncrementalExchange;
use std::collections::HashMap;
use std::sync::Mutex;

/// Identity of a cacheable exchange workload: same key ⇒ the cached
/// fingerprints are meaningful for the incoming orbitals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemKey {
    /// System name (e.g. solvent id) — the coarse namespace.
    pub system: String,
    /// Grid dimensions the orbitals live on.
    pub dims: (usize, usize, usize),
    /// Occupied-orbital count.
    pub norb: usize,
    /// Seed of the deterministic workload builder (different seeds are
    /// different geometries and must not share fingerprints).
    pub seed: u64,
}

#[derive(Debug)]
struct PoolEntry {
    inc: IncrementalExchange,
    last_use: u64,
}

#[derive(Debug, Default)]
struct PoolMap {
    entries: HashMap<SystemKey, PoolEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    checkins: u64,
}

/// Cumulative pool counters plus current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePoolStats {
    /// Checkouts served by a warm cache.
    pub hits: u64,
    /// Checkouts that started cold.
    pub misses: u64,
    /// Warm caches dropped by the LRU bound.
    pub evictions: u64,
    /// Check-ins accepted.
    pub checkins: u64,
    /// Caches currently parked in the pool.
    pub entries: usize,
    /// Pool bound.
    pub capacity: usize,
}

impl CachePoolStats {
    /// Warm-checkout fraction, 0.0 when nothing was checked out yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cross-job cache registry (shared by reference across scheduler
/// workers; all methods take `&self`).
#[derive(Debug)]
pub struct ExchangeCachePool {
    map: Mutex<PoolMap>,
    capacity: usize,
}

impl ExchangeCachePool {
    /// Pool bounded to `capacity` parked caches (≥ 1).
    pub fn new(capacity: usize) -> ExchangeCachePool {
        ExchangeCachePool {
            map: Mutex::new(PoolMap::default()),
            capacity: capacity.max(1),
        }
    }

    /// Take exclusive ownership of the cache for `key`, or a fresh one
    /// (with the given tolerance/cadence) on a miss. On a hit the parked
    /// cache's own `eps_inc`/`rebuild_every` are overridden with the
    /// caller's — the tolerance is the *job's* accuracy contract, not the
    /// cache's history.
    pub fn checkout(
        &self,
        key: &SystemKey,
        eps_inc: f64,
        rebuild_every: usize,
    ) -> IncrementalExchange {
        let mut m = self.map.lock().unwrap();
        if let Some(entry) = m.entries.remove(key) {
            m.hits += 1;
            let mut inc = entry.inc;
            inc.eps_inc = eps_inc;
            inc.rebuild_every = rebuild_every;
            inc
        } else {
            m.misses += 1;
            IncrementalExchange::new(eps_inc, rebuild_every)
        }
    }

    /// Return a cache to the pool under `key`, evicting the
    /// least-recently-used entry beyond capacity. If a concurrent job
    /// already parked a cache under the same key, the newer one wins (its
    /// fingerprints are at least as fresh).
    pub fn checkin(&self, key: SystemKey, inc: IncrementalExchange) {
        let mut m = self.map.lock().unwrap();
        m.tick += 1;
        let tick = m.tick;
        m.checkins += 1;
        if m.entries
            .insert(
                key.clone(),
                PoolEntry {
                    inc,
                    last_use: tick,
                },
            )
            .is_some()
        {
            // Replaced a same-key entry: population unchanged, no evict.
            return;
        }
        while m.entries.len() > self.capacity {
            let victim = m
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    m.entries.remove(&k);
                    m.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> CachePoolStats {
        let m = self.map.lock().unwrap();
        CachePoolStats {
            hits: m.hits,
            misses: m.misses,
            evictions: m.evictions,
            checkins: m.checkins,
            entries: m.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(system: &str, seed: u64) -> SystemKey {
        SystemKey {
            system: system.to_string(),
            dims: (16, 16, 16),
            norb: 4,
            seed,
        }
    }

    #[test]
    fn checkout_checkin_cycles_count_hits() {
        let pool = ExchangeCachePool::new(4);
        let k = key("pc", 1);
        let inc = pool.checkout(&k, 1e-3, 0); // miss
        pool.checkin(k.clone(), inc);
        let inc = pool.checkout(&k, 1e-3, 0); // hit
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        // While checked out, a second checkout of the same key misses.
        let other = pool.checkout(&k, 1e-3, 0);
        assert_eq!(pool.stats().misses, 2);
        pool.checkin(k.clone(), inc);
        pool.checkin(k.clone(), other); // same-key replace, no eviction
        let s = pool.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn checkout_overrides_tolerance() {
        let pool = ExchangeCachePool::new(4);
        let k = key("dmso", 2);
        pool.checkin(k.clone(), IncrementalExchange::new(1e-2, 5));
        let inc = pool.checkout(&k, 1e-6, 3);
        assert_eq!(inc.eps_inc, 1e-6);
        assert_eq!(inc.rebuild_every, 3);
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let pool = ExchangeCachePool::new(2);
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            pool.checkin(key(name, i as u64), IncrementalExchange::new(0.0, 0));
        }
        let s = pool.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // "a" (oldest) was the victim: checking it out is a miss, the
        // newer two are hits.
        pool.checkout(&key("a", 0), 0.0, 0);
        assert_eq!(pool.stats().misses, 1);
        pool.checkout(&key("b", 1), 0.0, 0);
        pool.checkout(&key("c", 2), 0.0, 0);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn distinct_seeds_are_distinct_keys() {
        let pool = ExchangeCachePool::new(8);
        pool.checkin(key("pc", 1), IncrementalExchange::new(0.0, 0));
        pool.checkout(&key("pc", 2), 0.0, 0);
        assert_eq!(pool.stats().misses, 1, "different geometry, no hit");
    }
}
