//! Hierarchical domain sharding of the pair source.
//!
//! The cell-list builder in [`crate::screening`] makes pair sourcing
//! O(N·partners) on one node, but it still touches every orbital. At the
//! paper's scale (10⁸ atoms on 96 racks) no rank can even *hold* the
//! global orbital table. This module adds the missing level: the periodic
//! cell is cut into a `gx × gy × gz` grid of spatial subdomains, one per
//! rank (mapped onto the torus by `liair-bgq::domainmap`), and each rank
//! materializes only
//!
//! - its **owned** orbitals — those whose wrapped center falls in its box;
//! - its **halo** — foreign orbitals within the screening cutoff of its
//!   box, imported once per build from the face/edge/corner neighbors.
//!
//! Ownership of the surviving pair `(i, j)`, `i ≤ j`, goes to the domain
//! owning orbital `i`. The halo criterion `box_distance(d, c_j) ≤
//! rc(σ_j, σ_max)` makes that domain self-sufficient: if the pair
//! survives screening then `dist(c_i, c_j) ≤ rc(σ_i, σ_j) ≤
//! rc(σ_max, σ_j)`, and the box distance is a lower bound on any
//! distance from a point inside the box — so `j` is guaranteed resident.
//! Every surviving pair is therefore built by exactly one domain, from
//! locally resident data only.
//!
//! **Bit-identity is load-bearing.** Local builds evaluate the identical
//! [`crate::screening::pair_bound`] (minimum image in the full cell) the
//! global builders evaluate, and the merged per-domain lists are sorted
//! into the canonical `(i, j)` order — so the sharded list equals the
//! global [`crate::screening::build_pair_list`] output *to the bit*, and
//! every downstream engine backend (serial, rayon, comm; any SIMD level,
//! any fault plan) produces bit-identical energies from it.
//!
//! [`DomainGeometry`] is deliberately O(1) state (cell, grid, ε, σ_max):
//! the weak-scaling benchmark instantiates a 10⁸-orbital decomposition
//! and materializes a single domain plus its neighbor shell without ever
//! allocating a global array. [`DomainDecomposition`] adds the O(N)
//! owner/owned/halo tables for laptop-scale whole-system runs.

use crate::error::{Error, Result};
use crate::screening::{cutoff_radius, pair_bound, OrbitalInfo, Pair, PairList};
use liair_basis::Cell;
use liair_math::Vec3;
use liair_runtime::{run_spmd_cfg, CollectiveMode, Comm, CommConfig, CommResult};

/// Relative inflation applied to every cutoff comparison so a pair whose
/// bound lands exactly on ε (kept by the `≥ ε` screening rule) can never
/// be lost to the float rounding of the radius/distance round-trip.
const RADIUS_SLACK: f64 = 1.0 + 1e-12;

/// Point-to-point user tag of the halo import (bit 63 clear — the
/// runtime reserves the high bit for internal collective tags).
pub const HALO_TAG: u64 = 0x4841_4C4F; // "HALO"

/// The O(1) description of a domain grid over a periodic cell: enough to
/// answer ownership, halo membership, and neighbor queries for *any*
/// orbital without holding a single global table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainGeometry {
    /// The full periodic cell being sharded.
    pub cell: Cell,
    /// Domain counts per axis; `dims[0]·dims[1]·dims[2]` ranks.
    pub dims: [usize; 3],
    /// Screening threshold the pair lists are built at.
    pub eps: f64,
    /// Largest orbital spread in the system (sets the halo depth).
    pub sigma_max: f64,
}

impl DomainGeometry {
    /// A `dims` grid of equal boxes over `cell`. Needs a finite cutoff
    /// (`0 < eps ≤ 1`), else [`Error::InvalidEps`].
    pub fn new(cell: Cell, dims: [usize; 3], eps: f64, sigma_max: f64) -> Result<Self> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(Error::InvalidEps { eps });
        }
        assert!(
            dims.iter().all(|&g| g >= 1),
            "domain grid must be at least 1 per axis"
        );
        assert!(sigma_max >= 0.0, "spreads are non-negative");
        Ok(Self {
            cell,
            dims,
            eps,
            sigma_max,
        })
    }

    /// Total domain (= rank) count.
    pub fn n_domains(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Box edge lengths per axis.
    pub fn box_widths(&self) -> [f64; 3] {
        [
            self.cell.lengths.x / self.dims[0] as f64,
            self.cell.lengths.y / self.dims[1] as f64,
            self.cell.lengths.z / self.dims[2] as f64,
        ]
    }

    /// The halo depth: the largest cutoff any pair in the system can
    /// have, `rc(σ_max, σ_max, ε)`.
    pub fn halo_radius(&self) -> f64 {
        cutoff_radius(self.sigma_max, self.sigma_max, self.eps)
    }

    /// Linear rank of grid coordinates (x-major, z fastest).
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]
    }

    /// Grid coordinates of a linear rank.
    pub fn coords_of(&self, d: usize) -> [usize; 3] {
        debug_assert!(d < self.n_domains());
        let z = d % self.dims[2];
        let y = (d / self.dims[2]) % self.dims[1];
        let x = d / (self.dims[1] * self.dims[2]);
        [x, y, z]
    }

    /// Owning domain of a point (by wrapped center).
    pub fn domain_of(&self, p: Vec3) -> usize {
        let w = self.cell.wrap(p);
        let mut c = [0usize; 3];
        for k in 0..3 {
            let g = self.dims[k];
            c[k] = ((w[k] / self.cell.lengths[k] * g as f64) as usize).min(g - 1);
        }
        self.rank_of(c)
    }

    /// Circular (periodic) distance from wrapped point `p` to the box of
    /// domain `d` — zero inside, else the closest approach over images.
    pub fn box_distance(&self, d: usize, p: Vec3) -> f64 {
        let w = self.cell.wrap(p);
        let c = self.coords_of(d);
        let widths = self.box_widths();
        let mut sq = 0.0;
        for k in 0..3 {
            let l = self.cell.lengths[k];
            let lo = c[k] as f64 * widths[k];
            let hi = lo + widths[k];
            let x = w[k];
            if x >= lo && x <= hi {
                continue;
            }
            let circ = |a: f64, b: f64| {
                let t = (a - b).abs();
                t.min(l - t)
            };
            let dk = circ(x, lo).min(circ(x, hi));
            sq += dk * dk;
        }
        sq.sqrt()
    }

    /// Periodic distance between the boxes of two domains (zero for
    /// face/edge/corner contact; boxes tile the cell exactly, so the
    /// per-axis gap is a whole number of box widths).
    pub fn box_to_box_distance(&self, d: usize, e: usize) -> f64 {
        let a = self.coords_of(d);
        let b = self.coords_of(e);
        let widths = self.box_widths();
        let mut sq = 0.0;
        for k in 0..3 {
            let g = self.dims[k];
            let t = a[k].abs_diff(b[k]);
            let hops = t.min(g - t);
            if hops > 1 {
                let dk = (hops - 1) as f64 * widths[k];
                sq += dk * dk;
            }
        }
        sq.sqrt()
    }

    /// Domains whose box lies within the halo radius of `d`'s box — the
    /// complete set of ranks `d` imports halo orbitals from (and, by
    /// symmetry, exports to). Ascending rank order.
    pub fn neighbor_domains(&self, d: usize) -> Vec<usize> {
        let h = self.halo_radius() * RADIUS_SLACK;
        (0..self.n_domains())
            .filter(|&e| e != d && self.box_to_box_distance(d, e) <= h)
            .collect()
    }

    /// Whether a foreign orbital belongs in domain `d`'s halo: it is not
    /// owned by `d` and its center lies within `rc(σ, σ_max, ε)` of the
    /// box — exactly the self-sufficiency criterion of the module docs.
    pub fn in_halo(&self, d: usize, o: &OrbitalInfo) -> bool {
        self.domain_of(o.center) != d
            && self.box_distance(d, o.center)
                <= cutoff_radius(o.spread, self.sigma_max, self.eps) * RADIUS_SLACK
    }

    /// Center of domain `d`'s box.
    fn box_center(&self, d: usize) -> Vec3 {
        let c = self.coords_of(d);
        let widths = self.box_widths();
        Vec3::new(
            (c[0] as f64 + 0.5) * widths[0],
            (c[1] as f64 + 0.5) * widths[1],
            (c[2] as f64 + 0.5) * widths[2],
        )
    }

    /// Whether the windowed (binned, O(residents)) local build is exact
    /// for this geometry: residents unfolded minimum-image around the box
    /// center span at most `box + 2·halo` per axis, and plain Euclidean
    /// distance in that window equals the minimum-image distance whenever
    /// every axis extent stays within half the cell. Fails for coarse
    /// grids (e.g. 2 domains per axis), where the local build falls back
    /// to the exact O(residents²) scan.
    pub fn windowed(&self) -> bool {
        let widths = self.box_widths();
        let h = self.halo_radius() * RADIUS_SLACK;
        (0..3).all(|k| widths[k] + 2.0 * h <= 0.5 * self.cell.lengths[k])
    }

    /// Build domain `d`'s share of the global pair list from its resident
    /// orbitals (owned ∪ halo, as `(global id, info)`). Emits exactly the
    /// surviving pairs `(i, j)` whose smaller-index orbital `i` is owned
    /// by `d`: diagonals for every owned orbital plus every off-diagonal
    /// pair with `id_j > id_i` that passes the exact screening filter.
    /// Bounds are [`pair_bound`] with the full-cell minimum image, so the
    /// union over domains is bit-identical to the global builders.
    ///
    /// Returns `(pairs, considered)` where `considered` counts the bound
    /// evaluations performed (diagonals included) — O(residents) on the
    /// windowed path, O(residents²) on the fallback.
    pub fn local_pairs(&self, d: usize, residents: &[(u32, OrbitalInfo)]) -> (Vec<Pair>, usize) {
        let mut pairs = Vec::new();
        let mut considered = 0usize;
        let owned: Vec<bool> = residents
            .iter()
            .map(|(_, o)| self.domain_of(o.center) == d)
            .collect();
        for (k, &(id, _)) in residents.iter().enumerate() {
            if owned[k] {
                pairs.push(Pair {
                    i: id,
                    j: id,
                    weight: 1.0,
                    bound: 1.0,
                });
                considered += 1;
            }
        }
        let m = residents.len();
        if self.windowed() && m > 1 {
            // Unfold residents minimum-image around the box center: inside
            // the window, Euclidean distance == minimum-image distance, so
            // a binned range search with the claimer's worst-case radius
            // rc(σ_i, σ_max) finds every partner the exact filter keeps.
            let center = self.box_center(d);
            let pos: Vec<Vec3> = residents
                .iter()
                .map(|(_, o)| center + self.cell.min_image(center, o.center))
                .collect();
            let mut lo = pos[0];
            let mut hi = pos[0];
            for p in &pos[1..] {
                for k in 0..3 {
                    lo[k] = lo[k].min(p[k]);
                    hi[k] = hi[k].max(p[k]);
                }
            }
            let target = self.halo_radius().max(1e-9);
            let cap = (((m as f64).cbrt().ceil() as usize) * 2).max(1);
            let mut nb = [1usize; 3];
            let mut width = [0.0f64; 3];
            for k in 0..3 {
                let ext = (hi[k] - lo[k]).max(1e-9);
                nb[k] = ((ext / target).floor() as usize).clamp(1, cap);
                width[k] = ext / nb[k] as f64 * (1.0 + 1e-12);
            }
            let bin_of = |p: Vec3| -> [usize; 3] {
                let mut b = [0usize; 3];
                for k in 0..3 {
                    b[k] = (((p[k] - lo[k]) / width[k]) as usize).min(nb[k] - 1);
                }
                b
            };
            let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nb[0] * nb[1] * nb[2]];
            for (k, &p) in pos.iter().enumerate() {
                let b = bin_of(p);
                bins[(b[0] * nb[1] + b[1]) * nb[2] + b[2]].push(k as u32);
            }
            for k in 0..m {
                if !owned[k] {
                    continue;
                }
                let (id_k, ref ok) = residents[k];
                let r = cutoff_radius(ok.spread, self.sigma_max, self.eps) * RADIUS_SLACK;
                let mut bl = [0usize; 3];
                let mut bh = [0usize; 3];
                for ax in 0..3 {
                    bl[ax] = (((pos[k][ax] - r - lo[ax]) / width[ax]).floor().max(0.0) as usize)
                        .min(nb[ax] - 1);
                    bh[ax] = (((pos[k][ax] + r - lo[ax]) / width[ax]).floor().max(0.0) as usize)
                        .min(nb[ax] - 1);
                }
                for bx in bl[0]..=bh[0] {
                    for by in bl[1]..=bh[1] {
                        for bz in bl[2]..=bh[2] {
                            for &cand in &bins[(bx * nb[1] + by) * nb[2] + bz] {
                                let (id_j, ref oj) = residents[cand as usize];
                                if id_j <= id_k {
                                    continue;
                                }
                                considered += 1;
                                let bound = pair_bound(ok, oj, Some(&self.cell));
                                if bound >= self.eps {
                                    pairs.push(Pair {
                                        i: id_k,
                                        j: id_j,
                                        weight: 2.0,
                                        bound,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        } else {
            for k in 0..m {
                if !owned[k] {
                    continue;
                }
                let (id_k, ref ok) = residents[k];
                for (id_j, oj) in residents {
                    if *id_j <= id_k {
                        continue;
                    }
                    considered += 1;
                    let bound = pair_bound(ok, oj, Some(&self.cell));
                    if bound >= self.eps {
                        pairs.push(Pair {
                            i: id_k,
                            j: *id_j,
                            weight: 2.0,
                            bound,
                        });
                    }
                }
            }
        }
        (pairs, considered)
    }
}

/// The O(N) ownership tables of a whole-system decomposition: who owns
/// each orbital, and per domain the owned and halo id lists (both
/// ascending).
#[derive(Debug, Clone)]
pub struct DomainDecomposition {
    /// The O(1) grid geometry.
    pub geometry: DomainGeometry,
    /// Owning domain per orbital.
    pub owner: Vec<u32>,
    /// Owned orbital ids per domain, ascending.
    pub owned: Vec<Vec<u32>>,
    /// Halo orbital ids per domain (foreign, within cutoff of the box),
    /// ascending.
    pub halo: Vec<Vec<u32>>,
}

impl DomainDecomposition {
    /// Decompose `orbitals` over a `dims` grid of subdomains in `cell` at
    /// screening threshold `eps`.
    pub fn build(
        orbitals: &[OrbitalInfo],
        eps: f64,
        cell: &Cell,
        dims: [usize; 3],
    ) -> Result<Self> {
        let sigma_max = orbitals.iter().map(|o| o.spread).fold(0.0, f64::max);
        let geometry = DomainGeometry::new(*cell, dims, eps, sigma_max)?;
        let nd = geometry.n_domains();
        let mut owner = Vec::with_capacity(orbitals.len());
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for (i, o) in orbitals.iter().enumerate() {
            let d = geometry.domain_of(o.center);
            owner.push(d as u32);
            owned[d].push(i as u32);
        }
        // Halo candidates can only live in neighbor domains: the halo
        // criterion bounds the box distance by the halo radius, which is
        // exactly the neighbor relation.
        let mut halo: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for d in 0..nd {
            for e in geometry.neighbor_domains(d) {
                for &j in &owned[e] {
                    if geometry.in_halo(d, &orbitals[j as usize]) {
                        halo[d].push(j);
                    }
                }
            }
            halo[d].sort_unstable();
        }
        Ok(Self {
            geometry,
            owner,
            owned,
            halo,
        })
    }

    /// Resident ids of domain `d` (owned ∪ halo), ascending.
    pub fn residents(&self, d: usize) -> Vec<u32> {
        let mut r: Vec<u32> = self.owned[d].iter().chain(&self.halo[d]).copied().collect();
        r.sort_unstable();
        r
    }

    /// Largest resident count over all domains — the per-rank memory
    /// high-water mark in orbital records.
    pub fn max_residents(&self) -> usize {
        (0..self.geometry.n_domains())
            .map(|d| self.owned[d].len() + self.halo[d].len())
            .max()
            .unwrap_or(0)
    }
}

/// Build the global screened pair list by sharding it over a `dims` grid
/// of subdomains and merging the per-domain shares — bit-identical to
/// [`crate::screening::build_pair_list`] (and so to the cell-list source)
/// in sequence, weights, and bound bits. `considered` sums the per-domain
/// bound evaluations.
pub fn build_pair_list_sharded(
    orbitals: &[OrbitalInfo],
    eps: f64,
    cell: &Cell,
    dims: [usize; 3],
) -> Result<PairList> {
    let decomp = DomainDecomposition::build(orbitals, eps, cell, dims)?;
    let n = orbitals.len();
    let mut pairs = Vec::new();
    let mut considered = 0usize;
    for d in 0..decomp.geometry.n_domains() {
        let residents: Vec<(u32, OrbitalInfo)> = decomp
            .residents(d)
            .into_iter()
            .map(|i| (i, orbitals[i as usize]))
            .collect();
        let (mut local, c) = decomp.geometry.local_pairs(d, &residents);
        considered += c;
        pairs.append(&mut local);
    }
    // Each surviving pair is emitted by exactly one domain (the owner of
    // its smaller index); sorting restores the canonical order.
    pairs.sort_unstable_by_key(|p| (p.i, p.j));
    Ok(PairList {
        pairs,
        n_candidates: n * (n + 1) / 2,
        considered,
        eps,
    })
}

/// Import this rank's halo over point-to-point messages: send every owned
/// orbital that falls in a neighbor's halo to that neighbor, then receive
/// the symmetric imports. Rank == domain. All sends are posted before any
/// receive (the transport buffers), so the exchange cannot deadlock. The
/// received set is exactly `DomainDecomposition::halo[rank]` — both sides
/// evaluate the same [`DomainGeometry::in_halo`] predicate.
pub fn exchange_halo(
    comm: &dyn Comm,
    geometry: &DomainGeometry,
    owned: &[(u32, OrbitalInfo)],
) -> CommResult<Vec<(u32, OrbitalInfo)>> {
    let d = comm.rank();
    let neighbors = geometry.neighbor_domains(d);
    for &e in &neighbors {
        let mut buf = Vec::new();
        for &(id, ref o) in owned {
            if geometry.in_halo(e, o) {
                buf.extend_from_slice(&[id as f64, o.center.x, o.center.y, o.center.z, o.spread]);
            }
        }
        comm.send(e, HALO_TAG, buf)?;
    }
    let mut halo: Vec<(u32, OrbitalInfo)> = Vec::new();
    for &e in &neighbors {
        let words = comm.recv(e, HALO_TAG)?;
        for ch in words.chunks_exact(5) {
            halo.push((
                ch[0] as u32,
                OrbitalInfo {
                    center: Vec3::new(ch[1], ch[2], ch[3]),
                    spread: ch[4],
                },
            ));
        }
    }
    halo.sort_unstable_by_key(|&(id, _)| id);
    Ok(halo)
}

/// The full SPMD pair build: one rank per domain, each holding only its
/// owned orbitals, importing its halo via [`exchange_halo`], building its
/// local share, and gathering the shares on rank 0 — the laptop-scale
/// correctness proof of the distributed sourcing protocol. The result is
/// bit-identical to the global builders.
pub fn sharded_pair_list_spmd(
    orbitals: &[OrbitalInfo],
    eps: f64,
    cell: &Cell,
    dims: [usize; 3],
    mode: CollectiveMode,
) -> Result<PairList> {
    let decomp = DomainDecomposition::build(orbitals, eps, cell, dims)?;
    let geometry = decomp.geometry;
    let nd = geometry.n_domains();
    let run = run_spmd_cfg(
        nd,
        CommConfig {
            mode,
            fault: None,
            torus: None,
        },
        |comm| -> CommResult<Option<(Vec<Pair>, usize)>> {
            let d = comm.rank();
            let owned: Vec<(u32, OrbitalInfo)> = decomp.owned[d]
                .iter()
                .map(|&i| (i, orbitals[i as usize]))
                .collect();
            let halo = exchange_halo(comm, &geometry, &owned)?;
            let mut residents = owned;
            residents.extend(halo);
            residents.sort_unstable_by_key(|&(id, _)| id);
            let (local, considered) = geometry.local_pairs(d, &residents);
            // Flat frame: [considered, (i, j, weight, bound)…]. Indices
            // and counts are exact in f64 (far below 2^53); weights and
            // bounds ride unchanged, so the gather is bitwise faithful.
            let mut flat = Vec::with_capacity(1 + 4 * local.len());
            flat.push(considered as f64);
            for p in &local {
                flat.extend_from_slice(&[p.i as f64, p.j as f64, p.weight, p.bound]);
            }
            let gathered = comm.gather(0, flat)?;
            Ok(gathered.map(|ranks| {
                let mut pairs = Vec::new();
                let mut considered = 0usize;
                for words in &ranks {
                    considered += words[0] as usize;
                    for ch in words[1..].chunks_exact(4) {
                        pairs.push(Pair {
                            i: ch[0] as u32,
                            j: ch[1] as u32,
                            weight: ch[2],
                            bound: ch[3],
                        });
                    }
                }
                (pairs, considered)
            }))
        },
    )?;
    let root = run
        .results
        .into_iter()
        .next()
        .expect("at least one rank ran")?
        .expect("rank 0 receives the gather");
    let (mut pairs, considered) = root;
    pairs.sort_unstable_by_key(|p| (p.i, p.j));
    let n = orbitals.len();
    Ok(PairList {
        pairs,
        n_candidates: n * (n + 1) / 2,
        considered,
        eps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screening::{build_pair_list, build_pair_list_celllist};
    use liair_math::rng::SplitMix64;

    fn random_layout(seed: u64, n: usize, edge: f64, smin: f64, smax: f64) -> Vec<OrbitalInfo> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, edge),
                    rng.range_f64(0.0, edge),
                    rng.range_f64(0.0, edge),
                ),
                spread: rng.range_f64(smin, smax),
            })
            .collect()
    }

    #[test]
    fn partition_is_exact_and_disjoint() {
        let cell = Cell::cubic(30.0);
        let orbs = random_layout(3, 200, 30.0, 0.5, 1.5);
        let dec = DomainDecomposition::build(&orbs, 1e-6, &cell, [3, 2, 2]).unwrap();
        let mut seen = vec![false; orbs.len()];
        for (d, ids) in dec.owned.iter().enumerate() {
            for &i in ids {
                assert!(!seen[i as usize], "orbital {i} owned twice");
                seen[i as usize] = true;
                assert_eq!(dec.owner[i as usize] as usize, d);
                assert_eq!(dec.geometry.domain_of(orbs[i as usize].center), d);
            }
        }
        assert!(seen.iter().all(|&s| s), "every orbital must be owned");
        // Halos never contain owned orbitals.
        for d in 0..dec.geometry.n_domains() {
            for &j in &dec.halo[d] {
                assert_ne!(dec.owner[j as usize] as usize, d);
            }
        }
    }

    #[test]
    fn halo_covers_every_cross_domain_pair() {
        let cell = Cell::cubic(24.0);
        let orbs = random_layout(11, 150, 24.0, 0.4, 1.2);
        let eps = 1e-5;
        let dec = DomainDecomposition::build(&orbs, eps, &cell, [2, 2, 2]).unwrap();
        let global = build_pair_list(&orbs, eps, Some(&cell));
        for p in &global.pairs {
            if p.i == p.j {
                continue;
            }
            let d = dec.owner[p.i as usize] as usize;
            let resident =
                dec.owner[p.j as usize] as usize == d || dec.halo[d].binary_search(&p.j).is_ok();
            assert!(
                resident,
                "pair ({}, {}) not buildable in owner domain {d}",
                p.i, p.j
            );
        }
    }

    #[test]
    fn sharded_list_is_bit_identical_to_global() {
        let cell = Cell::cubic(26.0);
        for (seed, dims) in [
            (1u64, [2, 2, 2]),
            (2, [3, 2, 1]),
            (3, [1, 1, 1]),
            (4, [4, 1, 2]),
        ] {
            let orbs = random_layout(seed, 180, 26.0, 0.4, 1.4);
            for eps in [1e-3, 1e-8] {
                let brute = build_pair_list(&orbs, eps, Some(&cell));
                let cl = build_pair_list_celllist(&orbs, eps, &cell).unwrap();
                let sh = build_pair_list_sharded(&orbs, eps, &cell, dims).unwrap();
                assert_eq!(brute.pairs.len(), sh.pairs.len(), "dims {dims:?} eps {eps}");
                for (a, b) in brute.pairs.iter().zip(&sh.pairs) {
                    assert_eq!((a.i, a.j), (b.i, b.j));
                    assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                    assert_eq!(a.bound.to_bits(), b.bound.to_bits());
                }
                assert_eq!(cl.pairs, sh.pairs);
                assert_eq!(sh.n_candidates, brute.n_candidates);
            }
        }
    }

    #[test]
    fn windowed_path_engages_on_fine_grids_and_stays_exact() {
        // 4 domains per axis with a small cutoff: the window condition
        // box + 2·halo ≤ L/2 holds, so the O(residents) binned path runs.
        let cell = Cell::cubic(80.0);
        let orbs = random_layout(7, 400, 80.0, 0.5, 1.0);
        let eps = 1e-4;
        let geom = DomainGeometry::new(cell, [4, 4, 4], eps, 1.0).unwrap();
        assert!(geom.windowed(), "halo {} too deep", geom.halo_radius());
        let brute = build_pair_list(&orbs, eps, Some(&cell));
        let sh = build_pair_list_sharded(&orbs, eps, &cell, [4, 4, 4]).unwrap();
        assert_eq!(brute.pairs, sh.pairs);
        // Coarse grids must *not* window (the unfolded span can exceed
        // the unambiguous minimum-image range).
        let coarse = DomainGeometry::new(cell, [2, 2, 2], eps, 1.0).unwrap();
        assert!(!coarse.windowed());
    }

    #[test]
    fn spmd_halo_exchange_reproduces_the_decomposition() {
        let cell = Cell::cubic(22.0);
        let orbs = random_layout(21, 120, 22.0, 0.4, 1.1);
        let eps = 1e-4;
        let dec = DomainDecomposition::build(&orbs, eps, &cell, [2, 2, 1]).unwrap();
        let geom = dec.geometry;
        let run = run_spmd_cfg(
            geom.n_domains(),
            CommConfig {
                mode: CollectiveMode::Flat,
                fault: None,
                torus: None,
            },
            |comm| {
                let d = comm.rank();
                let owned: Vec<(u32, OrbitalInfo)> = dec.owned[d]
                    .iter()
                    .map(|&i| (i, orbs[i as usize]))
                    .collect();
                let halo = exchange_halo(comm, &geom, &owned).unwrap();
                halo.iter().map(|&(id, _)| id).collect::<Vec<u32>>()
            },
        )
        .unwrap();
        for (d, got) in run.results.iter().enumerate() {
            assert_eq!(got, &dec.halo[d], "halo mismatch on rank {d}");
        }
    }

    #[test]
    fn spmd_sharded_list_matches_global() {
        let cell = Cell::cubic(20.0);
        let orbs = random_layout(5, 90, 20.0, 0.4, 1.0);
        let eps = 1e-5;
        let brute = build_pair_list(&orbs, eps, Some(&cell));
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            let sh = sharded_pair_list_spmd(&orbs, eps, &cell, [2, 2, 2], mode).unwrap();
            assert_eq!(brute.pairs, sh.pairs, "mode {}", mode.name());
            assert!(sh.considered >= sh.len());
        }
    }

    #[test]
    fn invalid_eps_is_a_typed_error() {
        let cell = Cell::cubic(10.0);
        let orbs = random_layout(1, 10, 10.0, 0.5, 1.0);
        for eps in [0.0, -2.0, 1.5] {
            let err = build_pair_list_sharded(&orbs, eps, &cell, [2, 2, 2]).unwrap_err();
            assert!(matches!(err, Error::InvalidEps { .. }), "eps {eps}");
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric_and_local() {
        let geom = DomainGeometry::new(Cell::cubic(60.0), [4, 3, 2], 1e-6, 1.0).unwrap();
        for d in 0..geom.n_domains() {
            for e in geom.neighbor_domains(d) {
                assert!(
                    geom.neighbor_domains(e).contains(&d),
                    "neighbor relation must be symmetric ({d} vs {e})"
                );
            }
        }
        // A fine grid with a shallow halo keeps the neighborhood to the
        // 26-box shell (halo rc(1,1,1e-6) ≈ 7.4 < box width 15 on x).
        let fine = DomainGeometry::new(Cell::cubic(120.0), [8, 8, 8], 1e-6, 1.0).unwrap();
        let nbs = fine.neighbor_domains(0);
        assert_eq!(nbs.len(), 26, "face/edge/corner shell expected");
    }
}
