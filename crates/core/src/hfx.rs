//! The shared-memory exact-exchange entry points.
//!
//! Computes `E_x = −Σ_{i≤j} w_ij (ij|ij)` over a screened pair list, with
//! one FFT Poisson solve per pair — the node-level kernel of the paper's
//! scheme. Both entry points here are thin configurations of
//! [`crate::engine::ExchangeEngine`] (rayon backend): the engine owns the
//! pair chunking, the autotuned kernel choice, the scratch lifetimes, and
//! the [`crate::engine::BuildProfile`] instrumentation, so this module only
//! supplies the molecular pipeline around it and the analytic references
//! it is validated against (the `tab-hfx-validation` experiment re-runs
//! that comparison as a resolution sweep).

use crate::engine::{BuildProfile, ExchangeEngine};
use crate::incremental::IncStats;
use crate::screening::{source_pairs, OrbitalInfo, PairList};
use liair_basis::{Basis, Cell, Molecule};
use liair_grid::{foster_boys, orbitals_on_grid, PoissonSolver, RealGrid};
use liair_math::Mat;
use liair_scf::ScfResult;

/// Outcome of an exchange build.
#[derive(Debug, Clone, PartialEq)]
pub struct HfxResult {
    /// Exchange energy (Hartree, ≤ 0).
    pub energy: f64,
    /// Pairs actually evaluated.
    pub pairs_evaluated: usize,
    /// Pairs dropped by screening.
    pub pairs_screened: usize,
    /// Incremental-build reuse counters (all zero for from-scratch builds).
    pub inc: IncStats,
    /// Per-phase wall times and work counters of this build.
    pub profile: BuildProfile,
}

/// Evaluate the exchange energy of occupied orbital fields over a screened
/// pair list. `orbitals[k]` is φ_k sampled on `grid`.
///
/// Thin wrapper over [`ExchangeEngine::energy`] on the rayon backend:
/// workers walk the pair list two pairs at a time with grow-once scratch
/// (the steady-state loop performs zero heap allocations), and on grids
/// where the packed-complex transform wins the autotune both pair energies
/// of a chunk come out of a single FFT.
pub fn exchange_energy(
    grid: &RealGrid,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
    pairs: &PairList,
) -> HfxResult {
    ExchangeEngine::new(grid, solver).energy(orbitals, pairs)
}

/// End-to-end molecular pipeline: localize the converged occupied
/// orbitals, drop core orbitals narrower than `min_spread` (uniform grids
/// cannot resolve all-electron cores — the paper's CPMD substrate uses
/// pseudopotentials, i.e. valence-only exchange; pass `0.0` to keep all),
/// build the screened pair list, evaluate on a cubic grid of `n³` points
/// in a box padded by `padding` Bohr, and return the exchange energy plus
/// the localized valence coefficients used (for analytic cross-checks).
/// The molecule is centered in the box; the isolated (spherical-cutoff)
/// Coulomb kernel is used.
pub fn grid_exchange_for_molecule(
    mol: &Molecule,
    basis: &Basis,
    scf: &ScfResult,
    n: usize,
    padding: f64,
    eps: f64,
    min_spread: f64,
) -> GridHfxOutcome {
    let (lo, hi) = mol.bounding_box();
    let extent = (hi - lo).x.max((hi - lo).y).max((hi - lo).z);
    let edge = extent + 2.0 * padding;
    let cell = Cell::cubic(edge);
    // Shift copies of the molecule/basis so the molecule sits mid-box.
    let shift = liair_math::Vec3::splat(edge / 2.0) - (lo + hi) * 0.5;
    let mut mol_c = mol.clone();
    mol_c.translate(shift);
    let mut basis_c = basis.clone();
    basis_c.update_centers(&mol_c);

    let loc = foster_boys(&basis_c, &scf.c, scf.nocc, 100);
    let keep: Vec<usize> = (0..scf.nocc)
        .filter(|&k| loc.spreads[k] >= min_spread)
        .collect();
    let n_core_skipped = scf.nocc - keep.len();
    let infos: Vec<OrbitalInfo> = keep
        .iter()
        .map(|&k| OrbitalInfo {
            center: loc.centers[k],
            spread: loc.spreads[k].max(0.3),
        })
        .collect();
    // Locality-first sourcing: with a finite ε the padded box doubles as
    // the screening cell and the list comes from the O(N·partners)
    // cell-list source; ε = 0 keeps the unscreened direct-distance list
    // (no cutoff radius exists to bin by).
    let pairs = source_pairs(&infos, eps, if eps > 0.0 { Some(&cell) } else { None });

    // Coefficient matrix restricted to the kept orbitals.
    let nao = basis_c.nao();
    let mut c_val = Mat::zeros(nao, keep.len());
    for (col, &k) in keep.iter().enumerate() {
        for mu in 0..nao {
            c_val[(mu, col)] = loc.c_loc[(mu, k)];
        }
    }

    let grid = RealGrid::cubic(cell, n);
    let solver = PoissonSolver::isolated(grid);
    let fields = orbitals_on_grid(&basis_c, &c_val, keep.len(), &grid);
    let result = exchange_energy(&grid, &solver, &fields, &pairs);
    GridHfxOutcome {
        result,
        pairs,
        n_core_skipped,
        c_kept: c_val,
        basis_centered: basis_c,
    }
}

/// Output of [`grid_exchange_for_molecule`].
#[derive(Debug, Clone)]
pub struct GridHfxOutcome {
    /// Grid exchange energy over the kept orbitals.
    pub result: HfxResult,
    /// The screened pair list actually evaluated.
    pub pairs: PairList,
    /// Core orbitals excluded by the spread filter.
    pub n_core_skipped: usize,
    /// Localized coefficients of the kept orbitals (box-centered basis).
    pub c_kept: Mat,
    /// The box-centered copy of the basis matching `c_kept`.
    pub basis_centered: Basis,
}

/// Analytic exchange energy `−Σ_{i≤j} w_ij (ij|ij)` over an explicit set of
/// (localized) orbitals, via the dense ERI tensor — the exact reference the
/// grid path is compared against. Small systems only (nao ≤ 96).
pub fn analytic_exchange_orbitals(basis: &Basis, c: &Mat, norb: usize) -> f64 {
    let eri = liair_integrals::eri_tensor(basis);
    let nao = basis.nao();
    assert_eq!(c.nrows(), nao);
    let mut energy = 0.0;
    for i in 0..norb {
        for j in i..norb {
            // (ij|ij) = Σ_{μνλσ} C_μi C_νj C_λi C_σj (μν|λσ)
            // contracted in two steps for O(n²) memory.
            let mut dij = Mat::zeros(nao, nao);
            for mu in 0..nao {
                for nu in 0..nao {
                    dij[(mu, nu)] = c[(mu, i)] * c[(nu, j)];
                }
            }
            let mut val = 0.0;
            for mu in 0..nao {
                for nu in 0..nao {
                    let d1 = dij[(mu, nu)];
                    if d1.abs() < 1e-14 {
                        continue;
                    }
                    for lam in 0..nao {
                        for sig in 0..nao {
                            val += d1 * dij[(lam, sig)] * eri.get(mu, nu, lam, sig);
                        }
                    }
                }
            }
            let w = if i == j { 1.0 } else { 2.0 };
            energy -= w * val;
        }
    }
    energy
}

/// Exchange energy over a screened pair list using *pair-local patches*
/// instead of full-cell transforms — the compact-representation mechanism
/// behind the paper's >10× time-to-solution, executed for real. Thin
/// wrapper over [`ExchangeEngine::energy_patched`] on the rayon backend:
/// each pair is solved on a cubic patch of parent-grid points around the
/// pair midpoint; the patch spans the center separation plus three spreads
/// per orbital plus `margin` Bohr.
pub fn exchange_energy_patched(
    grid: &RealGrid,
    orbitals: &[Vec<f64>],
    infos: &[OrbitalInfo],
    pairs: &PairList,
    margin: f64,
) -> HfxResult {
    // Patch shapes repeat across the list, so each worker reuses one
    // gather/density/Poisson scratch and the per-shape cached solver —
    // no per-pair allocations or kernel-table rebuilds.
    ExchangeEngine::for_patches(grid).energy_patched(orbitals, infos, pairs, margin)
}

/// The analytic exact-exchange energy `−¼ Tr(D·K)` of a converged density
/// — the reference the grid path is validated against.
pub fn analytic_exchange(basis: &Basis, density: &Mat, schwarz_tol: f64) -> f64 {
    let (_, k) = liair_integrals::build_jk(basis, density, schwarz_tol);
    -0.25 * density.trace_product(&k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screening::build_pair_list;
    use liair_basis::systems;
    use liair_math::approx_eq;
    use liair_scf::{rhf, ScfOptions};

    #[test]
    fn h2_grid_exchange_matches_analytic() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let want = analytic_exchange(&basis, &scf.density, 0.0);
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, 72, 7.0, 0.0, 0.0);
        assert_eq!(out.pairs.len(), 1); // single occupied orbital
        assert!(
            approx_eq(out.result.energy, want, 5e-3),
            "grid {} vs analytic {want}",
            out.result.energy
        );
        assert!(out.result.energy < 0.0);
        assert!(out.result.profile.is_populated(), "profile must be filled");
    }

    #[test]
    fn h2_grid_exchange_converges_with_resolution() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let want = analytic_exchange(&basis, &scf.density, 0.0);
        let mut errs = Vec::new();
        for n in [24, 48, 96] {
            let out = grid_exchange_for_molecule(&mol, &basis, &scf, n, 7.0, 0.0, 0.0);
            errs.push((out.result.energy - want).abs());
        }
        // Error decreases with resolution and the finest grid is accurate.
        assert!(errs[2] < errs[0], "{errs:?}");
        assert!(errs[2] < 2e-3, "{errs:?}");
    }

    #[test]
    fn water_valence_grid_exchange_matches_analytic() {
        // With the O 1s core filtered out (pseudopotential-style), the grid
        // pair-Poisson exchange agrees with the analytic valence-orbital
        // reference.
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, 80, 7.0, 0.0, 0.4);
        assert_eq!(out.n_core_skipped, 1, "expected the O 1s core filtered");
        let want = analytic_exchange_orbitals(&out.basis_centered, &out.c_kept, out.c_kept.ncols());
        assert!(
            approx_eq(out.result.energy, want, 3e-2),
            "grid {} vs analytic valence {want}",
            out.result.energy
        );
    }

    #[test]
    fn analytic_orbital_exchange_consistent_with_density_form() {
        // Over ALL occupied orbitals, −Σ w (ij|ij) must equal −¼Tr(DK);
        // both are basis-set identities (orbital rotations cancel).
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let via_k = analytic_exchange(&basis, &scf.density, 0.0);
        let via_orbitals = analytic_exchange_orbitals(&basis, &scf.c, scf.nocc);
        assert!(
            approx_eq(via_k, via_orbitals, 1e-10),
            "{via_k} vs {via_orbitals}"
        );
    }

    #[test]
    fn screening_error_is_controlled() {
        // Two H2 molecules far apart: cross pairs are negligible; ε = 1e−3
        // screening changes E_x by ≪ the pair bound.
        let mut mol = systems::h2();
        let mut far = systems::h2();
        far.translate(liair_math::Vec3::new(0.0, 12.0, 0.0));
        mol.merge(&far);
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let unscreened = grid_exchange_for_molecule(&mol, &basis, &scf, 64, 6.0, 0.0, 0.0);
        let screened = grid_exchange_for_molecule(&mol, &basis, &scf, 64, 6.0, 1e-3, 0.0);
        assert!(
            screened.pairs.len() < unscreened.pairs.len(),
            "screening dropped nothing"
        );
        assert!(
            (unscreened.result.energy - screened.result.energy).abs() < 1e-4,
            "ΔE = {}",
            (unscreened.result.energy - screened.result.energy).abs()
        );
    }

    #[test]
    fn patched_exchange_matches_full_grid_on_h2_chain() {
        // The compact pair-local representation must reproduce the
        // full-grid exchange while transforming far fewer points.
        use crate::hfx::exchange_energy_patched;
        let mol = {
            let mut all = systems::h2();
            for k in 1..3 {
                let mut m = systems::h2();
                m.translate(liair_math::Vec3::new(0.0, 4.5 * k as f64, 0.0));
                all.merge(&m);
            }
            all
        };
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        // Center in a big box so patches stay interior.
        let edge = 26.0;
        let shift = liair_math::Vec3::splat(edge / 2.0) - mol.centroid();
        let mut mol_c = mol.clone();
        mol_c.translate(shift);
        let mut basis_c = basis.clone();
        basis_c.update_centers(&mol_c);
        let loc = liair_grid::foster_boys(&basis_c, &scf.c, scf.nocc, 60);
        let infos: Vec<OrbitalInfo> = loc
            .centers
            .iter()
            .zip(&loc.spreads)
            .map(|(&c, &s)| OrbitalInfo {
                center: c,
                spread: s.max(0.3),
            })
            .collect();
        let pairs = build_pair_list(&infos, 0.0, None);
        let grid = RealGrid::cubic(Cell::cubic(edge), 64);
        let solver = PoissonSolver::isolated(grid);
        let fields = liair_grid::orbitals_on_grid(&basis_c, &loc.c_loc, scf.nocc, &grid);
        let full = exchange_energy(&grid, &solver, &fields, &pairs);
        let patched = exchange_energy_patched(&grid, &fields, &infos, &pairs, 3.0);
        assert!(
            approx_eq(patched.energy, full.energy, 5e-3),
            "patched {} vs full {}",
            patched.energy,
            full.energy
        );
        assert!(patched.profile.is_populated());
    }

    #[test]
    fn exchange_is_negative_and_pairwise_additive() {
        // E_x from the pair list equals the sum of its parts: splitting the
        // pair list and adding partial energies gives the same total.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let (lo, hi) = mol.bounding_box();
        let edge = (hi - lo).norm() + 12.0;
        let cell = Cell::cubic(edge);
        let mut mol_c = mol.clone();
        mol_c.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
        let mut basis_c = basis.clone();
        basis_c.update_centers(&mol_c);
        let grid = RealGrid::cubic(cell, 48);
        let solver = PoissonSolver::isolated(grid);
        let fields = orbitals_on_grid(&basis_c, &scf.c, scf.nocc, &grid);
        let infos = vec![OrbitalInfo {
            center: mol_c.centroid(),
            spread: 1.0,
        }];
        let pairs = build_pair_list(&infos, 0.0, None);
        let full = exchange_energy(&grid, &solver, &fields, &pairs);
        assert!(full.energy < 0.0);
        assert_eq!(full.pairs_evaluated, 1);
    }
}
