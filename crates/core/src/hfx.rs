//! The real (shared-memory) exact-exchange executor.
//!
//! Computes `E_x = −Σ_{i≤j} w_ij (ij|ij)` over a screened pair list, with
//! one FFT Poisson solve per pair — the node-level kernel of the paper's
//! scheme. A from-scratch build is rayon-parallel over the whole pair
//! list; an incremental build ([`crate::incremental::IncrementalExchange`])
//! parallelizes over the *dirty* pairs only and sums the clean remainder
//! from its cache. Validated against the analytic `−¼ Tr(D·K)` from
//! `liair-integrals` in the tests (the `tab-hfx-validation` experiment
//! re-runs that comparison as a resolution sweep).

use crate::incremental::IncStats;
use crate::screening::{build_pair_list, OrbitalInfo, Pair, PairList};
use liair_basis::{Basis, Cell, Molecule};
use liair_grid::{foster_boys, orbitals_on_grid, PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::simd::{self, SimdLevel};
use liair_math::Mat;
use liair_scf::ScfResult;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Outcome of an exchange build.
#[derive(Debug, Clone, PartialEq)]
pub struct HfxResult {
    /// Exchange energy (Hartree, ≤ 0).
    pub energy: f64,
    /// Pairs actually evaluated.
    pub pairs_evaluated: usize,
    /// Pairs dropped by screening.
    pub pairs_screened: usize,
    /// Incremental-build reuse counters (all zero for from-scratch builds).
    pub inc: IncStats,
}

/// How a worker evaluates its pairs: one r2c transform per pair, or two
/// pairs packed into one c2c transform. Which wins depends on the grid
/// size (the r2c path does ~half the flops; the batched path does one
/// full transform for two pairs but pays an untangle sweep), so the
/// choice is measured once per grid shape and cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairPath {
    /// `exchange_pair_energy` per pair (r2c half-spectrum).
    Single,
    /// `exchange_pair_energy_batched` per pair of pairs (packed c2c).
    Batched,
}

/// The full per-grid-shape kernel decision: which pair path to run *and*
/// at which SIMD level. Both axes interact — the batched c2c path moves
/// twice the data of the r2c path, so vectorization shifts the crossover —
/// which is why the autotuner measures the (path, level) combinations
/// jointly instead of picking each independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KernelChoice {
    path: PairPath,
    simd: SimdLevel,
}

type ChoiceCache = Mutex<HashMap<(usize, usize, usize), KernelChoice>>;

static KERNEL_CHOICE_CACHE: OnceLock<ChoiceCache> = OnceLock::new();

/// SIMD levels the autotuner may choose from: the `LIAIR_SIMD` override
/// alone when set (measurement skipped for that axis), otherwise the
/// chunked scalar fallback vs the best detected vector level.
fn simd_candidates() -> Vec<SimdLevel> {
    if let Some(forced) = simd::env_override() {
        return vec![forced];
    }
    let detected = simd::detect();
    if detected == SimdLevel::Scalar {
        vec![SimdLevel::Scalar]
    } else {
        vec![SimdLevel::Scalar, detected]
    }
}

/// Parse a `LIAIR_AUTOTUNE_REPS` value: best-of-N repetitions per path,
/// N ≥ 1 (default 2).
fn parse_autotune_reps(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Parse a `LIAIR_PAIR_PATH` value: a forced path (`single`/`batched`)
/// that bypasses the measurement entirely, for fully deterministic runs.
fn parse_path_override(raw: Option<&str>) -> Option<PairPath> {
    match raw.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("single") => Some(PairPath::Single),
        Some("batched") => Some(PairPath::Batched),
        _ => None,
    }
}

fn autotune_reps() -> usize {
    static REPS: OnceLock<usize> = OnceLock::new();
    *REPS.get_or_init(|| parse_autotune_reps(std::env::var("LIAIR_AUTOTUNE_REPS").ok().as_deref()))
}

fn path_override() -> Option<PairPath> {
    static OVERRIDE: OnceLock<Option<PairPath>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| parse_path_override(std::env::var("LIAIR_PAIR_PATH").ok().as_deref()))
}

/// Time every (pair path, SIMD level) combination on seeded synthetic
/// data and pick the winner. Deterministic inputs (fixed SplitMix64 seed)
/// and best-of-`reps` timing keep the measurement reproducible under
/// test; the chosen combination is then frozen in [`KERNEL_CHOICE_CACHE`]
/// for the process lifetime.
fn measure_kernel_choice(solver: &PoissonSolver, grid: &RealGrid, reps: usize) -> KernelChoice {
    let mut rng = liair_math::rng::SplitMix64::new(0x9a1c);
    let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
    let mut ws = PoissonWorkspace::new();
    let mut best = KernelChoice {
        path: PairPath::Single,
        simd: SimdLevel::Scalar,
    };
    let mut t_best = f64::INFINITY;
    for level in simd_candidates() {
        // Warm both paths (plan build, scratch growth), then time the
        // best of `reps` repetitions each.
        solver.exchange_pair_energy_with(level, &a, &mut ws);
        solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);
        let mut t_single = f64::INFINITY;
        let mut t_batched = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            solver.exchange_pair_energy_with(level, &a, &mut ws);
            solver.exchange_pair_energy_with(level, &b, &mut ws);
            t_single = t_single.min(t0.elapsed().as_secs_f64());
            let t0 = std::time::Instant::now();
            solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);
            t_batched = t_batched.min(t0.elapsed().as_secs_f64());
        }
        if t_single < t_best {
            t_best = t_single;
            best = KernelChoice {
                path: PairPath::Single,
                simd: level,
            };
        }
        if t_batched < t_best {
            t_best = t_batched;
            best = KernelChoice {
                path: PairPath::Batched,
                simd: level,
            };
        }
    }
    best
}

/// Measure the kernel combinations once for this grid shape and remember
/// the winner (a few transforms — noise next to one SCF step). Later
/// calls for the same shape always return the cached choice, so the path
/// is stable for the process lifetime even if a re-measurement would
/// flip. `LIAIR_PAIR_PATH` and `LIAIR_SIMD` each pin their axis.
fn kernel_choice_for(solver: &PoissonSolver, grid: &RealGrid) -> KernelChoice {
    // Both axes pinned → fully deterministic, no measurement at all.
    if let (Some(path), Some(level)) = (path_override(), simd::env_override()) {
        return KernelChoice { path, simd: level };
    }
    let key = grid.dims;
    let cache = KERNEL_CHOICE_CACHE.get_or_init(Default::default);
    if let Some(&c) = cache.lock().unwrap().get(&key) {
        return c;
    }
    let mut chosen = measure_kernel_choice(solver, grid, autotune_reps());
    if let Some(forced) = path_override() {
        chosen.path = forced;
    }
    *cache.lock().unwrap().entry(key).or_insert(chosen)
}

/// Per-worker scratch for the pair loop: two pair densities plus the
/// Poisson workspace. Grow-once, reused across all pairs a worker takes.
#[derive(Debug, Default)]
struct HfxScratch {
    rho_a: Vec<f64>,
    rho_b: Vec<f64>,
    ws: PoissonWorkspace,
}

impl HfxScratch {
    fn ensure(&mut self, n: usize) {
        if self.rho_a.len() != n {
            self.rho_a.resize(n, 0.0);
            self.rho_b.resize(n, 0.0);
        }
    }
}

fn form_pair_density(level: SimdLevel, out: &mut [f64], phi_i: &[f64], phi_j: &[f64]) {
    simd::mul_into_with(level, out, phi_i, phi_j);
}

/// Evaluate one chunk of ≤ 2 pairs, returning the weighted contribution
/// `−w (ij|ij)` of each slot (second slot 0 for an odd tail). Shared by
/// the from-scratch loop and the incremental dirty-pair recompute so both
/// run the identical floating-point path.
fn eval_pair_chunk(
    sc: &mut HfxScratch,
    chunk: &[Pair],
    choice: KernelChoice,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
) -> (f64, f64) {
    let level = choice.simd;
    match chunk {
        [p, q] if choice.path == PairPath::Batched => {
            form_pair_density(
                level,
                &mut sc.rho_a,
                &orbitals[p.i as usize],
                &orbitals[p.j as usize],
            );
            form_pair_density(
                level,
                &mut sc.rho_b,
                &orbitals[q.i as usize],
                &orbitals[q.j as usize],
            );
            let (ea, eb) =
                solver.exchange_pair_energy_batched_with(level, &sc.rho_a, &sc.rho_b, &mut sc.ws);
            (-p.weight * ea, -q.weight * eb)
        }
        _ => {
            let mut out = [0.0, 0.0];
            for (slot, p) in chunk.iter().enumerate() {
                form_pair_density(
                    level,
                    &mut sc.rho_a,
                    &orbitals[p.i as usize],
                    &orbitals[p.j as usize],
                );
                out[slot] =
                    -p.weight * solver.exchange_pair_energy_with(level, &sc.rho_a, &mut sc.ws);
            }
            (out[0], out[1])
        }
    }
}

/// Per-pair weighted contributions `−w_ij (ij|ij)` over an explicit pair
/// slice, rayon-parallel two pairs at a time — the recompute engine of the
/// incremental build (the from-scratch [`exchange_energy`] keeps its
/// allocation-free streaming sum).
pub(crate) fn exchange_pair_contribs(
    grid: &RealGrid,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
    pairs: &[Pair],
) -> Vec<f64> {
    let choice = kernel_choice_for(solver, grid);
    let n = grid.len();
    let nchunks = pairs.len().div_ceil(2);
    let per_chunk: Vec<(f64, f64)> = (0..nchunks)
        .into_par_iter()
        .map_init(HfxScratch::default, |sc, ci| {
            sc.ensure(n);
            let chunk = &pairs[2 * ci..(2 * ci + 2).min(pairs.len())];
            eval_pair_chunk(sc, chunk, choice, solver, orbitals)
        })
        .collect();
    let mut out = Vec::with_capacity(pairs.len());
    for (ci, &(a, b)) in per_chunk.iter().enumerate() {
        out.push(a);
        if 2 * ci + 1 < pairs.len() {
            out.push(b);
        }
    }
    out
}

/// Evaluate the exchange energy of occupied orbital fields over a screened
/// pair list. `orbitals[k]` is φ_k sampled on `grid`.
///
/// Workers walk the pair list two pairs at a time with a reusable
/// [`HfxScratch`]: the steady-state loop performs zero heap allocations,
/// and on grids where the packed-complex transform wins the autotune both
/// pair energies come out of a single FFT.
pub fn exchange_energy(
    grid: &RealGrid,
    solver: &PoissonSolver,
    orbitals: &[Vec<f64>],
    pairs: &PairList,
) -> HfxResult {
    assert!(!orbitals.is_empty());
    for o in orbitals {
        assert_eq!(o.len(), grid.len(), "orbital field size mismatch");
    }
    let choice = kernel_choice_for(solver, grid);
    let n = grid.len();
    let energy: f64 = pairs
        .pairs
        .par_chunks(2)
        .map_init(HfxScratch::default, |sc, chunk| {
            sc.ensure(n);
            let (a, b) = eval_pair_chunk(sc, chunk, choice, solver, orbitals);
            a + b
        })
        .sum();
    HfxResult {
        energy,
        pairs_evaluated: pairs.len(),
        pairs_screened: pairs.n_candidates - pairs.len(),
        inc: IncStats::default(),
    }
}

/// End-to-end molecular pipeline: localize the converged occupied
/// orbitals, drop core orbitals narrower than `min_spread` (uniform grids
/// cannot resolve all-electron cores — the paper's CPMD substrate uses
/// pseudopotentials, i.e. valence-only exchange; pass `0.0` to keep all),
/// build the screened pair list, evaluate on a cubic grid of `n³` points
/// in a box padded by `padding` Bohr, and return the exchange energy plus
/// the localized valence coefficients used (for analytic cross-checks).
/// The molecule is centered in the box; the isolated (spherical-cutoff)
/// Coulomb kernel is used.
pub fn grid_exchange_for_molecule(
    mol: &Molecule,
    basis: &Basis,
    scf: &ScfResult,
    n: usize,
    padding: f64,
    eps: f64,
    min_spread: f64,
) -> GridHfxOutcome {
    let (lo, hi) = mol.bounding_box();
    let extent = (hi - lo).x.max((hi - lo).y).max((hi - lo).z);
    let edge = extent + 2.0 * padding;
    let cell = Cell::cubic(edge);
    // Shift copies of the molecule/basis so the molecule sits mid-box.
    let shift = liair_math::Vec3::splat(edge / 2.0) - (lo + hi) * 0.5;
    let mut mol_c = mol.clone();
    mol_c.translate(shift);
    let mut basis_c = basis.clone();
    basis_c.update_centers(&mol_c);

    let loc = foster_boys(&basis_c, &scf.c, scf.nocc, 100);
    let keep: Vec<usize> = (0..scf.nocc)
        .filter(|&k| loc.spreads[k] >= min_spread)
        .collect();
    let n_core_skipped = scf.nocc - keep.len();
    let infos: Vec<OrbitalInfo> = keep
        .iter()
        .map(|&k| OrbitalInfo {
            center: loc.centers[k],
            spread: loc.spreads[k].max(0.3),
        })
        .collect();
    let pairs = build_pair_list(&infos, eps, None);

    // Coefficient matrix restricted to the kept orbitals.
    let nao = basis_c.nao();
    let mut c_val = Mat::zeros(nao, keep.len());
    for (col, &k) in keep.iter().enumerate() {
        for mu in 0..nao {
            c_val[(mu, col)] = loc.c_loc[(mu, k)];
        }
    }

    let grid = RealGrid::cubic(cell, n);
    let solver = PoissonSolver::isolated(grid);
    let fields = orbitals_on_grid(&basis_c, &c_val, keep.len(), &grid);
    let result = exchange_energy(&grid, &solver, &fields, &pairs);
    GridHfxOutcome {
        result,
        pairs,
        n_core_skipped,
        c_kept: c_val,
        basis_centered: basis_c,
    }
}

/// Output of [`grid_exchange_for_molecule`].
#[derive(Debug, Clone)]
pub struct GridHfxOutcome {
    /// Grid exchange energy over the kept orbitals.
    pub result: HfxResult,
    /// The screened pair list actually evaluated.
    pub pairs: PairList,
    /// Core orbitals excluded by the spread filter.
    pub n_core_skipped: usize,
    /// Localized coefficients of the kept orbitals (box-centered basis).
    pub c_kept: Mat,
    /// The box-centered copy of the basis matching `c_kept`.
    pub basis_centered: Basis,
}

/// Analytic exchange energy `−Σ_{i≤j} w_ij (ij|ij)` over an explicit set of
/// (localized) orbitals, via the dense ERI tensor — the exact reference the
/// grid path is compared against. Small systems only (nao ≤ 96).
pub fn analytic_exchange_orbitals(basis: &Basis, c: &Mat, norb: usize) -> f64 {
    let eri = liair_integrals::eri_tensor(basis);
    let nao = basis.nao();
    assert_eq!(c.nrows(), nao);
    let mut energy = 0.0;
    for i in 0..norb {
        for j in i..norb {
            // (ij|ij) = Σ_{μνλσ} C_μi C_νj C_λi C_σj (μν|λσ)
            // contracted in two steps for O(n²) memory.
            let mut dij = Mat::zeros(nao, nao);
            for mu in 0..nao {
                for nu in 0..nao {
                    dij[(mu, nu)] = c[(mu, i)] * c[(nu, j)];
                }
            }
            let mut val = 0.0;
            for mu in 0..nao {
                for nu in 0..nao {
                    let d1 = dij[(mu, nu)];
                    if d1.abs() < 1e-14 {
                        continue;
                    }
                    for lam in 0..nao {
                        for sig in 0..nao {
                            val += d1 * dij[(lam, sig)] * eri.get(mu, nu, lam, sig);
                        }
                    }
                }
            }
            let w = if i == j { 1.0 } else { 2.0 };
            energy -= w * val;
        }
    }
    energy
}

/// Exchange energy over a screened pair list using *pair-local patches*
/// instead of full-cell transforms — the compact-representation mechanism
/// behind the paper's >10× time-to-solution, executed for real. Each pair
/// is solved on a cubic patch of parent-grid points around the pair
/// midpoint; the patch spans the center separation plus three spreads per
/// orbital plus `margin` Bohr.
pub fn exchange_energy_patched(
    grid: &RealGrid,
    orbitals: &[Vec<f64>],
    infos: &[OrbitalInfo],
    pairs: &PairList,
    margin: f64,
) -> HfxResult {
    use liair_grid::patch::{patch_pair_energy_ws, PatchScratch};
    assert_eq!(orbitals.len(), infos.len());
    let h = grid.spacing().x;
    // Patch shapes repeat across the list, so each worker reuses one
    // gather/density/Poisson scratch and the per-shape cached solver —
    // no per-pair allocations or kernel-table rebuilds.
    let energy: f64 = pairs
        .pairs
        .par_chunks(1)
        .map_init(PatchScratch::new, |scratch, chunk| {
            let p = &chunk[0];
            let (i, j) = (p.i as usize, p.j as usize);
            let (a, b) = (&infos[i], &infos[j]);
            let d = a.center.distance(b.center);
            let midpoint = (a.center + b.center) * 0.5;
            let phys = d + 3.0 * (a.spread + b.spread) + 2.0 * margin;
            let extent = ((phys / h).ceil() as usize).max(8);
            let e_pair =
                patch_pair_energy_ws(grid, &orbitals[i], &orbitals[j], midpoint, extent, scratch);
            -p.weight * e_pair
        })
        .sum();
    HfxResult {
        energy,
        pairs_evaluated: pairs.len(),
        pairs_screened: pairs.n_candidates - pairs.len(),
        inc: IncStats::default(),
    }
}

/// The analytic exact-exchange energy `−¼ Tr(D·K)` of a converged density
/// — the reference the grid path is validated against.
pub fn analytic_exchange(basis: &Basis, density: &Mat, schwarz_tol: f64) -> f64 {
    let (_, k) = liair_integrals::build_jk(basis, density, schwarz_tol);
    -0.25 * density.trace_product(&k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::approx_eq;
    use liair_scf::{rhf, ScfOptions};

    #[test]
    fn autotune_env_parsing() {
        assert_eq!(parse_autotune_reps(None), 2);
        assert_eq!(parse_autotune_reps(Some("5")), 5);
        assert_eq!(parse_autotune_reps(Some(" 3 ")), 3);
        assert_eq!(parse_autotune_reps(Some("0")), 2, "N >= 1 enforced");
        assert_eq!(parse_autotune_reps(Some("junk")), 2);
        assert_eq!(parse_path_override(None), None);
        assert_eq!(parse_path_override(Some("single")), Some(PairPath::Single));
        assert_eq!(
            parse_path_override(Some(" Batched ")),
            Some(PairPath::Batched)
        );
        assert_eq!(parse_path_override(Some("auto")), None);
    }

    #[test]
    fn kernel_choice_is_stable_for_repeated_grid_shape() {
        // The cache must freeze the first measurement: repeated queries for
        // the same grid shape return the same (path, SIMD level) even if a
        // fresh timing run would flip the decision.
        let grid = RealGrid::cubic(Cell::cubic(8.0), 18);
        let solver = PoissonSolver::isolated(grid);
        let first = kernel_choice_for(&solver, &grid);
        for _ in 0..5 {
            assert_eq!(kernel_choice_for(&solver, &grid), first);
        }
        // Same shape, fresh solver: still the cached decision.
        let solver2 = PoissonSolver::isolated(grid);
        assert_eq!(kernel_choice_for(&solver2, &grid), first);
    }

    #[test]
    fn measure_kernel_choice_runs_with_any_reps() {
        // The measurement itself must work for N = 1 and larger N (the
        // LIAIR_AUTOTUNE_REPS knob); inputs are seeded so this is
        // reproducible, and the chosen SIMD level must be runnable here.
        let grid = RealGrid::cubic(Cell::cubic(6.0), 16);
        let solver = PoissonSolver::isolated(grid);
        let c1 = measure_kernel_choice(&solver, &grid, 1);
        let c3 = measure_kernel_choice(&solver, &grid, 3);
        for c in [c1, c3] {
            assert!(simd::available_levels().contains(&c.simd), "{c:?}");
        }
    }

    #[test]
    fn simd_candidates_are_runnable() {
        let cands = simd_candidates();
        assert!(!cands.is_empty());
        for c in cands {
            assert!(simd::available_levels().contains(&c), "{c:?}");
        }
    }

    #[test]
    fn h2_grid_exchange_matches_analytic() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let want = analytic_exchange(&basis, &scf.density, 0.0);
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, 72, 7.0, 0.0, 0.0);
        assert_eq!(out.pairs.len(), 1); // single occupied orbital
        assert!(
            approx_eq(out.result.energy, want, 5e-3),
            "grid {} vs analytic {want}",
            out.result.energy
        );
        assert!(out.result.energy < 0.0);
    }

    #[test]
    fn h2_grid_exchange_converges_with_resolution() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let want = analytic_exchange(&basis, &scf.density, 0.0);
        let mut errs = Vec::new();
        for n in [24, 48, 96] {
            let out = grid_exchange_for_molecule(&mol, &basis, &scf, n, 7.0, 0.0, 0.0);
            errs.push((out.result.energy - want).abs());
        }
        // Error decreases with resolution and the finest grid is accurate.
        assert!(errs[2] < errs[0], "{errs:?}");
        assert!(errs[2] < 2e-3, "{errs:?}");
    }

    #[test]
    fn water_valence_grid_exchange_matches_analytic() {
        // With the O 1s core filtered out (pseudopotential-style), the grid
        // pair-Poisson exchange agrees with the analytic valence-orbital
        // reference.
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, 80, 7.0, 0.0, 0.4);
        assert_eq!(out.n_core_skipped, 1, "expected the O 1s core filtered");
        let want = analytic_exchange_orbitals(&out.basis_centered, &out.c_kept, out.c_kept.ncols());
        assert!(
            approx_eq(out.result.energy, want, 3e-2),
            "grid {} vs analytic valence {want}",
            out.result.energy
        );
    }

    #[test]
    fn analytic_orbital_exchange_consistent_with_density_form() {
        // Over ALL occupied orbitals, −Σ w (ij|ij) must equal −¼Tr(DK);
        // both are basis-set identities (orbital rotations cancel).
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let via_k = analytic_exchange(&basis, &scf.density, 0.0);
        let via_orbitals = analytic_exchange_orbitals(&basis, &scf.c, scf.nocc);
        assert!(
            approx_eq(via_k, via_orbitals, 1e-10),
            "{via_k} vs {via_orbitals}"
        );
    }

    #[test]
    fn screening_error_is_controlled() {
        // Two H2 molecules far apart: cross pairs are negligible; ε = 1e−3
        // screening changes E_x by ≪ the pair bound.
        let mut mol = systems::h2();
        let mut far = systems::h2();
        far.translate(liair_math::Vec3::new(0.0, 12.0, 0.0));
        mol.merge(&far);
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let unscreened = grid_exchange_for_molecule(&mol, &basis, &scf, 64, 6.0, 0.0, 0.0);
        let screened = grid_exchange_for_molecule(&mol, &basis, &scf, 64, 6.0, 1e-3, 0.0);
        assert!(
            screened.pairs.len() < unscreened.pairs.len(),
            "screening dropped nothing"
        );
        assert!(
            (unscreened.result.energy - screened.result.energy).abs() < 1e-4,
            "ΔE = {}",
            (unscreened.result.energy - screened.result.energy).abs()
        );
    }

    #[test]
    fn patched_exchange_matches_full_grid_on_h2_chain() {
        // The compact pair-local representation must reproduce the
        // full-grid exchange while transforming far fewer points.
        use crate::hfx::exchange_energy_patched;
        let mol = {
            let mut all = systems::h2();
            for k in 1..3 {
                let mut m = systems::h2();
                m.translate(liair_math::Vec3::new(0.0, 4.5 * k as f64, 0.0));
                all.merge(&m);
            }
            all
        };
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        // Center in a big box so patches stay interior.
        let edge = 26.0;
        let shift = liair_math::Vec3::splat(edge / 2.0) - mol.centroid();
        let mut mol_c = mol.clone();
        mol_c.translate(shift);
        let mut basis_c = basis.clone();
        basis_c.update_centers(&mol_c);
        let loc = liair_grid::foster_boys(&basis_c, &scf.c, scf.nocc, 60);
        let infos: Vec<OrbitalInfo> = loc
            .centers
            .iter()
            .zip(&loc.spreads)
            .map(|(&c, &s)| OrbitalInfo {
                center: c,
                spread: s.max(0.3),
            })
            .collect();
        let pairs = build_pair_list(&infos, 0.0, None);
        let grid = RealGrid::cubic(Cell::cubic(edge), 64);
        let solver = PoissonSolver::isolated(grid);
        let fields = liair_grid::orbitals_on_grid(&basis_c, &loc.c_loc, scf.nocc, &grid);
        let full = exchange_energy(&grid, &solver, &fields, &pairs);
        let patched = exchange_energy_patched(&grid, &fields, &infos, &pairs, 3.0);
        assert!(
            approx_eq(patched.energy, full.energy, 5e-3),
            "patched {} vs full {}",
            patched.energy,
            full.energy
        );
    }

    #[test]
    fn exchange_is_negative_and_pairwise_additive() {
        // E_x from the pair list equals the sum of its parts: splitting the
        // pair list and adding partial energies gives the same total.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let (lo, hi) = mol.bounding_box();
        let edge = (hi - lo).norm() + 12.0;
        let cell = Cell::cubic(edge);
        let mut mol_c = mol.clone();
        mol_c.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
        let mut basis_c = basis.clone();
        basis_c.update_centers(&mol_c);
        let grid = RealGrid::cubic(cell, 48);
        let solver = PoissonSolver::isolated(grid);
        let fields = orbitals_on_grid(&basis_c, &scf.c, scf.nocc, &grid);
        let infos = vec![OrbitalInfo {
            center: mol_c.centroid(),
            spread: 1.0,
        }];
        let pairs = build_pair_list(&infos, 0.0, None);
        let full = exchange_energy(&grid, &solver, &fields, &pairs);
        assert!(full.energy < 0.0);
        assert_eq!(full.pairs_evaluated, 1);
    }
}
