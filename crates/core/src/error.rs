//! The unified error type of the exchange pipeline.
//!
//! Public entry points of `liair-core` return [`Result`]; conditions that
//! used to abort the process (mismatched orbital shapes, a missing Poisson
//! solver, an unresponsive rank) surface as typed [`Error`] values the
//! caller can match on. Communication failures from the runtime are
//! wrapped, not flattened, so the rank/attempt detail survives to the
//! caller.

use liair_runtime::CommError;
use std::fmt;

/// Everything a build of the exact-exchange energy or operator can report
/// instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A communication failure in the distributed backend (timeout after
    /// the retry budget, disconnect, invalid rank, …).
    Comm(CommError),
    /// Orbital vectors disagree in length with each other or the grid.
    OrbitalSizeMismatch {
        /// Points every orbital must have.
        expected: usize,
        /// Points the offending orbital has.
        got: usize,
        /// Index of the offending orbital.
        orbital: usize,
    },
    /// No orbitals were supplied where at least one is required.
    EmptyOrbitals,
    /// The engine was asked for a full-grid build without a full-grid
    /// Poisson solver (it was constructed patch-only via `for_patches`).
    MissingSolver,
    /// An engine/builder configuration is inconsistent (documented per
    /// knob), e.g. a distributed backend with zero ranks.
    InvalidConfig(String),
    /// A locality-aware pair source (cell list, domain sharding) was asked
    /// to build with a threshold outside `0 < ε ≤ 1` — there is no finite
    /// cutoff radius to bin by. Use the O(N²) [`crate::build_pair_list`]
    /// for unscreened lists.
    InvalidEps {
        /// The offending screening threshold.
        eps: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Comm(e) => write!(f, "communication failure: {e}"),
            Error::OrbitalSizeMismatch {
                expected,
                got,
                orbital,
            } => write!(
                f,
                "orbital {orbital} has {got} points, grid expects {expected}"
            ),
            Error::EmptyOrbitals => write!(f, "no occupied orbitals supplied"),
            Error::MissingSolver => write!(
                f,
                "engine built with for_patches() has no full-grid Poisson solver"
            ),
            Error::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
            Error::InvalidEps { eps } => write!(
                f,
                "locality-aware pair sourcing needs 0 < eps <= 1 (got {eps}); \
                 use build_pair_list for unscreened lists"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for Error {
    fn from(e: CommError) -> Self {
        Error::Comm(e)
    }
}

/// Result alias of the fallible `liair-core` entry points.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_errors_wrap_with_detail() {
        let e: Error = CommError::Timeout {
            rank: 3,
            attempts: 6,
        }
        .into();
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('6'), "{s}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn invalid_eps_reports_the_threshold() {
        let e = Error::InvalidEps { eps: 0.0 };
        assert!(e.to_string().contains("0 < eps <= 1"), "{e}");
    }

    #[test]
    fn display_names_the_condition() {
        assert!(Error::MissingSolver.to_string().contains("for_patches"));
        let e = Error::OrbitalSizeMismatch {
            expected: 64,
            got: 32,
            orbital: 1,
        };
        assert!(e.to_string().contains("64"));
    }
}
