//! Per-job determinism configuration.
//!
//! Before the serve layer, every seed in the workspace was its own
//! convention: `liair-md` read `LIAIR_MD_SEED`, the fault injector read
//! `LIAIR_FAULT_SEED`, the engine autotuner read `LIAIR_AUTOTUNE_REPS` —
//! each at its own call site, each with its own parse-and-default logic.
//! Fine for one job per process; wrong for a multi-tenant service, where
//! two tenants with different seeds would race on process-global
//! environment variables.
//!
//! [`SeedConfig`] collects all of them in one value that a job carries
//! with it. [`SeedConfig::from_env`] reproduces the legacy single-job
//! behavior (and is what the old env-reading call sites now delegate to),
//! while serve jobs construct theirs explicitly and never touch the
//! environment after admission.

use crate::fault::FaultPlan;

/// Environment variable naming the MD thermalization seed.
pub const MD_SEED_ENV: &str = "LIAIR_MD_SEED";
/// Environment variable naming the fault-injection seed.
pub const FAULT_SEED_ENV: &str = "LIAIR_FAULT_SEED";
/// Environment variable naming the autotune repetition count.
pub const AUTOTUNE_REPS_ENV: &str = "LIAIR_AUTOTUNE_REPS";

/// Fallback MD seed when neither an explicit seed nor the environment
/// provides one (the paper's publication year, as established in PR 7).
pub const DEFAULT_MD_SEED: u64 = 2014;
/// Fallback autotune repetition count.
pub const DEFAULT_AUTOTUNE_REPS: usize = 2;

/// All deterministic-behavior knobs a job carries, replacing process-wide
/// environment lookups scattered across `liair-md`, `liair-runtime::fault`
/// and the engine autotuner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedConfig {
    /// MD thermalization seed; `None` falls back to [`DEFAULT_MD_SEED`].
    pub md_seed: Option<u64>,
    /// Fault-injection seed; `None` disables injected faults.
    pub fault_seed: Option<u64>,
    /// Autotune repetitions; `None` falls back to
    /// [`DEFAULT_AUTOTUNE_REPS`], values are clamped to ≥ 1.
    pub autotune_reps: Option<usize>,
}

impl SeedConfig {
    /// The legacy process-wide convention: read every knob from the
    /// environment once. Single-job binaries (examples, benches, tests)
    /// keep this path; serve jobs construct their config explicitly.
    pub fn from_env() -> SeedConfig {
        SeedConfig {
            md_seed: parse_env_u64(MD_SEED_ENV),
            fault_seed: parse_env_u64(FAULT_SEED_ENV),
            autotune_reps: parse_env_usize(AUTOTUNE_REPS_ENV),
        }
    }

    /// Resolve the MD seed with the established precedence:
    /// explicit argument > configured seed > [`DEFAULT_MD_SEED`].
    pub fn resolve_md_seed(&self, explicit: Option<u64>) -> u64 {
        explicit.or(self.md_seed).unwrap_or(DEFAULT_MD_SEED)
    }

    /// The fault plan this config selects: [`FaultPlan::with_stalls`]
    /// under the configured seed, or `None` when fault injection is off.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_seed.map(FaultPlan::with_stalls)
    }

    /// Resolve the autotune repetition count (always ≥ 1).
    pub fn resolve_autotune_reps(&self) -> usize {
        self.autotune_reps.unwrap_or(DEFAULT_AUTOTUNE_REPS).max(1)
    }

    /// Builder-style override of the MD seed.
    pub fn with_md_seed(mut self, seed: u64) -> SeedConfig {
        self.md_seed = Some(seed);
        self
    }

    /// Builder-style override of the fault seed.
    pub fn with_fault_seed(mut self, seed: u64) -> SeedConfig {
        self.fault_seed = Some(seed);
        self
    }

    /// Builder-style override of the autotune repetitions.
    pub fn with_autotune_reps(mut self, reps: usize) -> SeedConfig {
        self.autotune_reps = Some(reps);
        self
    }
}

fn parse_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse::<u64>().ok()
}

fn parse_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_seed_precedence_matches_pr7_convention() {
        let cfg = SeedConfig::default();
        assert_eq!(cfg.resolve_md_seed(None), DEFAULT_MD_SEED);
        assert_eq!(cfg.resolve_md_seed(Some(7)), 7);
        let cfg = cfg.with_md_seed(42);
        assert_eq!(cfg.resolve_md_seed(None), 42);
        assert_eq!(cfg.resolve_md_seed(Some(7)), 7, "explicit beats config");
    }

    #[test]
    fn fault_plan_matches_with_stalls() {
        assert!(SeedConfig::default().fault_plan().is_none());
        let plan = SeedConfig::default().with_fault_seed(13).fault_plan();
        assert_eq!(plan, Some(FaultPlan::with_stalls(13)));
    }

    #[test]
    fn autotune_reps_clamped_to_one() {
        assert_eq!(
            SeedConfig::default().resolve_autotune_reps(),
            DEFAULT_AUTOTUNE_REPS
        );
        assert_eq!(
            SeedConfig::default()
                .with_autotune_reps(0)
                .resolve_autotune_reps(),
            1
        );
        assert_eq!(
            SeedConfig::default()
                .with_autotune_reps(5)
                .resolve_autotune_reps(),
            5
        );
    }
}
