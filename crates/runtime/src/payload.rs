//! Typed payloads over the `f64`-word transport.
//!
//! The wire format of the runtime is a vector of `f64` words (the natural
//! unit of this codebase — orbital fields, contribution vectors, timing
//! side-channels). [`Payload`] lets typed values ride that transport
//! without the call sites hand-rolling encode/decode at every send:
//! scalars, word vectors, and bit-exact `u64` metadata all round-trip
//! losslessly.

/// A value that can be encoded losslessly into `f64` words and decoded
/// back — the typed unit of [`crate::Comm::send_payload`] /
/// [`crate::Comm::recv_payload`].
pub trait Payload: Sized {
    /// Encode into transport words.
    fn into_words(self) -> Vec<f64>;
    /// Decode from transport words. Must accept exactly what
    /// [`Payload::into_words`] produced.
    fn from_words(words: Vec<f64>) -> Self;
}

impl Payload for Vec<f64> {
    fn into_words(self) -> Vec<f64> {
        self
    }
    fn from_words(words: Vec<f64>) -> Self {
        words
    }
}

impl Payload for f64 {
    fn into_words(self) -> Vec<f64> {
        vec![self]
    }
    fn from_words(words: Vec<f64>) -> Self {
        words[0]
    }
}

/// `u64` rides bit-exactly via `f64::from_bits` — counters and ids do not
/// survive a lossy `as f64` cast past 2⁵³, bit transport always does.
impl Payload for u64 {
    fn into_words(self) -> Vec<f64> {
        vec![f64::from_bits(self)]
    }
    fn from_words(words: Vec<f64>) -> Self {
        words[0].to_bits()
    }
}

impl Payload for Vec<u64> {
    fn into_words(self) -> Vec<f64> {
        self.into_iter().map(f64::from_bits).collect()
    }
    fn from_words(words: Vec<f64>) -> Self {
        words.into_iter().map(|w| w.to_bits()).collect()
    }
}

/// A word vector tagged with bit-exact `u64` metadata — the shape of the
/// engine's per-rank result messages (contributions + counters).
impl Payload for (Vec<u64>, Vec<f64>) {
    fn into_words(self) -> Vec<f64> {
        let (meta, data) = self;
        let mut out = Vec::with_capacity(meta.len() + data.len() + 1);
        out.push(f64::from_bits(meta.len() as u64));
        out.extend(meta.into_iter().map(f64::from_bits));
        out.extend(data);
        out
    }
    fn from_words(words: Vec<f64>) -> Self {
        let n = words[0].to_bits() as usize;
        let meta = words[1..1 + n].iter().map(|w| w.to_bits()).collect();
        let data = words[1 + n..].to_vec();
        (meta, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<P: Payload + Clone + PartialEq + std::fmt::Debug>(v: P) {
        assert_eq!(P::from_words(v.clone().into_words()), v);
    }

    #[test]
    fn scalars_and_vectors_round_trip() {
        round_trip(3.25f64);
        round_trip(vec![1.0, -2.5, f64::MIN_POSITIVE]);
        round_trip(u64::MAX);
        round_trip((1u64 << 60) + 3); // not representable as f64 exactly
        round_trip(vec![0u64, u64::MAX, 1 << 53 | 1]);
    }

    #[test]
    fn tagged_payload_round_trips() {
        round_trip((vec![7u64, u64::MAX], vec![1.5, -0.25]));
        round_trip((Vec::<u64>::new(), Vec::<f64>::new()));
    }
}
