//! # liair-runtime
//!
//! A virtual-rank SPMD runtime — the stand-in for MPI (Rust MPI bindings
//! are too thin for this reproduction, per the calibration notes).
//!
//! [`Comm`] exposes the point-to-point and collective surface the parallel
//! exact-exchange scheme needs. The one real implementation,
//! [`LocalComm`] under [`run_spmd`], executes every rank as an OS thread
//! with crossbeam channels for transport — it proves the *correctness* of
//! the distributed algorithm (partial-pair sums, orbital replication,
//! reductions) at laptop scale. *Performance* at BG/Q scale is priced by
//! `liair-bgq`'s models instead; the two are connected by `liair-core`,
//! which drives the same task lists through both.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod comm;

pub use comm::{run_spmd, Comm, LocalComm};
