//! # liair-runtime
//!
//! A virtual-rank SPMD runtime — the stand-in for MPI (Rust MPI bindings
//! are too thin for this reproduction, per the calibration notes).
//!
//! [`Comm`] is the first-class communication API: typed point-to-point
//! transfers ([`Payload`]) and the collective set the parallel
//! exact-exchange scheme needs, each in a flat (root-based) and a
//! hierarchical (binomial-tree / recursive-doubling) algorithm selected
//! by [`CollectiveMode`]. Two implementations exist:
//!
//! * [`LocalComm`] under [`run_spmd`] / [`run_spmd_cfg`] — every rank an
//!   OS thread with crossbeam channels for transport; proves the
//!   *correctness* of the distributed algorithm at laptop scale;
//! * [`TorusComm`] — wraps a communicator and charges every transfer to a
//!   [`TrafficLog`] routed over `liair-bgq`'s 5-D torus, so the executed
//!   message pattern (not an assumed one) feeds the BSP cost model.
//!
//! Point-to-point receives come in blocking ([`Comm::recv`]) and
//! non-blocking ([`Comm::try_recv`]) forms; the pipelined exchange engine
//! polls the latter between compute chunks so result reassembly and steal
//! requests make progress while every rank keeps computing.
//!
//! Failures are first-class: operations return [`CommResult`], and a
//! seeded deterministic [`FaultPlan`] can drop / delay / duplicate
//! messages and stall ranks, recovered by retransmission with exponential
//! backoff — or surfaced as [`CommError::Timeout`] for the caller to
//! degrade gracefully (the exchange engine re-issues a stalled rank's
//! chunks to survivors).

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod comm;
pub mod config;
pub mod error;
pub mod fault;
pub mod payload;
pub mod pool;
pub mod topo;

pub use comm::{run_spmd, run_spmd_cfg, CollectiveMode, Comm, CommConfig, LocalComm, SpmdRun};
pub use config::SeedConfig;
pub use error::{CommError, CommResult};
pub use fault::{FaultInjector, FaultPlan, FaultStats, Verdict};
pub use payload::Payload;
pub use pool::{PoolStats, RankLease, RankPool};
pub use topo::{fit_torus, TorusComm, TrafficLog};
