//! Rank-pool leasing for the serve scheduler.
//!
//! The serve layer multiplexes many concurrent jobs over one fixed pool of
//! virtual ranks. [`RankPool`] hands out [`RankLease`]s — RAII grants of
//! `n` ranks that return to the pool automatically when dropped, whether
//! the job completed, was preempted, or panicked mid-build. The scheduler
//! sizes each job's `ExecBackend::Comm { nranks }` from its lease, and the
//! engine's bit-identity across backends guarantees the *answer* does not
//! depend on how many ranks the lease happened to carve out.
//!
//! The pool is a counter, not an affinity map: ranks are fungible here
//! (placement on the torus is `liair-bgq`'s concern at model scale).
//! Counters ([`PoolStats`]) make grant/reclaim/reject traffic observable
//! for the soak bench.

use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct PoolInner {
    total: usize,
    available: usize,
    granted: u64,
    reclaimed: u64,
    rejected: u64,
    peak_leased: usize,
}

/// Cumulative pool counters plus current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool size.
    pub total: usize,
    /// Ranks currently unleased.
    pub available: usize,
    /// Leases granted (cumulative).
    pub granted: u64,
    /// Leases returned (cumulative).
    pub reclaimed: u64,
    /// Lease requests refused for lack of ranks (cumulative).
    pub rejected: u64,
    /// High-water mark of simultaneously leased ranks.
    pub peak_leased: usize,
}

/// A shared pool of virtual ranks the scheduler carves into per-job slices.
///
/// Cheap to clone (all clones share the same pool).
#[derive(Debug, Clone)]
pub struct RankPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl RankPool {
    /// A pool of `total` ranks (at least 1).
    pub fn new(total: usize) -> RankPool {
        let total = total.max(1);
        RankPool {
            inner: Arc::new(Mutex::new(PoolInner {
                total,
                available: total,
                granted: 0,
                reclaimed: 0,
                rejected: 0,
                peak_leased: 0,
            })),
        }
    }

    /// Try to lease `nranks` ranks (clamped to ≥ 1). Returns `None` —
    /// and counts a rejection — when fewer are available right now; the
    /// scheduler keeps the job queued and retries as leases drain back.
    /// Requests larger than the whole pool are clamped to the pool size,
    /// so an over-sized job degrades rather than deadlocks.
    pub fn try_lease(&self, nranks: usize) -> Option<RankLease> {
        let mut p = self.inner.lock().unwrap();
        let want = nranks.max(1).min(p.total);
        if want > p.available {
            p.rejected += 1;
            return None;
        }
        p.available -= want;
        p.granted += 1;
        p.peak_leased = p.peak_leased.max(p.total - p.available);
        Some(RankLease {
            nranks: want,
            pool: Arc::clone(&self.inner),
        })
    }

    /// Ranks currently unleased.
    pub fn available(&self) -> usize {
        self.inner.lock().unwrap().available
    }

    /// Pool size.
    pub fn total(&self) -> usize {
        self.inner.lock().unwrap().total
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let p = self.inner.lock().unwrap();
        PoolStats {
            total: p.total,
            available: p.available,
            granted: p.granted,
            reclaimed: p.reclaimed,
            rejected: p.rejected,
            peak_leased: p.peak_leased,
        }
    }
}

/// An RAII grant of ranks from a [`RankPool`]; dropping it returns the
/// ranks. Leases are intentionally not clonable — exactly one job owns a
/// slice at a time.
#[derive(Debug)]
pub struct RankLease {
    nranks: usize,
    pool: Arc<Mutex<PoolInner>>,
}

impl RankLease {
    /// Ranks granted by this lease.
    pub fn nranks(&self) -> usize {
        self.nranks
    }
}

impl Drop for RankLease {
    fn drop(&mut self) {
        let mut p = self.pool.lock().unwrap();
        p.available = (p.available + self.nranks).min(p.total);
        p.reclaimed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_return_on_drop() {
        let pool = RankPool::new(8);
        let a = pool.try_lease(3).unwrap();
        let b = pool.try_lease(5).unwrap();
        assert_eq!(pool.available(), 0);
        assert!(pool.try_lease(1).is_none(), "pool exhausted");
        drop(a);
        assert_eq!(pool.available(), 3);
        drop(b);
        assert_eq!(pool.available(), 8);
        let s = pool.stats();
        assert_eq!(s.granted, 2);
        assert_eq!(s.reclaimed, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.peak_leased, 8);
    }

    #[test]
    fn oversized_requests_clamp_to_pool() {
        let pool = RankPool::new(4);
        let lease = pool.try_lease(100).unwrap();
        assert_eq!(lease.nranks(), 4);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn zero_rank_request_grants_one() {
        let pool = RankPool::new(2);
        let lease = pool.try_lease(0).unwrap();
        assert_eq!(lease.nranks(), 1);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn lease_survives_thread_panic() {
        let pool = RankPool::new(4);
        let p2 = pool.clone();
        let res = std::thread::spawn(move || {
            let _lease = p2.try_lease(4).unwrap();
            panic!("job crashed mid-build");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(pool.available(), 4, "ranks reclaimed despite panic");
    }
}
