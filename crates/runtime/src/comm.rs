//! SPMD communicator over OS threads.
//!
//! Collectives use simple root-based algorithms (gather-to-0 + broadcast):
//! the local backend exists to prove algorithmic correctness, not to be
//! fast — scalable collective *cost* is modelled in `liair-bgq`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// A tagged message payload.
type Message = (u64, Vec<f64>);

/// Communication interface available to every rank of an SPMD region.
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Send `data` to rank `to` with a `tag` (non-blocking, buffered).
    fn send(&self, to: usize, tag: u64, data: Vec<f64>);
    /// Receive the message with exactly `tag` from rank `from` (blocking;
    /// out-of-order arrivals are buffered).
    fn recv(&self, from: usize, tag: u64) -> Vec<f64>;

    /// Element-wise global sum, result replicated on all ranks.
    fn allreduce_sum(&self, data: &mut [f64]) {
        let me = self.rank();
        let p = self.size();
        if p == 1 {
            return;
        }
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if me == 0 {
            for from in 1..p {
                let part = self.recv(from, TAG_GATHER);
                assert_eq!(part.len(), data.len(), "allreduce length mismatch");
                for (d, x) in data.iter_mut().zip(part) {
                    *d += x;
                }
            }
            for to in 1..p {
                self.send(to, TAG_BCAST, data.to_vec());
            }
        } else {
            self.send(0, TAG_GATHER, data.to_vec());
            let result = self.recv(0, TAG_BCAST);
            data.copy_from_slice(&result);
        }
    }

    /// Broadcast `data` from `root` to every rank.
    fn broadcast(&self, root: usize, data: &mut Vec<f64>) {
        let me = self.rank();
        let p = self.size();
        if p == 1 {
            return;
        }
        const TAG: u64 = u64::MAX - 3;
        if me == root {
            for to in 0..p {
                if to != root {
                    self.send(to, TAG, data.clone());
                }
            }
        } else {
            *data = self.recv(root, TAG);
        }
    }

    /// Gather per-rank vectors on `root`; returns `Some(parts)` on the
    /// root (indexed by rank) and `None` elsewhere.
    fn gather(&self, root: usize, data: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let me = self.rank();
        let p = self.size();
        const TAG: u64 = u64::MAX - 4;
        if me == root {
            let mut parts = vec![Vec::new(); p];
            parts[root] = data;
            for from in 0..p {
                if from != root {
                    parts[from] = self.recv(from, TAG);
                }
            }
            Some(parts)
        } else {
            self.send(root, TAG, data);
            None
        }
    }

    /// Synchronize all ranks.
    fn barrier(&self) {
        let mut token = [0.0f64];
        self.allreduce_sum(&mut token);
    }

    /// Every rank contributes `data`; every rank receives the
    /// concatenation ordered by rank.
    fn allgather(&self, data: Vec<f64>) -> Vec<Vec<f64>> {
        let me = self.rank();
        let p = self.size();
        if p == 1 {
            return vec![data];
        }
        const TAG_IN: u64 = u64::MAX - 5;
        const TAG_OUT: u64 = u64::MAX - 6;
        if me == 0 {
            let mut parts = vec![Vec::new(); p];
            parts[0] = data;
            for from in 1..p {
                parts[from] = self.recv(from, TAG_IN);
            }
            // Flatten with a length prefix per rank for the broadcast.
            let mut flat = Vec::new();
            for part in &parts {
                flat.push(part.len() as f64);
                flat.extend_from_slice(part);
            }
            for to in 1..p {
                self.send(to, TAG_OUT, flat.clone());
            }
            parts
        } else {
            self.send(0, TAG_IN, data);
            let flat = self.recv(0, TAG_OUT);
            let mut parts = Vec::with_capacity(p);
            let mut pos = 0;
            for _ in 0..p {
                let len = flat[pos] as usize;
                pos += 1;
                parts.push(flat[pos..pos + len].to_vec());
                pos += len;
            }
            parts
        }
    }

    /// Global element-wise sum of a vector whose length is `P × chunk`;
    /// rank `r` receives summed chunk `r` (reduce-scatter with equal
    /// blocks).
    fn reduce_scatter_block(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        assert_eq!(data.len() % p, 0, "reduce_scatter: length not divisible");
        let chunk = data.len() / p;
        let mut full = data.to_vec();
        self.allreduce_sum(&mut full);
        full[self.rank() * chunk..(self.rank() + 1) * chunk].to_vec()
    }

    /// Personalized all-to-all: `outgoing[d]` is this rank's message for
    /// rank `d`; returns the messages received, indexed by source.
    fn alltoall(&self, outgoing: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let me = self.rank();
        let p = self.size();
        assert_eq!(outgoing.len(), p, "alltoall needs one message per rank");
        const TAG: u64 = u64::MAX - 7;
        let mut incoming = vec![Vec::new(); p];
        // Self-message moves locally.
        incoming[me] = outgoing[me].clone();
        for (d, msg) in outgoing.into_iter().enumerate() {
            if d != me {
                self.send(d, TAG, msg);
            }
        }
        for s in 0..p {
            if s != me {
                incoming[s] = self.recv(s, TAG);
            }
        }
        incoming
    }
}

/// Thread-backed communicator.
pub struct LocalComm {
    rank: usize,
    size: usize,
    /// `senders[to]` delivers into `to`'s inbox slot for this rank.
    senders: Vec<Sender<Message>>,
    /// `inboxes[from]` receives messages sent by `from`.
    inboxes: Vec<Receiver<Message>>,
    /// Out-of-order buffer: per source, tag → queue.
    stash: Mutex<Vec<HashMap<u64, VecDeque<Vec<f64>>>>>,
}

impl Comm for LocalComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-send not supported");
        self.senders[to]
            .send((tag, data))
            .expect("receiver dropped");
    }

    fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        assert!(from < self.size, "recv from out-of-range rank {from}");
        assert_ne!(from, self.rank, "self-recv not supported");
        // Check stash first.
        {
            let mut stash = self.stash.lock();
            if let Some(q) = stash[from].get_mut(&tag) {
                if let Some(msg) = q.pop_front() {
                    return msg;
                }
            }
        }
        // Drain the channel until the wanted tag arrives.
        loop {
            let (t, data) = self.inboxes[from].recv().expect("sender dropped");
            if t == tag {
                return data;
            }
            self.stash.lock()[from]
                .entry(t)
                .or_default()
                .push_back(data);
        }
    }
}

/// Run `body` as an SPMD region over `nranks` virtual ranks (one OS thread
/// each) and collect each rank's return value, indexed by rank.
pub fn run_spmd<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&LocalComm) -> T + Sync,
{
    assert!(nranks >= 1);
    // Channel mesh: tx[from][to].
    let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for from in 0..nranks {
        for to in 0..nranks {
            if from == to {
                continue;
            }
            let (tx, rx) = unbounded();
            txs[from][to] = Some(tx);
            rxs[to][from] = Some(rx);
        }
    }
    // Assemble per-rank comms.
    let mut comms: Vec<LocalComm> = Vec::with_capacity(nranks);
    for (rank, rx_row) in rxs.into_iter().enumerate() {
        let senders: Vec<Sender<Message>> = (0..nranks)
            .map(|to| {
                if to == rank {
                    // placeholder channel, never used (self-send asserts)
                    unbounded().0
                } else {
                    txs[rank][to].take().unwrap()
                }
            })
            .collect();
        let inboxes: Vec<Receiver<Message>> = rx_row
            .into_iter()
            .map(|r| r.unwrap_or_else(|| unbounded().1))
            .collect();
        comms.push(LocalComm {
            rank,
            size: nranks,
            senders,
            inboxes,
            stash: Mutex::new(vec![HashMap::new(); nranks]),
        });
    }

    let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| scope.spawn(|| body(comm)))
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    out.into_iter().map(|o| o.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_over_ranks() {
        let results = run_spmd(5, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v);
            v
        });
        // Σ ranks = 10, Σ ones = 5, replicated everywhere.
        for r in results {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn broadcast_replicates_root_data() {
        let results = run_spmd(4, |comm| {
            let mut v = if comm.rank() == 2 {
                vec![7.0, 8.0, 9.0]
            } else {
                Vec::new()
            };
            comm.broadcast(2, &mut v);
            v
        });
        for r in results {
            assert_eq!(r, vec![7.0, 8.0, 9.0]);
        }
    }

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its value around the ring once.
        let n = 6;
        let results = run_spmd(n, |comm| {
            let me = comm.rank();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let mut acc = me as f64;
            let mut token = me as f64;
            for step in 0..(n - 1) {
                comm.send(next, step as u64, vec![token]);
                token = comm.recv(prev, step as u64)[0];
                acc += token;
            }
            acc
        });
        let want: f64 = (0..n).map(|r| r as f64).sum();
        for r in results {
            assert_eq!(r, want);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = run_spmd(3, |comm| comm.gather(0, vec![comm.rank() as f64 * 10.0]));
        assert_eq!(results[0], Some(vec![vec![0.0], vec![10.0], vec![20.0]]));
        assert_eq!(results[1], None);
        assert_eq!(results[2], None);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send(1, 2, vec![2.0]);
                comm.send(1, 1, vec![1.0]);
                0.0
            } else {
                // Receive in the opposite order.
                let a = comm.recv(0, 1)[0];
                let b = comm.recv(0, 2)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allgather_orders_by_rank() {
        let results = run_spmd(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgather(mine)
        });
        for parts in results {
            assert_eq!(parts.len(), 4);
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part.len(), r + 1);
                assert!(part.iter().all(|&x| x == r as f64));
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_and_scatters() {
        let results = run_spmd(3, |comm| {
            // Every rank contributes [rank, rank, rank, rank, rank, rank];
            // the summed vector is [3,3,3,3,3,3] and rank r gets chunk r.
            let data = vec![comm.rank() as f64 + 1.0; 6];
            comm.reduce_scatter_block(&data)
        });
        // Σ (r+1) = 6 for each element.
        for chunk in results {
            assert_eq!(chunk, vec![6.0, 6.0]);
        }
    }

    #[test]
    fn alltoall_transposes_messages() {
        let results = run_spmd(3, |comm| {
            // Message to rank d: [10·me + d].
            let out: Vec<Vec<f64>> = (0..3)
                .map(|d| vec![(10 * comm.rank() + d) as f64])
                .collect();
            comm.alltoall(out)
        });
        for (me, incoming) in results.into_iter().enumerate() {
            for (s, msg) in incoming.into_iter().enumerate() {
                assert_eq!(msg, vec![(10 * s + me) as f64], "rank {me} from {s}");
            }
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let results = run_spmd(1, |comm| {
            let mut v = vec![3.0];
            comm.allreduce_sum(&mut v);
            comm.barrier();
            v[0]
        });
        assert_eq!(results[0], 3.0);
    }

    #[test]
    fn barrier_completes_for_many_ranks() {
        let results = run_spmd(8, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(results.len(), 8);
    }
}
