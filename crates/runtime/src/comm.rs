//! SPMD communicator over OS threads.
//!
//! [`Comm`] is the first-class communication surface of the runtime:
//! typed point-to-point transfers plus the collective set the parallel
//! exact-exchange scheme needs (barrier, broadcast, reduce, gather,
//! allgather, reduce-scatter, all-to-all). Every operation returns a
//! [`CommResult`] — a peer that exhausts the retry budget surfaces as
//! [`CommError::Timeout`] instead of a hang.
//!
//! Each collective ships in two algorithmic families selected by
//! [`CollectiveMode`]:
//!
//! * **Flat** — root-based linear algorithms (`P − 1` serial transfers
//!   through the root), the correctness baseline whose modeled cost is
//!   what strangles flat reductions at BG/Q scale;
//! * **Hierarchical** — binomial-tree gather/broadcast/reduce and
//!   recursive-doubling allgather (`⌈log₂ P⌉` rounds), the
//!   dimension-ordered combining-tree structure of the BG/Q collective
//!   network. Gather and allgather move data without arithmetic, so they
//!   are *bitwise identical* to the flat algorithms by construction —
//!   the property the exchange engine's canonical-order reduction relies
//!   on. Tree `allreduce_sum` changes the floating-point association
//!   (documented below) and is therefore not used on the engine's
//!   bit-exact path.
//!
//! Faults (dropped / delayed / duplicated messages, stalled ranks) are
//! injected deterministically by [`FaultInjector`](crate::FaultInjector);
//! the transport recovers via sequence-deduplicated retransmission with
//! exponential backoff. See [`crate::fault`].

use crate::error::{CommError, CommResult};
use crate::fault::FaultInjector;
use crate::payload::Payload;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A wire message: `(tag, per-edge sequence number, payload words)`.
type WireMsg = (u64, u64, Vec<f64>);

/// Which collective algorithm family a communicator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveMode {
    /// Root-based linear algorithms (`P − 1` serial transfers).
    #[default]
    Flat,
    /// Binomial-tree / recursive-doubling algorithms (`⌈log₂ P⌉` rounds).
    Hierarchical,
}

impl CollectiveMode {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveMode::Flat => "flat",
            CollectiveMode::Hierarchical => "hierarchical",
        }
    }
}

/// Internal collective tags live in the reserved space with bit 63 set;
/// user tags must keep it clear. `op` identifies the collective, `epoch`
/// the invocation (so a late message from a previous collective can never
/// match the current one), `round` the tree round within it.
fn ctag(op: u8, epoch: u64, round: u32) -> u64 {
    (1u64 << 63) | ((op as u64) << 55) | ((epoch & 0xFFFF_FFFF) << 16) | round as u64
}

const OP_GATHER: u8 = 1;
const OP_BCAST: u8 = 2;
const OP_REDUCE: u8 = 3;
const OP_ALLGATHER: u8 = 4;
const OP_ALLTOALL: u8 = 5;

/// Frame a set of `(rank, words)` entries into one word vector:
/// `[n, (rank, len, words…)…]`. Counts are exact in `f64` (they are far
/// below 2⁵³). Pure data movement — no arithmetic on the payload words —
/// which is what keeps tree-structured gathers bitwise faithful.
fn frame(entries: &[(usize, Vec<f64>)]) -> Vec<f64> {
    let total: usize = entries.iter().map(|(_, w)| w.len() + 2).sum();
    let mut out = Vec::with_capacity(1 + total);
    out.push(entries.len() as f64);
    for (rank, words) in entries {
        out.push(*rank as f64);
        out.push(words.len() as f64);
        out.extend_from_slice(words);
    }
    out
}

/// Inverse of [`frame`].
fn unframe(words: &[f64]) -> Vec<(usize, Vec<f64>)> {
    let n = words[0] as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 1;
    for _ in 0..n {
        let rank = words[pos] as usize;
        let len = words[pos + 1] as usize;
        pos += 2;
        out.push((rank, words[pos..pos + len].to_vec()));
        pos += len;
    }
    out
}

/// Communication interface available to every rank of an SPMD region.
///
/// Object-safe: orchestration code takes `&dyn Comm` so the same driver
/// runs over the plain channel transport ([`LocalComm`]) and the
/// topology-accounting wrapper ([`crate::TorusComm`]). The typed payload
/// helpers are `Self: Sized` conveniences over the word transport.
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Send `data` to rank `to` with a `tag` (non-blocking, buffered).
    /// Tags with bit 63 set are reserved for the collectives.
    fn send(&self, to: usize, tag: u64, data: Vec<f64>) -> CommResult<()>;
    /// Receive the message with exactly `tag` from rank `from` (blocking;
    /// out-of-order arrivals are buffered). Under a fault plan the wait is
    /// bounded: retries with exponential backoff, then
    /// [`CommError::Timeout`].
    fn recv(&self, from: usize, tag: u64) -> CommResult<Vec<f64>>;
    /// Non-blocking receive: hand back the message with exactly `tag` from
    /// rank `from` if it is already available, `Ok(None)` otherwise —
    /// never waits. Arrivals with other tags are stashed for their own
    /// receives. Under a fault plan a poll doubles as a NACK opportunity:
    /// anything parked on the edge is retransmitted and re-checked, so a
    /// progress engine that polls between compute chunks recovers dropped
    /// and delayed traffic without ever blocking.
    fn try_recv(&self, from: usize, tag: u64) -> CommResult<Option<Vec<f64>>>;
    /// The collective algorithm family this communicator runs.
    fn mode(&self) -> CollectiveMode;
    /// Next collective epoch (every rank calls collectives in the same
    /// order, so the per-rank counters agree globally).
    fn next_epoch(&self) -> u64;
    /// Whether the fault plan stalls this rank for the whole region — a
    /// stalled rank must skip its work *and* every collective.
    fn stalled(&self) -> bool {
        false
    }

    /// Out-of-band failure notification for a *peer* rank — the model's
    /// stand-in for the control system's RAS events (on BG/Q the job
    /// controller learns of a dead node from the machine, not from a
    /// timeout). Deterministic in the fault seed, which is what keeps the
    /// pipelined engine's stall/steal counters replayable; the caller
    /// still decides *when* to act on it (the steal queue waits for the
    /// rank's timeout to fire before re-issuing its chunks).
    fn peer_stalled(&self, _rank: usize) -> bool {
        false
    }

    /// Send a typed payload (see [`Payload`]).
    fn send_payload<P: Payload>(&self, to: usize, tag: u64, payload: P) -> CommResult<()>
    where
        Self: Sized,
    {
        self.send(to, tag, payload.into_words())
    }

    /// Receive a typed payload (see [`Payload`]).
    fn recv_payload<P: Payload>(&self, from: usize, tag: u64) -> CommResult<P>
    where
        Self: Sized,
    {
        Ok(P::from_words(self.recv(from, tag)?))
    }

    /// Element-wise global sum, result replicated on all ranks.
    ///
    /// Flat mode gathers parts to rank 0 in ascending rank order and sums
    /// them sequentially. Hierarchical mode reduces up a binomial tree —
    /// `⌈log₂ P⌉` rounds, but a *different floating-point association*
    /// than flat (each is deterministic; they differ from each other by
    /// round-off). Code that needs cross-mode bitwise identity must use
    /// [`Comm::gather`] and reduce in a canonical order itself.
    fn allreduce_sum(&self, data: &mut [f64]) -> CommResult<()> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let epoch = self.next_epoch();
        match self.mode() {
            CollectiveMode::Flat => {
                let me = self.rank();
                let t_gather = ctag(OP_REDUCE, epoch, 0);
                let t_bcast = ctag(OP_REDUCE, epoch, 1);
                if me == 0 {
                    for from in 1..p {
                        let part = self.recv(from, t_gather)?;
                        if part.len() != data.len() {
                            return Err(CommError::LengthMismatch {
                                expected: data.len(),
                                got: part.len(),
                            });
                        }
                        for (d, x) in data.iter_mut().zip(part) {
                            *d += x;
                        }
                    }
                    for to in 1..p {
                        self.send(to, t_bcast, data.to_vec())?;
                    }
                } else {
                    self.send(0, t_gather, data.to_vec())?;
                    let result = self.recv(0, t_bcast)?;
                    data.copy_from_slice(&result);
                }
                Ok(())
            }
            CollectiveMode::Hierarchical => {
                // Binomial-tree reduce to rank 0 …
                let vr = self.rank();
                let mut mask = 1usize;
                while mask < p {
                    if vr & mask == 0 {
                        let src = vr | mask;
                        if src < p {
                            let part = self.recv(src, ctag(OP_REDUCE, epoch, mask as u32))?;
                            if part.len() != data.len() {
                                return Err(CommError::LengthMismatch {
                                    expected: data.len(),
                                    got: part.len(),
                                });
                            }
                            for (d, x) in data.iter_mut().zip(part) {
                                *d += x;
                            }
                        }
                    } else {
                        let dst = vr - mask;
                        self.send(dst, ctag(OP_REDUCE, epoch, mask as u32), data.to_vec())?;
                        break;
                    }
                    mask <<= 1;
                }
                // … then binomial broadcast of the result.
                let mut out = data.to_vec();
                self.bcast_tree(0, &mut out, epoch)?;
                data.copy_from_slice(&out);
                Ok(())
            }
        }
    }

    /// Broadcast `data` from `root` to every rank.
    fn broadcast(&self, root: usize, data: &mut Vec<f64>) -> CommResult<()> {
        let p = self.size();
        self.check_rank(root)?;
        if p == 1 {
            return Ok(());
        }
        let epoch = self.next_epoch();
        match self.mode() {
            CollectiveMode::Flat => {
                let me = self.rank();
                let tag = ctag(OP_BCAST, epoch, 0);
                if me == root {
                    for to in 0..p {
                        if to != root {
                            self.send(to, tag, data.clone())?;
                        }
                    }
                } else {
                    *data = self.recv(root, tag)?;
                }
                Ok(())
            }
            CollectiveMode::Hierarchical => self.bcast_tree(root, data, epoch),
        }
    }

    /// Binomial-tree broadcast (the hierarchical algorithm; also the
    /// result-distribution stage of the tree allreduce).
    #[doc(hidden)]
    fn bcast_tree(&self, root: usize, data: &mut Vec<f64>, epoch: u64) -> CommResult<()> {
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        // Receive once from the parent (the first set bit of vr) …
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *data = self.recv(src, ctag(OP_BCAST, epoch, mask as u32))?;
                break;
            }
            mask <<= 1;
        }
        // … then relay to children below that bit.
        mask >>= 1;
        while mask > 0 {
            if vr | mask != vr && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send(dst, ctag(OP_BCAST, epoch, mask as u32), data.clone())?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Gather per-rank vectors on `root`; returns `Some(parts)` on the
    /// root (indexed by rank) and `None` elsewhere. Strict: an
    /// unresponsive peer fails the whole collective with its
    /// [`CommError::Timeout`]. Data movement only — bitwise identical
    /// across [`CollectiveMode`]s.
    fn gather(&self, root: usize, data: Vec<f64>) -> CommResult<Option<Vec<Vec<f64>>>> {
        match self.gather_partial(root, data)? {
            None => Ok(None),
            Some(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                for (rank, part) in parts.into_iter().enumerate() {
                    match part {
                        Some(p) => out.push(p),
                        None => return Err(CommError::Timeout { rank, attempts: 0 }),
                    }
                }
                Ok(Some(out))
            }
        }
    }

    /// Fault-tolerant gather: the root receives `Some(parts)` with `None`
    /// in the slot of every rank whose contribution never arrived (the
    /// rank stalled, or an intermediate tree node gave up on its
    /// subtree). Non-roots receive `Ok(None)`. The caller decides how to
    /// degrade — the exchange engine re-issues missing ranks' chunks to
    /// survivors.
    fn gather_partial(
        &self,
        root: usize,
        data: Vec<f64>,
    ) -> CommResult<Option<Vec<Option<Vec<f64>>>>> {
        let p = self.size();
        let me = self.rank();
        self.check_rank(root)?;
        if p == 1 {
            return Ok(Some(vec![Some(data)]));
        }
        let epoch = self.next_epoch();
        match self.mode() {
            CollectiveMode::Flat => {
                let tag = ctag(OP_GATHER, epoch, 0);
                if me == root {
                    let mut parts: Vec<Option<Vec<f64>>> = vec![None; p];
                    parts[root] = Some(data);
                    for from in 0..p {
                        if from != root {
                            parts[from] = self.recv(from, tag).ok();
                        }
                    }
                    Ok(Some(parts))
                } else {
                    self.send(root, tag, data)?;
                    Ok(None)
                }
            }
            CollectiveMode::Hierarchical => {
                // Binomial tree toward the root: in round k a rank whose
                // k-th virtual bit is set forwards everything it has
                // collected (framed, with rank ids) to its parent. A
                // timed-out child just leaves its subtree absent.
                let vr = (me + p - root) % p;
                let mut collected: Vec<(usize, Vec<f64>)> = vec![(me, data)];
                let mut mask = 1usize;
                while mask < p {
                    if vr & mask != 0 {
                        let dst = (vr - mask + root) % p;
                        self.send(dst, ctag(OP_GATHER, epoch, mask as u32), frame(&collected))?;
                        return Ok(None);
                    }
                    let src_vr = vr + mask;
                    if src_vr < p {
                        let src = (src_vr + root) % p;
                        if let Ok(words) = self.recv(src, ctag(OP_GATHER, epoch, mask as u32)) {
                            collected.extend(unframe(&words));
                        }
                    }
                    mask <<= 1;
                }
                let mut parts: Vec<Option<Vec<f64>>> = vec![None; p];
                for (rank, words) in collected {
                    parts[rank] = Some(words);
                }
                Ok(Some(parts))
            }
        }
    }

    /// Synchronize all ranks.
    fn barrier(&self) -> CommResult<()> {
        let mut token = [0.0f64];
        self.allreduce_sum(&mut token)
    }

    /// Every rank contributes `data`; every rank receives the
    /// concatenation ordered by rank. Data movement only — bitwise
    /// identical across [`CollectiveMode`]s.
    fn allgather(&self, data: Vec<f64>) -> CommResult<Vec<Vec<f64>>> {
        let p = self.size();
        let me = self.rank();
        if p == 1 {
            return Ok(vec![data]);
        }
        let epoch = self.next_epoch();
        match self.mode() {
            CollectiveMode::Flat => {
                let t_in = ctag(OP_ALLGATHER, epoch, 0);
                let t_out = ctag(OP_ALLGATHER, epoch, 1);
                if me == 0 {
                    let mut entries: Vec<(usize, Vec<f64>)> = vec![(0, data)];
                    for from in 1..p {
                        entries.push((from, self.recv(from, t_in)?));
                    }
                    let flat = frame(&entries);
                    for to in 1..p {
                        self.send(to, t_out, flat.clone())?;
                    }
                    Ok(sort_blocks(entries, p)?)
                } else {
                    self.send(0, t_in, data)?;
                    let flat = self.recv(0, t_out)?;
                    sort_blocks(unframe(&flat), p)
                }
            }
            CollectiveMode::Hierarchical => {
                if p.is_power_of_two() {
                    // Recursive doubling: in round k exchange everything
                    // collected so far with the partner across bit k.
                    let mut collected: Vec<(usize, Vec<f64>)> = vec![(me, data)];
                    let mut mask = 1usize;
                    while mask < p {
                        let partner = me ^ mask;
                        self.send(
                            partner,
                            ctag(OP_ALLGATHER, epoch, mask as u32),
                            frame(&collected),
                        )?;
                        let words = self.recv(partner, ctag(OP_ALLGATHER, epoch, mask as u32))?;
                        collected.extend(unframe(&words));
                        mask <<= 1;
                    }
                    sort_blocks(collected, p)
                } else {
                    // Non-power-of-two: tree gather to 0, tree broadcast
                    // of the framed result — still ⌈log₂ P⌉-depth and
                    // data-movement-only.
                    let parts = self.gather_partial(0, data)?;
                    let mut flat = match parts {
                        Some(parts) => {
                            let entries: Vec<(usize, Vec<f64>)> = parts
                                .into_iter()
                                .enumerate()
                                .map(|(r, part)| match part {
                                    Some(w) => Ok((r, w)),
                                    None => Err(CommError::Timeout {
                                        rank: r,
                                        attempts: 0,
                                    }),
                                })
                                .collect::<CommResult<_>>()?;
                            frame(&entries)
                        }
                        None => Vec::new(),
                    };
                    self.bcast_tree(0, &mut flat, epoch)?;
                    sort_blocks(unframe(&flat), p)
                }
            }
        }
    }

    /// Global element-wise sum of a vector whose length is `P × chunk`;
    /// rank `r` receives summed chunk `r` (reduce-scatter with equal
    /// blocks).
    fn reduce_scatter_block(&self, data: &[f64]) -> CommResult<Vec<f64>> {
        let p = self.size();
        if !data.len().is_multiple_of(p) {
            return Err(CommError::InvalidArgument(format!(
                "reduce_scatter: length {} not divisible by {p}",
                data.len()
            )));
        }
        let chunk = data.len() / p;
        let mut full = data.to_vec();
        self.allreduce_sum(&mut full)?;
        Ok(full[self.rank() * chunk..(self.rank() + 1) * chunk].to_vec())
    }

    /// Personalized all-to-all: `outgoing[d]` is this rank's message for
    /// rank `d`; returns the messages received, indexed by source.
    fn alltoall(&self, outgoing: Vec<Vec<f64>>) -> CommResult<Vec<Vec<f64>>> {
        let me = self.rank();
        let p = self.size();
        if outgoing.len() != p {
            return Err(CommError::InvalidArgument(format!(
                "alltoall needs one message per rank: got {} for {p}",
                outgoing.len()
            )));
        }
        let epoch = self.next_epoch();
        let tag = ctag(OP_ALLTOALL, epoch, 0);
        let mut incoming = vec![Vec::new(); p];
        // Self-message moves locally.
        incoming[me] = outgoing[me].clone();
        for (d, msg) in outgoing.into_iter().enumerate() {
            if d != me {
                self.send(d, tag, msg)?;
            }
        }
        for (s, slot) in incoming.iter_mut().enumerate() {
            if s != me {
                *slot = self.recv(s, tag)?;
            }
        }
        Ok(incoming)
    }

    /// Validate a rank id against this communicator.
    #[doc(hidden)]
    fn check_rank(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size() {
            Err(CommError::InvalidRank {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }
}

/// Order framed `(rank, words)` blocks by rank, verifying completeness.
fn sort_blocks(entries: Vec<(usize, Vec<f64>)>, p: usize) -> CommResult<Vec<Vec<f64>>> {
    let mut out: Vec<Option<Vec<f64>>> = vec![None; p];
    for (rank, words) in entries {
        out[rank] = Some(words);
    }
    out.into_iter()
        .enumerate()
        .map(|(rank, part)| part.ok_or(CommError::Timeout { rank, attempts: 0 }))
        .collect()
}

/// Thread-backed communicator.
pub struct LocalComm {
    rank: usize,
    size: usize,
    /// `senders[to]` delivers into `to`'s inbox slot for this rank.
    senders: Vec<Sender<WireMsg>>,
    /// `inboxes[from]` receives messages sent by `from`.
    inboxes: Vec<Receiver<WireMsg>>,
    /// Out-of-order buffer: per source, tag → queue.
    stash: Mutex<Vec<HashMap<u64, VecDeque<Vec<f64>>>>>,
    /// Per-source set of already-delivered sequence numbers (duplicate
    /// suppression under fault injection).
    seen: Mutex<Vec<HashSet<u64>>>,
    /// Per-destination next send sequence number.
    next_seq: Vec<AtomicU64>,
    /// Collective invocation counter (same sequence on every rank).
    epoch: AtomicU64,
    /// Collective algorithm family.
    mode: CollectiveMode,
    /// Fault injection, when this region runs under a plan.
    injector: Option<Arc<FaultInjector>>,
}

impl LocalComm {
    /// Pop a stashed message for `(from, tag)`.
    fn take_stashed(&self, from: usize, tag: u64) -> Option<Vec<f64>> {
        self.stash.lock()[from].get_mut(&tag)?.pop_front()
    }

    /// Admit an arrived wire message: suppress duplicates, hand back the
    /// payload if it matches `wanted`, stash it otherwise.
    fn admit(&self, from: usize, wanted: u64, (tag, seq, data): WireMsg) -> Option<Vec<f64>> {
        if self.injector.is_some() && !self.seen.lock()[from].insert(seq) {
            if let Some(inj) = &self.injector {
                inj.note_dup();
            }
            return None;
        }
        if tag == wanted {
            return Some(data);
        }
        self.stash.lock()[from]
            .entry(tag)
            .or_default()
            .push_back(data);
        None
    }

    /// Dedup-filter an arrived wire message and stash it regardless of
    /// which tag the caller is currently waiting on.
    fn stash_wire(&self, from: usize, (tag, seq, data): WireMsg) {
        if self.injector.is_some() && !self.seen.lock()[from].insert(seq) {
            if let Some(inj) = &self.injector {
                inj.note_dup();
            }
            return;
        }
        self.stash.lock()[from]
            .entry(tag)
            .or_default()
            .push_back(data);
    }
}

impl Comm for LocalComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn mode(&self) -> CollectiveMode {
        self.mode
    }

    fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed)
    }

    fn stalled(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.stalled(self.rank))
    }

    fn peer_stalled(&self, rank: usize) -> bool {
        self.injector.as_ref().is_some_and(|inj| inj.stalled(rank))
    }

    fn send(&self, to: usize, tag: u64, data: Vec<f64>) -> CommResult<()> {
        self.check_rank(to)?;
        if to == self.rank {
            return Err(CommError::SelfMessage { rank: to });
        }
        let seq = self.next_seq[to].fetch_add(1, Ordering::Relaxed);
        let copies = match &self.injector {
            None => 1,
            Some(inj) => match inj.verdict(self.rank, to, seq) {
                crate::fault::Verdict::Deliver => 1,
                crate::fault::Verdict::Duplicate => 2,
                verdict => {
                    inj.park(self.rank, to, (tag, seq, data), verdict);
                    return Ok(());
                }
            },
        };
        for _ in 0..copies {
            self.senders[to]
                .send((tag, seq, data.clone()))
                .map_err(|_| CommError::Disconnected { rank: to })?;
        }
        Ok(())
    }

    fn try_recv(&self, from: usize, tag: u64) -> CommResult<Option<Vec<f64>>> {
        self.check_rank(from)?;
        if from == self.rank {
            return Err(CommError::SelfMessage { rank: from });
        }
        if let Some(msg) = self.take_stashed(from, tag) {
            return Ok(Some(msg));
        }
        while let Ok(wire) = self.inboxes[from].try_recv() {
            if let Some(data) = self.admit(from, tag, wire) {
                return Ok(Some(data));
            }
        }
        // The poll models a piggy-backed NACK: recover everything parked
        // on this edge (dropped/delayed under injection) and re-check.
        if let Some(inj) = &self.injector {
            for wire in inj.retransmit(from, self.rank) {
                self.stash_wire(from, wire);
            }
            if let Some(msg) = self.take_stashed(from, tag) {
                return Ok(Some(msg));
            }
        }
        Ok(None)
    }

    fn recv(&self, from: usize, tag: u64) -> CommResult<Vec<f64>> {
        self.check_rank(from)?;
        if from == self.rank {
            return Err(CommError::SelfMessage { rank: from });
        }
        if let Some(msg) = self.take_stashed(from, tag) {
            return Ok(msg);
        }
        match self.injector.clone() {
            None => loop {
                let wire = self.inboxes[from]
                    .recv()
                    .map_err(|_| CommError::Disconnected { rank: from })?;
                if let Some(data) = self.admit(from, tag, wire) {
                    return Ok(data);
                }
            },
            Some(inj) => {
                let plan = *inj.plan();
                let mut attempts = 0usize;
                loop {
                    if let Some(msg) = self.take_stashed(from, tag) {
                        return Ok(msg);
                    }
                    match self.inboxes[from].recv_timeout(plan.attempt_timeout(attempts)) {
                        Ok(wire) => {
                            if let Some(data) = self.admit(from, tag, wire) {
                                return Ok(data);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::Disconnected { rank: from })
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            // The timeout models a NACK reaching the
                            // sender: everything parked on this edge is
                            // retransmitted. Only a fruitless recovery
                            // consumes an attempt.
                            let recovered = inj.retransmit(from, self.rank);
                            let progressed = !recovered.is_empty();
                            for wire in recovered {
                                // Stash unconditionally (dedup applies);
                                // the loop head re-checks the stash.
                                self.stash_wire(from, wire);
                            }
                            if !progressed {
                                inj.note_retry();
                                attempts += 1;
                                if attempts >= plan.max_attempts {
                                    return Err(CommError::Timeout {
                                        rank: from,
                                        attempts,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Everything a [`run_spmd_cfg`] region is configured with.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommConfig {
    /// Collective algorithm family every rank runs.
    pub mode: CollectiveMode,
    /// Deterministic fault plan, if the region runs under injection.
    pub fault: Option<crate::fault::FaultPlan>,
    /// Map ranks onto this torus and account every transfer's route
    /// (hop counts, per-link loads) for the BSP cost model.
    pub torus: Option<liair_bgq::Torus5D>,
}

/// Outcome of a configured SPMD region: per-rank results plus the
/// fault/traffic accounting the configuration enabled.
#[derive(Debug)]
pub struct SpmdRun<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Fault counters `(drops, delays, dups, retransmissions, retries)`
    /// when a fault plan was active.
    pub fault_stats: Option<(usize, usize, usize, usize, usize)>,
    /// The traffic ledger when a torus was configured.
    pub traffic: Option<crate::topo::TrafficLog>,
}

/// Build the channel mesh and per-rank communicators.
fn build_comms(
    nranks: usize,
    mode: CollectiveMode,
    injector: Option<Arc<FaultInjector>>,
) -> Vec<LocalComm> {
    // Channel mesh: tx[from][to].
    let mut txs: Vec<Vec<Option<Sender<WireMsg>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut rxs: Vec<Vec<Option<Receiver<WireMsg>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for from in 0..nranks {
        for to in 0..nranks {
            if from == to {
                continue;
            }
            let (tx, rx) = unbounded();
            txs[from][to] = Some(tx);
            rxs[to][from] = Some(rx);
        }
    }
    let mut comms: Vec<LocalComm> = Vec::with_capacity(nranks);
    for (rank, rx_row) in rxs.into_iter().enumerate() {
        let senders: Vec<Sender<WireMsg>> = (0..nranks)
            .map(|to| {
                if to == rank {
                    // placeholder channel, never used (self-send errors)
                    unbounded().0
                } else {
                    txs[rank][to].take().expect("mesh slot filled above")
                }
            })
            .collect();
        let inboxes: Vec<Receiver<WireMsg>> = rx_row
            .into_iter()
            .map(|r| r.unwrap_or_else(|| unbounded().1))
            .collect();
        comms.push(LocalComm {
            rank,
            size: nranks,
            senders,
            inboxes,
            stash: Mutex::new(vec![HashMap::new(); nranks]),
            seen: Mutex::new(vec![HashSet::new(); nranks]),
            next_seq: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            epoch: AtomicU64::new(0),
            mode,
            injector: injector.clone(),
        });
    }
    comms
}

/// Run `body` as an SPMD region over `nranks` virtual ranks (one OS thread
/// each) and collect each rank's return value, indexed by rank.
///
/// The plain entry point: flat collectives, no faults, no topology. See
/// [`run_spmd_cfg`] for the configured variant.
pub fn run_spmd<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&LocalComm) -> T + Sync,
{
    assert!(nranks >= 1);
    let comms = build_comms(nranks, CollectiveMode::Flat, None);
    let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| scope.spawn(|| body(comm)))
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    out.into_iter().map(|o| o.expect("joined above")).collect()
}

/// Run `body` as an SPMD region under a [`CommConfig`]: selectable
/// collective family, deterministic fault injection, and torus traffic
/// accounting. `body` receives the communicator as `&dyn Comm` so it runs
/// unchanged over the plain and the topology-accounting transports.
pub fn run_spmd_cfg<T, F>(nranks: usize, cfg: CommConfig, body: F) -> CommResult<SpmdRun<T>>
where
    T: Send,
    F: Fn(&dyn Comm) -> T + Sync,
{
    if nranks < 1 {
        return Err(CommError::InvalidArgument("nranks must be >= 1".into()));
    }
    let injector = match cfg.fault {
        Some(plan) => Some(Arc::new(FaultInjector::new(plan)?)),
        None => None,
    };
    let torus = match cfg.torus {
        Some(t) => {
            if t.nodes() != nranks {
                return Err(CommError::InvalidArgument(format!(
                    "torus has {} nodes for {nranks} ranks",
                    t.nodes()
                )));
            }
            Some(t)
        }
        None => None,
    };
    let ledger = torus.map(crate::topo::TrafficLog::new);
    let comms = build_comms(nranks, cfg.mode, injector.clone());
    let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let ledger = &ledger;
        let body = &body;
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                scope.spawn(move || match ledger {
                    Some(log) => {
                        let tc = crate::topo::TorusComm::new(comm, log);
                        body(&tc)
                    }
                    None => body(comm),
                })
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    Ok(SpmdRun {
        results: out.into_iter().map(|o| o.expect("joined above")).collect(),
        fault_stats: injector.map(|inj| inj.stats.snapshot()),
        traffic: ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    const MODES: [CollectiveMode; 2] = [CollectiveMode::Flat, CollectiveMode::Hierarchical];

    fn with_mode(mode: CollectiveMode) -> CommConfig {
        CommConfig {
            mode,
            ..CommConfig::default()
        }
    }

    #[test]
    fn allreduce_sums_over_ranks_in_both_modes() {
        for mode in MODES {
            let run = run_spmd_cfg(4, with_mode(mode), |comm| {
                let mut data = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&mut data).unwrap();
                data
            })
            .unwrap();
            for r in run.results {
                assert_eq!(r, vec![6.0, 4.0], "{}", mode.name());
            }
        }
    }

    #[test]
    fn broadcast_replicates_root_data_in_both_modes() {
        for mode in MODES {
            for root in [0, 2] {
                let run = run_spmd_cfg(5, with_mode(mode), |comm| {
                    let mut data = if comm.rank() == root {
                        vec![3.5, -1.0, 7.0]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(root, &mut data).unwrap();
                    data
                })
                .unwrap();
                for r in run.results {
                    assert_eq!(r, vec![3.5, -1.0, 7.0], "{} root {root}", mode.name());
                }
            }
        }
    }

    #[test]
    fn ring_pass_accumulates() {
        let results = run_spmd(4, |comm| {
            let me = comm.rank();
            let p = comm.size();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            let mut acc = me as f64;
            for step in 0..p - 1 {
                comm.send(next, step as u64, vec![acc]).unwrap();
                let got = comm.recv(prev, step as u64).unwrap();
                acc = got[0] + me as f64;
            }
            acc
        });
        // Each rank ends with a path sum; the total over ranks is fixed.
        let total: f64 = results.iter().sum();
        assert_eq!(results.len(), 4);
        assert!(total > 0.0);
    }

    #[test]
    fn gather_collects_by_rank_in_both_modes() {
        for mode in MODES {
            for root in [0, 1] {
                for n in [1usize, 2, 3, 4, 7, 8] {
                    if root >= n {
                        continue;
                    }
                    let run = run_spmd_cfg(n, with_mode(mode), move |comm| {
                        let data = vec![comm.rank() as f64; comm.rank() + 1];
                        comm.gather(root, data).unwrap()
                    })
                    .unwrap();
                    for (rank, out) in run.results.into_iter().enumerate() {
                        if rank == root {
                            let parts = out.expect("root gets parts");
                            assert_eq!(parts.len(), n);
                            for (r, part) in parts.iter().enumerate() {
                                assert_eq!(part, &vec![r as f64; r + 1], "{} n={n}", mode.name());
                            }
                        } else {
                            assert!(out.is_none());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn try_recv_never_blocks_and_drains_in_tag_order() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 1 {
                // Nothing in flight on this tag: an immediate None.
                assert_eq!(comm.try_recv(0, 99).unwrap(), None);
                comm.send(0, 100, vec![0.5]).unwrap(); // release the sender
                Vec::new()
            } else {
                comm.recv(1, 100).unwrap() // rank 1 has passed its poll
            }
        });
        assert_eq!(results[0], vec![0.5]);
        let results = run_spmd(2, |comm| {
            if comm.rank() == 1 {
                // Blocking recv of the later tag stashes the earlier one;
                // the poll then serves it from the stash without waiting.
                let b = comm.recv(0, 8).unwrap();
                let a = comm.try_recv(0, 7).unwrap().expect("stashed");
                vec![a[0], b[0]]
            } else {
                comm.send(1, 7, vec![1.0]).unwrap();
                comm.send(1, 8, vec![2.0]).unwrap();
                Vec::new()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn try_recv_recovers_dropped_traffic_via_poll_nack() {
        // Every first transmission is lost; only the poll's piggy-backed
        // NACK (vault retransmission) can deliver.
        let plan = FaultPlan {
            drop_p: 1.0,
            delay_p: 0.0,
            dup_p: 0.0,
            ..FaultPlan::messages_only(3)
        };
        let cfg = CommConfig {
            mode: CollectiveMode::Flat,
            fault: Some(plan),
            torus: None,
        };
        let run = run_spmd_cfg(2, cfg, |comm| {
            if comm.rank() == 1 {
                comm.send(0, 5, vec![42.0]).unwrap();
                Vec::new()
            } else {
                for _ in 0..1000 {
                    if let Some(msg) = comm.try_recv(1, 5).unwrap() {
                        return msg;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                panic!("poll never recovered the dropped message");
            }
        })
        .unwrap();
        assert_eq!(run.results[0], vec![42.0]);
        let (drops, _, _, retransmissions, _) = run.fault_stats.unwrap();
        assert!(drops >= 1);
        assert!(retransmissions >= drops);
    }

    #[test]
    fn peer_stall_oracle_matches_self_view() {
        let plan = FaultPlan::with_stalls(7);
        let cfg = CommConfig {
            mode: CollectiveMode::Flat,
            fault: Some(plan),
            torus: None,
        };
        let run = run_spmd_cfg(8, cfg, |comm| {
            let me = comm.stalled();
            let seen_by_root: Vec<bool> = (0..comm.size()).map(|r| comm.peer_stalled(r)).collect();
            (me, seen_by_root)
        })
        .unwrap();
        let truth: Vec<bool> = run.results.iter().map(|(s, _)| *s).collect();
        assert!(!truth[0], "rank 0 never stalls");
        for (_, seen) in &run.results {
            assert_eq!(seen, &truth, "the oracle is globally consistent");
        }
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![1.0]).unwrap();
                comm.send(1, 20, vec![2.0]).unwrap();
                Vec::new()
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 20).unwrap();
                let a = comm.recv(0, 10).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allgather_orders_by_rank_in_both_modes() {
        for mode in MODES {
            // Cover power-of-two (recursive doubling) and not (tree+bcast).
            for n in [1usize, 2, 3, 4, 5, 8] {
                let run = run_spmd_cfg(n, with_mode(mode), move |comm| {
                    comm.allgather(vec![comm.rank() as f64 * 10.0]).unwrap()
                })
                .unwrap();
                for out in run.results {
                    assert_eq!(out.len(), n, "{} n={n}", mode.name());
                    for (r, part) in out.iter().enumerate() {
                        assert_eq!(part, &vec![r as f64 * 10.0]);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_and_scatters_in_both_modes() {
        for mode in MODES {
            let run = run_spmd_cfg(3, with_mode(mode), |comm| {
                // Every rank contributes [1, 2, 3, 4, 5, 6] scaled by rank+1.
                let scale = (comm.rank() + 1) as f64;
                let data: Vec<f64> = (1..=6).map(|x| x as f64 * scale).collect();
                comm.reduce_scatter_block(&data).unwrap()
            })
            .unwrap();
            // Sum of scales = 6; rank r gets elements [2r, 2r+1] summed.
            for (rank, out) in run.results.into_iter().enumerate() {
                let want: Vec<f64> = (0..2).map(|i| (2 * rank + i + 1) as f64 * 6.0).collect();
                assert_eq!(out, want, "{}", mode.name());
            }
        }
    }

    #[test]
    fn alltoall_transposes_messages() {
        let results = run_spmd(3, |comm| {
            let me = comm.rank() as f64;
            let outgoing: Vec<Vec<f64>> = (0..3).map(|d| vec![me * 10.0 + d as f64]).collect();
            comm.alltoall(outgoing).unwrap()
        });
        for (rank, incoming) in results.into_iter().enumerate() {
            for (src, msg) in incoming.into_iter().enumerate() {
                assert_eq!(msg, vec![src as f64 * 10.0 + rank as f64]);
            }
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        for mode in MODES {
            let run = run_spmd_cfg(1, with_mode(mode), |comm| {
                let mut v = vec![4.0];
                comm.allreduce_sum(&mut v).unwrap();
                comm.barrier().unwrap();
                let g = comm.gather(0, vec![1.0]).unwrap().unwrap();
                let ag = comm.allgather(vec![2.0]).unwrap();
                (v, g, ag)
            })
            .unwrap();
            let (v, g, ag) = &run.results[0];
            assert_eq!(v, &vec![4.0]);
            assert_eq!(g, &vec![vec![1.0]]);
            assert_eq!(ag, &vec![vec![2.0]]);
        }
    }

    #[test]
    fn barrier_completes_for_many_ranks() {
        for mode in MODES {
            let run = run_spmd_cfg(8, with_mode(mode), |comm| {
                for _ in 0..5 {
                    comm.barrier().unwrap();
                }
                true
            })
            .unwrap();
            assert!(run.results.into_iter().all(|x| x));
        }
    }

    #[test]
    fn modes_are_bitwise_identical_for_data_movement() {
        // gather and allgather move words without arithmetic: flat and
        // hierarchical must agree bit for bit, including signed zeros and
        // subnormals.
        let payload = |rank: usize| {
            vec![
                -0.0,
                f64::MIN_POSITIVE / 2.0,
                (rank as f64 + 1.0) / 3.0,
                1.0e-308,
            ]
        };
        let collect = |mode| {
            run_spmd_cfg(6, with_mode(mode), |comm| {
                let g = comm.gather(0, payload(comm.rank())).unwrap();
                let ag = comm.allgather(payload(comm.rank())).unwrap();
                (g, ag)
            })
            .unwrap()
            .results
        };
        let flat = collect(CollectiveMode::Flat);
        let hier = collect(CollectiveMode::Hierarchical);
        for (f, h) in flat.iter().zip(&hier) {
            let bits = |vs: &Vec<Vec<f64>>| -> Vec<u64> {
                vs.iter().flatten().map(|x| x.to_bits()).collect()
            };
            assert_eq!(f.0.is_some(), h.0.is_some());
            if let (Some(fg), Some(hg)) = (&f.0, &h.0) {
                assert_eq!(bits(fg), bits(hg));
            }
            assert_eq!(bits(&f.1), bits(&h.1));
        }
    }

    #[test]
    fn typed_payloads_ride_point_to_point() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send_payload(1, 5, (vec![u64::MAX, 7u64], vec![1.5, -0.0]))
                    .unwrap();
                None
            } else {
                Some(comm.recv_payload::<(Vec<u64>, Vec<f64>)>(0, 5).unwrap())
            }
        });
        let (meta, data) = results[1].clone().unwrap();
        assert_eq!(meta, vec![u64::MAX, 7]);
        assert_eq!(data[0], 1.5);
        assert!(data[1].is_sign_negative());
    }

    #[test]
    fn invalid_ranks_are_typed_errors() {
        run_spmd(2, |comm| {
            assert!(matches!(
                comm.send(9, 0, vec![1.0]),
                Err(CommError::InvalidRank { rank: 9, size: 2 })
            ));
            assert!(matches!(
                comm.recv(comm.rank(), 0),
                Err(CommError::SelfMessage { .. })
            ));
            assert!(matches!(
                comm.alltoall(vec![vec![0.0]; 5]),
                Err(CommError::InvalidArgument(_))
            ));
        });
    }

    #[test]
    fn message_faults_are_survived_and_counted() {
        for mode in MODES {
            for seed in [1u64, 2, 3] {
                let cfg = CommConfig {
                    mode,
                    fault: Some(FaultPlan::messages_only(seed)),
                    torus: None,
                };
                let run = run_spmd_cfg(4, cfg, |comm| {
                    let mut acc = vec![comm.rank() as f64];
                    comm.allreduce_sum(&mut acc).unwrap();
                    let g = comm.allgather(vec![comm.rank() as f64; 2]).unwrap();
                    (acc[0], g)
                })
                .unwrap();
                for (sum, g) in run.results {
                    assert_eq!(sum, 6.0, "{} seed {seed}", mode.name());
                    for (r, part) in g.iter().enumerate() {
                        assert_eq!(part, &vec![r as f64; 2]);
                    }
                }
                let stats = run.fault_stats.expect("plan active");
                // Across seeds and modes plenty of messages flow; at least
                // one seed must actually inject something.
                let _ = stats;
            }
        }
    }

    #[test]
    fn injected_drops_eventually_occur_and_recover() {
        // A chatty region under a high drop rate: statistics must show
        // real injections AND every transfer must still complete.
        let plan = FaultPlan {
            drop_p: 0.3,
            delay_p: 0.2,
            dup_p: 0.1,
            ..FaultPlan::messages_only(11)
        };
        let cfg = CommConfig {
            mode: CollectiveMode::Hierarchical,
            fault: Some(plan),
            torus: None,
        };
        let run = run_spmd_cfg(4, cfg, |comm| {
            let mut total = 0.0;
            for round in 0..10u64 {
                let g = comm
                    .allgather(vec![comm.rank() as f64 + round as f64])
                    .unwrap();
                total += g.iter().map(|v| v[0]).sum::<f64>();
            }
            total
        })
        .unwrap();
        let expect: f64 = (0..10).map(|r| (6 + 4 * r) as f64).sum();
        for t in run.results {
            assert_eq!(t, expect);
        }
        let (drops, delays, dups, retransmissions, _) = run.fault_stats.unwrap();
        assert!(drops + delays > 0, "faults must have fired");
        assert_eq!(
            retransmissions,
            drops + delays,
            "all parked traffic recovered"
        );
        let _ = dups;
    }

    #[test]
    fn stalled_rank_times_out_and_partial_gather_degrades() {
        // Force every non-root rank to stall: the root's strict recv gets
        // a typed timeout, and gather_partial reports the missing slots.
        let plan = FaultPlan {
            stall_p: 1.0,
            drop_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            max_attempts: 2,
            base_timeout: std::time::Duration::from_millis(5),
            ..FaultPlan::messages_only(0)
        };
        let cfg = CommConfig {
            mode: CollectiveMode::Flat,
            fault: Some(plan),
            torus: None,
        };
        let run = run_spmd_cfg(3, cfg, |comm| {
            if comm.stalled() {
                return (true, None);
            }
            let parts = comm.gather_partial(0, vec![comm.rank() as f64]).unwrap();
            (false, parts)
        })
        .unwrap();
        let (stalled0, parts) = &run.results[0];
        assert!(!stalled0, "rank 0 never stalls");
        let parts = parts.as_ref().expect("root sees partial result");
        assert_eq!(parts[0], Some(vec![0.0]));
        assert_eq!(parts[1], None, "stalled rank's slot degrades to None");
        assert_eq!(parts[2], None);
        assert!(run.results[1].0 && run.results[2].0, "others stalled");
    }

    #[test]
    fn strict_gather_surfaces_timeout_for_stalled_peer() {
        let plan = FaultPlan {
            stall_p: 1.0,
            drop_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            max_attempts: 2,
            base_timeout: std::time::Duration::from_millis(5),
            ..FaultPlan::messages_only(0)
        };
        let cfg = CommConfig {
            mode: CollectiveMode::Flat,
            fault: Some(plan),
            torus: None,
        };
        let run = run_spmd_cfg(2, cfg, |comm| {
            if comm.stalled() {
                return None;
            }
            Some(comm.gather(0, vec![1.0]))
        })
        .unwrap();
        match run.results[0].as_ref().unwrap() {
            Err(CommError::Timeout { rank: 1, .. }) => {}
            other => panic!("expected timeout for rank 1, got {other:?}"),
        }
    }

    #[test]
    fn fault_schedules_replay_deterministically() {
        let snapshot = |seed: u64| {
            let cfg = CommConfig {
                mode: CollectiveMode::Hierarchical,
                fault: Some(FaultPlan::messages_only(seed)),
                torus: None,
            };
            run_spmd_cfg(4, cfg, |comm| {
                let mut v = vec![comm.rank() as f64];
                comm.allreduce_sum(&mut v).unwrap();
                v[0]
            })
            .unwrap()
            .fault_stats
            .unwrap()
        };
        let (d1, dl1, du1, _, _) = snapshot(77);
        let (d2, dl2, du2, _, _) = snapshot(77);
        assert_eq!((d1, dl1, du1), (d2, dl2, du2), "same seed, same schedule");
    }

    #[test]
    fn frame_unframe_round_trips() {
        let entries = vec![
            (3usize, vec![1.0, -0.0, 5.5]),
            (0usize, Vec::new()),
            (7usize, vec![f64::MIN_POSITIVE]),
        ];
        let decoded = unframe(&frame(&entries));
        assert_eq!(decoded.len(), entries.len());
        for ((ra, va), (rb, vb)) in entries.iter().zip(&decoded) {
            assert_eq!(ra, rb);
            let bits = |v: &Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(va), bits(vb));
        }
    }
}
