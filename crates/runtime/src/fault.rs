//! Deterministic fault injection for the message-passing runtime.
//!
//! The harness models the failure modes a real interconnect exhibits —
//! lost packets, delayed packets, duplicated packets, and unresponsive
//! (stalled) ranks — *deterministically*: every decision is a pure
//! function of the plan seed and the message's `(from, to, sequence)`
//! coordinates, so a failing schedule replays exactly under the same
//! seed regardless of thread interleaving.
//!
//! Transport semantics mirror a sender-retransmit protocol without
//! modelling the acknowledgement traffic explicitly: a dropped or delayed
//! message is parked in the injector's vault; when the receiver's
//! [`recv`](crate::Comm::recv) attempt times out it asks the vault for
//! retransmissions of everything parked on that directed edge (exactly
//! what a NACK/timeout-driven resend would deliver), then retries with
//! exponential backoff. A message is therefore never lost permanently —
//! only late — unless the peer has genuinely stalled, in which case the
//! retry budget expires and the receive returns
//! [`CommError::Timeout`](crate::CommError::Timeout).

use crate::error::{CommError, CommResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A seeded, deterministic fault schedule plus the retry policy used to
/// survive it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Probability a message's first transmission is lost (recovered by
    /// retransmission after the receiver's first timeout).
    pub drop_p: f64,
    /// Probability a message is held back until the receiver times out
    /// once (late delivery rather than loss).
    pub delay_p: f64,
    /// Probability a message is delivered twice (the duplicate is
    /// discarded by the receiver's sequence filter).
    pub dup_p: f64,
    /// Probability a rank (other than rank 0, the coordinator) stalls for
    /// the whole SPMD region: it computes nothing and answers nothing.
    pub stall_p: f64,
    /// Receive attempts before a peer is declared unresponsive (≥ 1).
    pub max_attempts: usize,
    /// Timeout of the first receive attempt; each retry doubles it.
    pub base_timeout: Duration,
}

impl FaultPlan {
    /// A plan with moderate message-level faults and no stalls — the
    /// default for soak-testing the retry path.
    pub fn messages_only(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.10,
            delay_p: 0.10,
            dup_p: 0.05,
            stall_p: 0.0,
            max_attempts: 6,
            base_timeout: Duration::from_millis(10),
        }
    }

    /// A plan that additionally stalls ~1 in 8 non-root ranks, driving
    /// the graceful-degradation (work re-issue) path.
    pub fn with_stalls(seed: u64) -> Self {
        FaultPlan {
            stall_p: 0.125,
            ..Self::messages_only(seed)
        }
    }

    /// The plan selected by the `LIAIR_FAULT_SEED` environment variable
    /// (the CI fault matrix): `None` when unset or unparsable, otherwise
    /// [`FaultPlan::with_stalls`] under that seed. Delegates to
    /// [`crate::config::SeedConfig`] — serve jobs carry a per-job config
    /// instead of calling this.
    pub fn from_env() -> Option<Self> {
        crate::config::SeedConfig::from_env().fault_plan()
    }

    /// Check the plan is executable: probabilities in `[0, 1]`, their sum
    /// per message ≤ 1, and a non-zero retry budget.
    pub fn validate(&self) -> CommResult<()> {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("delay_p", self.delay_p),
            ("dup_p", self.dup_p),
            ("stall_p", self.stall_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CommError::InvalidArgument(format!(
                    "{name} = {p} outside [0, 1]"
                )));
            }
        }
        if self.drop_p + self.delay_p + self.dup_p > 1.0 {
            return Err(CommError::InvalidArgument(
                "drop_p + delay_p + dup_p > 1".into(),
            ));
        }
        if self.max_attempts == 0 {
            return Err(CommError::InvalidArgument("max_attempts = 0".into()));
        }
        Ok(())
    }

    /// Timeout of receive attempt `k` (0-based): exponential backoff,
    /// capped at 1 s per attempt.
    pub fn attempt_timeout(&self, k: usize) -> Duration {
        let factor = 1u32 << k.min(10) as u32;
        (self.base_timeout * factor).min(Duration::from_secs(1))
    }
}

/// What the injector decided for one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Lose the first transmission (recover via retransmission).
    Drop,
    /// Hold until the receiver's first timeout.
    Delay,
    /// Deliver twice.
    Duplicate,
}

/// Counters of everything the injector did (monotone; read after a run).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Messages whose first transmission was dropped.
    pub drops: AtomicUsize,
    /// Messages delayed past the receiver's first timeout.
    pub delays: AtomicUsize,
    /// Messages delivered twice.
    pub dups: AtomicUsize,
    /// Parked messages handed back as retransmissions.
    pub retransmissions: AtomicUsize,
    /// Receive attempts that timed out and retried.
    pub retries: AtomicUsize,
}

impl FaultStats {
    /// Snapshot as plain counts `(drops, delays, dups, retransmissions,
    /// retries)`.
    pub fn snapshot(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.drops.load(Ordering::Relaxed),
            self.delays.load(Ordering::Relaxed),
            self.dups.load(Ordering::Relaxed),
            self.retransmissions.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
        )
    }
}

/// A parked (dropped or delayed) message awaiting retransmission.
pub(crate) type Envelope = (u64, u64, Vec<f64>); // (tag, seq, data)

/// The shared per-region fault state: the vault of parked messages and
/// the statistics, consulted by every rank's transport.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Parked messages per directed edge `(from, to)`.
    vault: Mutex<HashMap<(usize, usize), VecDeque<Envelope>>>,
    /// Event counters.
    pub stats: FaultStats,
}

/// SplitMix64 step — the standard 64-bit finalizer, kept local so the
/// runtime does not grow a dependency for three lines of mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform `[0, 1)` double.
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Build the injector for a validated plan.
    pub fn new(plan: FaultPlan) -> CommResult<Self> {
        plan.validate()?;
        Ok(FaultInjector {
            plan,
            vault: Mutex::new(HashMap::new()),
            stats: FaultStats::default(),
        })
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `rank` stalls for the whole region. Deterministic in
    /// `(seed, rank)`; rank 0 — the coordinator that reassembles results
    /// and re-issues a stalled rank's work — never stalls (the model's
    /// stand-in for the job controller surviving member failures).
    pub fn stalled(&self, rank: usize) -> bool {
        if rank == 0 || self.plan.stall_p <= 0.0 {
            return false;
        }
        u01(mix(self.plan.seed ^ 0x57A1_1ED0 ^ (rank as u64) << 16)) < self.plan.stall_p
    }

    /// Decide the fate of transmission `seq` on edge `(from, to)`.
    /// Deterministic in `(seed, from, to, seq)` — independent of thread
    /// scheduling.
    pub fn verdict(&self, from: usize, to: usize, seq: u64) -> Verdict {
        let h = mix(self
            .plan
            .seed
            .wrapping_mul(0x2545F4914F6CDD1D)
            .wrapping_add((from as u64) << 40 | (to as u64) << 20)
            .wrapping_add(seq));
        let x = u01(h);
        if x < self.plan.drop_p {
            Verdict::Drop
        } else if x < self.plan.drop_p + self.plan.delay_p {
            Verdict::Delay
        } else if x < self.plan.drop_p + self.plan.delay_p + self.plan.dup_p {
            Verdict::Duplicate
        } else {
            Verdict::Deliver
        }
    }

    /// Park a dropped/delayed message for later retransmission.
    pub(crate) fn park(&self, from: usize, to: usize, env: Envelope, verdict: Verdict) {
        match verdict {
            Verdict::Drop => self.stats.drops.fetch_add(1, Ordering::Relaxed),
            Verdict::Delay => self.stats.delays.fetch_add(1, Ordering::Relaxed),
            _ => unreachable!("only dropped/delayed messages are parked"),
        };
        self.vault
            .lock()
            .entry((from, to))
            .or_default()
            .push_back(env);
    }

    /// Retransmit everything parked on edge `(from, to)` — the effect of
    /// the receiver's timeout-driven NACK reaching the sender.
    pub(crate) fn retransmit(&self, from: usize, to: usize) -> Vec<Envelope> {
        let mut vault = self.vault.lock();
        let out: Vec<Envelope> = vault
            .get_mut(&(from, to))
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        self.stats
            .retransmissions
            .fetch_add(out.len(), Ordering::Relaxed);
        out
    }

    /// Record a duplicate delivery.
    pub(crate) fn note_dup(&self) {
        self.stats.dups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a timed-out receive attempt that will retry.
    pub(crate) fn note_retry(&self) {
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::messages_only(7)).unwrap();
        let b = FaultInjector::new(FaultPlan::messages_only(7)).unwrap();
        let c = FaultInjector::new(FaultPlan::messages_only(8)).unwrap();
        let va: Vec<Verdict> = (0..200).map(|s| a.verdict(1, 2, s)).collect();
        let vb: Vec<Verdict> = (0..200).map(|s| b.verdict(1, 2, s)).collect();
        let vc: Vec<Verdict> = (0..200).map(|s| c.verdict(1, 2, s)).collect();
        assert_eq!(va, vb, "same seed must replay identically");
        assert_ne!(va, vc, "different seeds must differ somewhere");
    }

    #[test]
    fn fault_rates_match_probabilities_roughly() {
        let inj = FaultInjector::new(FaultPlan::messages_only(42)).unwrap();
        let n = 20_000;
        let mut drops = 0;
        for s in 0..n {
            if inj.verdict(0, 1, s) == Verdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn rank_zero_never_stalls() {
        for seed in 0..50 {
            let inj = FaultInjector::new(FaultPlan::with_stalls(seed)).unwrap();
            assert!(!inj.stalled(0));
        }
        // And with a generous stall probability some other rank does.
        let plan = FaultPlan {
            stall_p: 0.9,
            ..FaultPlan::messages_only(3)
        };
        let inj = FaultInjector::new(plan).unwrap();
        assert!((1..16).any(|r| inj.stalled(r)));
    }

    #[test]
    fn park_and_retransmit_round_trip() {
        let inj = FaultInjector::new(FaultPlan::messages_only(1)).unwrap();
        inj.park(2, 0, (9, 0, vec![1.0]), Verdict::Drop);
        inj.park(2, 0, (9, 1, vec![2.0]), Verdict::Delay);
        inj.park(1, 0, (9, 0, vec![3.0]), Verdict::Drop);
        let got = inj.retransmit(2, 0);
        assert_eq!(got.len(), 2, "only the (2, 0) edge drains");
        assert_eq!(inj.retransmit(2, 0).len(), 0, "vault drained");
        assert_eq!(inj.retransmit(1, 0).len(), 1);
        let (d, dl, _, rt, _) = inj.stats.snapshot();
        assert_eq!((d, dl, rt), (2, 1, 3));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut p = FaultPlan::messages_only(0);
        p.drop_p = 1.5;
        assert!(FaultInjector::new(p).is_err());
        let mut p = FaultPlan::messages_only(0);
        p.max_attempts = 0;
        assert!(FaultInjector::new(p).is_err());
        let mut p = FaultPlan::messages_only(0);
        p.drop_p = 0.5;
        p.delay_p = 0.4;
        p.dup_p = 0.3;
        assert!(FaultInjector::new(p).is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = FaultPlan::messages_only(0);
        assert!(p.attempt_timeout(1) > p.attempt_timeout(0));
        assert!(p.attempt_timeout(30) <= Duration::from_secs(1));
    }

    #[test]
    fn env_plan_parses_seed() {
        // Only exercises the parser (env reads are process-global; the
        // variable is restored immediately).
        let old = std::env::var("LIAIR_FAULT_SEED").ok();
        std::env::set_var("LIAIR_FAULT_SEED", " 99 ");
        let plan = FaultPlan::from_env();
        match old {
            Some(v) => std::env::set_var("LIAIR_FAULT_SEED", v),
            None => std::env::remove_var("LIAIR_FAULT_SEED"),
        }
        let plan = plan.expect("seed should parse");
        assert_eq!(plan.seed, 99);
        assert!(plan.stall_p > 0.0);
    }
}
