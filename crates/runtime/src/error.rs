//! Typed errors of the communication runtime.
//!
//! Every fallible [`crate::Comm`] operation returns [`CommResult`]; the
//! variants distinguish the failure the caller can act on (a peer timing
//! out after the retry budget — re-issue its work) from programming errors
//! surfaced as typed values instead of panics (rank out of range, length
//! mismatch in a collective).

use std::fmt;

/// Everything that can go wrong in a point-to-point transfer or a
/// collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive from `rank` exhausted its retry budget: `attempts`
    /// tries, each with exponential backoff, saw no message. Under the
    /// fault model this is the signature of a stalled peer; the caller
    /// (e.g. the exchange engine) degrades gracefully by re-issuing the
    /// rank's work to survivors.
    Timeout {
        /// The unresponsive peer.
        rank: usize,
        /// Receive attempts made before giving up.
        attempts: usize,
    },
    /// The peer's endpoint is gone (its thread exited or panicked).
    Disconnected {
        /// The vanished peer.
        rank: usize,
    },
    /// A rank id outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// Self-send / self-receive, which the mailbox transport does not
    /// route (local data never enters the network).
    SelfMessage {
        /// This rank.
        rank: usize,
    },
    /// A collective saw a payload whose length disagrees with the other
    /// participants (e.g. allreduce over differently-sized vectors).
    LengthMismatch {
        /// Length this rank expected.
        expected: usize,
        /// Length that arrived.
        got: usize,
    },
    /// A collective precondition failed (documented per operation), e.g.
    /// reduce-scatter over a vector not divisible by the rank count.
    InvalidArgument(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { rank, attempts } => {
                write!(f, "rank {rank} unresponsive after {attempts} attempts")
            }
            CommError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
            CommError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            CommError::SelfMessage { rank } => {
                write!(f, "rank {rank} attempted a self-send/receive")
            }
            CommError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "collective length mismatch: expected {expected}, got {got}"
                )
            }
            CommError::InvalidArgument(msg) => write!(f, "invalid collective argument: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias of every fallible communication operation.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::Timeout {
            rank: 3,
            attempts: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5'), "{s}");
        assert!(CommError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("9"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CommError::Disconnected { rank: 1 },
            CommError::Disconnected { rank: 1 }
        );
        assert_ne!(
            CommError::Timeout {
                rank: 1,
                attempts: 2
            },
            CommError::Timeout {
                rank: 1,
                attempts: 3
            }
        );
    }
}
