//! Topology-aware communication: ranks mapped onto the BG/Q 5-D torus.
//!
//! [`TorusComm`] wraps any [`Comm`] and charges every transfer to a shared
//! [`TrafficLog`]: a demand set of `(src, dst, bytes)` records that is
//! routed after the region with `liair-bgq`'s dimension-ordered router.
//! That closes the loop between the *executed* algorithm and the *modeled*
//! machine — the hop counts and per-link loads of the real message
//! pattern (flat root gather vs binomial tree vs recursive doubling) feed
//! the BSP cost model, instead of an assumed analytic pattern.

use crate::comm::{CollectiveMode, Comm};
use crate::error::CommResult;
use liair_bgq::routing::{route_traffic, LinkLoads};
use liair_bgq::{MachineConfig, Torus5D};
use parking_lot::Mutex;

/// Fit `nranks` onto a BG/Q-style torus (near-balanced extents, E = 2 for
/// even counts) — the default rank→node map of [`crate::run_spmd_cfg`]
/// when the caller does not pin a partition shape.
pub fn fit_torus(nranks: usize) -> Torus5D {
    MachineConfig::bgq_nodes(nranks).torus
}

/// The traffic a communication region put on the wire: every point-to-point
/// transfer (collectives decompose into their constituent messages) as a
/// routable demand.
#[derive(Debug)]
pub struct TrafficLog {
    torus: Torus5D,
    demands: Mutex<Vec<(usize, usize, f64)>>,
}

impl TrafficLog {
    /// An empty ledger over a torus.
    pub fn new(torus: Torus5D) -> Self {
        TrafficLog {
            torus,
            demands: Mutex::new(Vec::new()),
        }
    }

    /// The torus the ranks are mapped onto.
    pub fn torus(&self) -> &Torus5D {
        &self.torus
    }

    /// Charge one message to the ledger.
    pub fn record(&self, src: usize, dst: usize, bytes: f64) {
        self.demands.lock().push((src, dst, bytes));
    }

    /// Snapshot of the recorded demands.
    pub fn demands(&self) -> Vec<(usize, usize, f64)> {
        self.demands.lock().clone()
    }

    /// Number of messages recorded.
    pub fn messages(&self) -> usize {
        self.demands.lock().len()
    }

    /// Total payload bytes injected (before hop multiplication).
    pub fn total_bytes(&self) -> f64 {
        self.demands.lock().iter().map(|&(_, _, b)| b).sum()
    }

    /// Mean hop count of the recorded messages under dimension-ordered
    /// routing (0 when nothing was recorded).
    pub fn mean_hops(&self) -> f64 {
        let demands = self.demands.lock();
        if demands.is_empty() {
            return 0.0;
        }
        let total: usize = demands.iter().map(|&(s, d, _)| self.torus.hops(s, d)).sum();
        total as f64 / demands.len() as f64
    }

    /// Route the demand set and return the per-link loads (max load,
    /// congestion factor, …).
    pub fn route(&self) -> LinkLoads {
        route_traffic(&self.torus, &self.demands.lock())
    }

    /// Modeled wall-clock of this traffic on a machine: serialization of
    /// the hottest link, plus per-message software latency amortized over
    /// the ranks injecting concurrently, plus the wire latency of the mean
    /// route. A coarse contention-aware estimate — the point is the
    /// *relative* cost of message patterns, which is dominated by the max
    /// link load the router finds.
    pub fn modeled_comm_time(&self, machine: &MachineConfig) -> f64 {
        let loads = self.route();
        let ranks = self.torus.nodes().max(1) as f64;
        let msgs = self.messages() as f64;
        loads.max() / machine.link_bandwidth
            + machine.sw_latency * (msgs / ranks).ceil()
            + machine.hop_latency * self.mean_hops()
    }
}

/// A [`Comm`] that routes through the torus model: point-to-point behavior
/// is delegated to the wrapped communicator, and every send is charged to
/// the [`TrafficLog`] at its payload size (8 bytes per `f64` word).
pub struct TorusComm<'a, C: Comm> {
    inner: &'a C,
    log: &'a TrafficLog,
}

impl<'a, C: Comm> TorusComm<'a, C> {
    /// Wrap `inner`, charging traffic to `log`. The log's torus must have
    /// one node per rank (checked by [`crate::run_spmd_cfg`]).
    pub fn new(inner: &'a C, log: &'a TrafficLog) -> Self {
        TorusComm { inner, log }
    }

    /// The traffic ledger this communicator charges.
    pub fn log(&self) -> &TrafficLog {
        self.log
    }
}

impl<C: Comm> Comm for TorusComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn mode(&self) -> CollectiveMode {
        self.inner.mode()
    }

    fn next_epoch(&self) -> u64 {
        self.inner.next_epoch()
    }

    fn stalled(&self) -> bool {
        self.inner.stalled()
    }

    fn peer_stalled(&self, rank: usize) -> bool {
        self.inner.peer_stalled(rank)
    }

    fn send(&self, to: usize, tag: u64, data: Vec<f64>) -> CommResult<()> {
        self.log
            .record(self.inner.rank(), to, (data.len() * 8) as f64);
        self.inner.send(to, tag, data)
    }

    fn recv(&self, from: usize, tag: u64) -> CommResult<Vec<f64>> {
        self.inner.recv(from, tag)
    }

    fn try_recv(&self, from: usize, tag: u64) -> CommResult<Option<Vec<f64>>> {
        self.inner.try_recv(from, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_spmd_cfg, CommConfig};

    fn cfg(nranks: usize, mode: CollectiveMode) -> CommConfig {
        CommConfig {
            mode,
            fault: None,
            torus: Some(fit_torus(nranks)),
        }
    }

    #[test]
    fn fit_torus_matches_rank_count() {
        for n in [1, 2, 3, 5, 8, 32, 100] {
            assert_eq!(fit_torus(n).nodes(), n, "n = {n}");
        }
    }

    #[test]
    fn ledger_accounts_every_sent_word() {
        let n = 4;
        let run = run_spmd_cfg(n, cfg(n, CollectiveMode::Flat), |comm| {
            comm.gather(0, vec![comm.rank() as f64; 3]).unwrap();
        })
        .unwrap();
        let log = run.traffic.expect("torus configured");
        // Flat gather: ranks 1..n each send one 3-word message to root.
        assert_eq!(log.messages(), n - 1);
        assert_eq!(log.total_bytes(), ((n - 1) * 3 * 8) as f64);
        assert!(log.mean_hops() >= 1.0);
        assert!(log.route().total() > 0.0);
    }

    #[test]
    fn hierarchical_gather_shrinks_the_hottest_edge() {
        // With 8 ranks, the flat gather concentrates 7 messages on the
        // root's links; the binomial tree spreads them over log₂ 8 rounds.
        let n = 8;
        let payload = vec![1.0; 64];
        let traffic = |mode| {
            let data = payload.clone();
            run_spmd_cfg(n, cfg(n, mode), move |comm| {
                comm.gather(0, data.clone()).unwrap();
            })
            .unwrap()
            .traffic
            .unwrap()
        };
        let flat = traffic(CollectiveMode::Flat);
        let hier = traffic(CollectiveMode::Hierarchical);
        // Tree: every non-root sends exactly once, same message count…
        assert_eq!(flat.messages(), n - 1);
        assert_eq!(hier.messages(), n - 1);
        // …but the flat pattern's root in-degree shows up as congestion.
        let m = MachineConfig::bgq_nodes(n);
        assert!(
            hier.modeled_comm_time(&m) <= flat.modeled_comm_time(&m) * 1.5,
            "hier {} vs flat {}",
            hier.modeled_comm_time(&m),
            flat.modeled_comm_time(&m)
        );
    }

    #[test]
    fn modeled_time_is_positive_and_scales_with_bytes() {
        let t = fit_torus(8);
        let log = TrafficLog::new(t);
        log.record(0, 5, 1024.0);
        log.record(3, 6, 2048.0);
        let m = MachineConfig::bgq_nodes(8);
        let t1 = log.modeled_comm_time(&m);
        assert!(t1 > 0.0);
        log.record(0, 5, 1.0e9);
        assert!(log.modeled_comm_time(&m) > t1 * 100.0);
    }
}
