//! Integral-direct Coulomb (J) and exchange (K) matrix builds.
//!
//! `J_{μν} = Σ_{λσ} (μν|λσ) D_{λσ}` and `K_{μν} = Σ_{λσ} (μλ|νσ) D_{λσ}`.
//!
//! The build exploits the full 8-fold permutational symmetry: shell
//! quartets are enumerated canonically (`sa ≥ sb`, `sc ≥ sd`,
//! `pair(sa,sb) ≥ pair(sc,sd)`), Schwarz-screened, computed once, and each
//! canonical AO element is scattered into J and K over its (deduplicated)
//! permutation orbit. Parallelism is rayon over bra shells with per-thread
//! accumulators.

use crate::eri::{schwarz_matrix_with, EriEngine, EriScratch};
use liair_basis::shell::ncart;
use liair_basis::Basis;
use liair_math::Mat;
use rayon::prelude::*;

/// Build `(J, K)` for a symmetric AO density matrix. `screen` is the
/// Schwarz threshold below which quartets are skipped; `0.0` disables
/// screening.
pub fn build_jk(basis: &Basis, density: &Mat, screen: f64) -> (Mat, Mat) {
    let engine = EriEngine::new(basis);
    build_jk_with(&engine, density, screen)
}

/// Caches the integral engine and Schwarz bounds so repeated Fock builds
/// (every SCF iteration) pay the setup cost once.
pub struct JkBuilder<'a> {
    engine: EriEngine<'a>,
    schwarz: Mat,
}

impl<'a> JkBuilder<'a> {
    /// Prepare for a basis.
    pub fn new(basis: &'a Basis) -> Self {
        let engine = EriEngine::new(basis);
        let schwarz = schwarz_matrix_with(&engine);
        Self { engine, schwarz }
    }

    /// Build `(J, K)` for a density.
    pub fn build(&self, density: &Mat, screen: f64) -> (Mat, Mat) {
        build_jk_inner(&self.engine, &self.schwarz, density, screen, None)
    }

    /// As [`Self::build`], additionally weighting the Schwarz bound by the
    /// largest density element a quartet can touch: quartets with
    /// `q_ab·q_cd·max|D|_block < screen` are skipped. For a full density
    /// this matches [`Self::build`] to the screening tolerance; the payoff
    /// is **difference densities** (`ΔD = D_n − D_{n−1}` of consecutive
    /// SCF iterations), which shrink toward convergence and let the
    /// screening drop almost every quartet — the standard incremental
    /// direct-SCF trick.
    pub fn build_density_screened(&self, density: &Mat, screen: f64) -> (Mat, Mat) {
        let dmax = shell_pair_density_max(self.engine.basis(), density);
        build_jk_inner(&self.engine, &self.schwarz, density, screen, Some(&dmax))
    }
}

/// Per-shell-pair `max |D|` over the corresponding AO block.
fn shell_pair_density_max(basis: &Basis, density: &Mat) -> Mat {
    let nsh = basis.shells.len();
    let mut m = Mat::zeros(nsh, nsh);
    for sa in 0..nsh {
        let (oa, na) = (basis.shell_offsets[sa], ncart(basis.shells[sa].l));
        for sb in 0..nsh {
            let (ob, nb) = (basis.shell_offsets[sb], ncart(basis.shells[sb].l));
            let mut mx = 0.0f64;
            for i in oa..oa + na {
                for j in ob..ob + nb {
                    mx = mx.max(density[(i, j)].abs());
                }
            }
            m[(sa, sb)] = mx;
        }
    }
    m
}

/// As [`build_jk`] but reusing a prepared [`EriEngine`].
pub fn build_jk_with(engine: &EriEngine<'_>, density: &Mat, screen: f64) -> (Mat, Mat) {
    let q = schwarz_matrix_with(engine);
    build_jk_inner(engine, &q, density, screen, None)
}

fn build_jk_inner(
    engine: &EriEngine<'_>,
    q: &Mat,
    density: &Mat,
    screen: f64,
    dmax: Option<&Mat>,
) -> (Mat, Mat) {
    let basis = engine.basis();
    let n = basis.nao();
    assert_eq!(density.nrows(), n);
    assert_eq!(density.ncols(), n);
    let nsh = basis.shells.len();
    let pair_idx = |a: usize, b: usize| a * (a + 1) / 2 + b; // requires a ≥ b

    let (j, k) = (0..nsh)
        .into_par_iter()
        .map_init(
            || (EriScratch::default(), Vec::new()),
            |(scratch, block), sa| {
                let mut jloc = Mat::zeros(n, n);
                let mut kloc = Mat::zeros(n, n);
                for sb in 0..=sa {
                    let qab = q[(sa, sb)];
                    let ab = pair_idx(sa, sb);
                    for sc in 0..=sa {
                        let sd_max = if sc == sa { sb } else { sc };
                        for sd in 0..=sd_max {
                            debug_assert!(pair_idx(sc, sd) <= ab);
                            let bound = qab * q[(sc, sd)];
                            // Density weighting covers every block the
                            // quartet reads through J (D_ab, D_cd) or K
                            // (the four cross pairings).
                            let weight = match dmax {
                                None => 1.0,
                                Some(dm) => dm[(sa, sb)]
                                    .max(dm[(sc, sd)])
                                    .max(dm[(sa, sc)])
                                    .max(dm[(sa, sd)])
                                    .max(dm[(sb, sc)])
                                    .max(dm[(sb, sd)]),
                            };
                            if bound * weight < screen {
                                continue;
                            }
                            engine.shell_quartet_into(sa, sb, sc, sd, scratch, block);
                            scatter_block(
                                basis, density, &mut jloc, &mut kloc, block, sa, sb, sc, sd,
                            );
                        }
                    }
                }
                (jloc, kloc)
            },
        )
        .reduce(
            || (Mat::zeros(n, n), Mat::zeros(n, n)),
            |(mut ja, mut ka), (jb, kb)| {
                ja.axpy(1.0, &jb);
                ka.axpy(1.0, &kb);
                (ja, ka)
            },
        );
    (j, k)
}

/// Scatter one computed shell-quartet block into J/K accumulators using
/// per-element canonical filtering plus orbit deduplication.
#[allow(clippy::too_many_arguments)]
fn scatter_block(
    basis: &Basis,
    density: &Mat,
    jloc: &mut Mat,
    kloc: &mut Mat,
    block: &[f64],
    sa: usize,
    sb: usize,
    sc: usize,
    sd: usize,
) {
    let (oa, ob, oc, od) = (
        basis.shell_offsets[sa],
        basis.shell_offsets[sb],
        basis.shell_offsets[sc],
        basis.shell_offsets[sd],
    );
    let (na, nb, nc, nd) = (
        ncart(basis.shells[sa].l),
        ncart(basis.shells[sb].l),
        ncart(basis.shells[sc].l),
        ncart(basis.shells[sd].l),
    );
    // Component-level canonical filters apply only where shells coincide —
    // that is exactly where the 8-fold orbit folds back into this block.
    let same_bra = sa == sb;
    let same_ket = sc == sd;
    let same_pairs = (sa, sb) == (sc, sd);
    for ca in 0..na {
        let i = oa + ca;
        for cb in 0..nb {
            let jj = ob + cb;
            if same_bra && cb > ca {
                continue;
            }
            for cc in 0..nc {
                let kk = oc + cc;
                for cd in 0..nd {
                    let ll = od + cd;
                    if same_ket && cd > cc {
                        continue;
                    }
                    if same_pairs && (cc, cd) > (ca, cb) {
                        continue;
                    }
                    let v = block[((ca * nb + cb) * nc + cc) * nd + cd];
                    if v == 0.0 {
                        continue;
                    }
                    // Deduplicated permutation orbit of (i j | k l).
                    let candidates = [
                        (i, jj, kk, ll),
                        (jj, i, kk, ll),
                        (i, jj, ll, kk),
                        (jj, i, ll, kk),
                        (kk, ll, i, jj),
                        (ll, kk, i, jj),
                        (kk, ll, jj, i),
                        (ll, kk, jj, i),
                    ];
                    let mut seen: [(usize, usize, usize, usize); 8] = [(usize::MAX, 0, 0, 0); 8];
                    let mut nseen = 0;
                    for tup in candidates {
                        if seen[..nseen].contains(&tup) {
                            continue;
                        }
                        seen[nseen] = tup;
                        nseen += 1;
                        let (p, qx, r, s) = tup;
                        // Quartet read as (pq|rs):
                        jloc[(p, qx)] += v * density[(r, s)];
                        kloc[(p, r)] += v * density[(qx, s)];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eri::eri_tensor;
    use liair_basis::systems;

    /// Reference J/K from the dense tensor.
    fn jk_reference(basis: &Basis, d: &Mat) -> (Mat, Mat) {
        let eri = eri_tensor(basis);
        let n = basis.nao();
        let mut j = Mat::zeros(n, n);
        let mut k = Mat::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut jv = 0.0;
                let mut kv = 0.0;
                for lam in 0..n {
                    for sig in 0..n {
                        jv += eri.get(mu, nu, lam, sig) * d[(lam, sig)];
                        kv += eri.get(mu, lam, nu, sig) * d[(lam, sig)];
                    }
                }
                j[(mu, nu)] = jv;
                k[(mu, nu)] = kv;
            }
        }
        (j, k)
    }

    fn test_density(n: usize, seed: u64) -> Mat {
        let mut rng = liair_math::rng::SplitMix64::new(seed);
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            for jj in 0..=i {
                let v = rng.next_f64() - 0.5;
                d[(i, jj)] = v;
                d[(jj, i)] = v;
            }
        }
        d
    }

    #[test]
    fn direct_matches_tensor_reference() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let d = test_density(basis.nao(), 5);
        let (j, k) = build_jk(&basis, &d, 0.0);
        let (jr, kr) = jk_reference(&basis, &d);
        assert!(
            j.sub(&jr).fro_norm() < 1e-10,
            "J err {}",
            j.sub(&jr).fro_norm()
        );
        assert!(
            k.sub(&kr).fro_norm() < 1e-10,
            "K err {}",
            k.sub(&kr).fro_norm()
        );
    }

    #[test]
    fn direct_matches_reference_on_lithium_system() {
        // Li2O2 exercises third-row-free but multi-shell atoms and the
        // canonical-orbit digestion across equal-shell corner cases.
        let mol = systems::li2o2();
        let basis = Basis::sto3g(&mol);
        let d = test_density(basis.nao(), 17);
        let (j, k) = build_jk(&basis, &d, 0.0);
        let (jr, kr) = jk_reference(&basis, &d);
        assert!(
            j.sub(&jr).fro_norm() < 1e-9,
            "J err {}",
            j.sub(&jr).fro_norm()
        );
        assert!(
            k.sub(&kr).fro_norm() < 1e-9,
            "K err {}",
            k.sub(&kr).fro_norm()
        );
    }

    #[test]
    fn screening_perturbs_little() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let d = test_density(basis.nao(), 8);
        let (j0, k0) = build_jk(&basis, &d, 0.0);
        let (j1, k1) = build_jk(&basis, &d, 1e-9);
        assert!(j0.sub(&j1).fro_norm() < 1e-6);
        assert!(k0.sub(&k1).fro_norm() < 1e-6);
    }

    #[test]
    fn density_screened_build_matches_plain_build() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let builder = JkBuilder::new(&basis);
        let d = test_density(basis.nao(), 3);
        let (j0, k0) = builder.build(&d, 1e-11);
        let (j1, k1) = builder.build_density_screened(&d, 1e-11);
        assert!(j0.sub(&j1).fro_norm() < 1e-8);
        assert!(k0.sub(&k1).fro_norm() < 1e-8);
        // A small difference density (the incremental-Fock workload):
        // screened result still matches the unscreened reference to the
        // tolerance, even though the density weighting now drops most
        // quartets.
        let delta = d.scale(1e-7);
        let (jd, kd) = builder.build_density_screened(&delta, 1e-11);
        let (jr, kr) = build_jk(&basis, &delta, 0.0);
        assert!(jd.sub(&jr).fro_norm() < 1e-9, "{}", jd.sub(&jr).fro_norm());
        assert!(kd.sub(&kr).fro_norm() < 1e-9, "{}", kd.sub(&kr).fro_norm());
    }

    #[test]
    fn j_and_k_symmetric_for_symmetric_density() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let d = test_density(basis.nao(), 2);
        let (j, k) = build_jk(&basis, &d, 0.0);
        assert!(j.asymmetry() < 1e-10);
        assert!(k.asymmetry() < 1e-10);
    }

    #[test]
    fn coulomb_energy_positive_for_psd_density() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let n = basis.nao();
        let c = [0.5, 0.5];
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                d[(i, j)] = c[i] * c[j];
            }
        }
        let (j, k) = build_jk(&basis, &d, 0.0);
        assert!(d.trace_product(&j) > 0.0);
        assert!(d.trace_product(&k) > 0.0);
    }
}
