//! Analytic nuclear gradients of the RHF energy.
//!
//! Derivatives of Gaussian integrals follow from the raise/lower identity
//! for a primitive with Cartesian power `i` along the differentiated axis:
//!
//! `∂χ/∂A_x = 2α·χ(i+1) − i·χ(i−1)`
//!
//! applied to unnormalized primitive integrals and contracted with the
//! *original* function's normalized coefficients. Nucleus-position
//! derivatives of the attraction integrals use
//! `∂R_{tuv}/∂C_x = −R_{t+1,u,v}`; the fourth ERI center comes from
//! translational invariance. The total gradient is the standard RHF
//! expression
//!
//! `dE/dX = Σ D·dH + Σ Γ·d(μν|λσ) − Σ W·dS + dE_nn`
//!
//! with `Γ = ½D_μν D_λσ − ¼D_μλ D_νσ` and the energy-weighted density
//! `W = 2Σ_i ε_i c_i c_iᵀ`. Everything is validated against finite
//! differences of the SCF energy in the tests.

use crate::hermite::{hermite_aux, ECoefs};
use liair_basis::shell::cart_components;
use liair_basis::{Basis, Molecule};
use liair_math::{Mat, Vec3};
use rayon::prelude::*;
use std::f64::consts::PI;

type Powers = (usize, usize, usize);

/// Unnormalized primitive overlap `⟨x^i y^j z^k e^{-a}| x^l y^m z^n e^{-b}⟩`.
fn overlap_prim(pa: Powers, pb: Powers, a: f64, b: f64, ra: Vec3, rb: Vec3) -> f64 {
    let p = a + b;
    let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
    let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
    let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
    let f = (PI / p).powf(1.5);
    ex.get(pa.0, pb.0, 0) * ey.get(pa.1, pb.1, 0) * ez.get(pa.2, pb.2, 0) * f
}

/// Unnormalized primitive kinetic integral.
fn kinetic_prim(pa: Powers, pb: Powers, a: f64, b: f64, ra: Vec3, rb: Vec3) -> f64 {
    let p = a + b;
    let ex = ECoefs::new(pa.0, pb.0 + 2, ra.x - rb.x, a, b);
    let ey = ECoefs::new(pa.1, pb.1 + 2, ra.y - rb.y, a, b);
    let ez = ECoefs::new(pa.2, pb.2 + 2, ra.z - rb.z, a, b);
    let sq = (PI / p).sqrt();
    let s1 = |i: usize, j: i64, e: &ECoefs| -> f64 {
        if j < 0 {
            0.0
        } else {
            e.get(i, j as usize, 0) * sq
        }
    };
    let t1 = |i: usize, j: usize, e: &ECoefs| -> f64 {
        let jj = j as i64;
        -2.0 * b * b * s1(i, jj + 2, e) + b * (2 * j + 1) as f64 * s1(i, jj, e)
            - 0.5 * (j * j.saturating_sub(1)) as f64 * s1(i, jj - 2, e)
    };
    let sx = s1(pa.0, pb.0 as i64, &ex);
    let sy = s1(pa.1, pb.1 as i64, &ey);
    let sz = s1(pa.2, pb.2 as i64, &ez);
    t1(pa.0, pb.0, &ex) * sy * sz + sx * t1(pa.1, pb.1, &ey) * sz + sx * sy * t1(pa.2, pb.2, &ez)
}

/// Unnormalized primitive nuclear attraction for a unit charge at `rc`
/// (no −Z factor), optionally with one extra Hermite order along an axis
/// (`raise_axis`) for the nucleus-position derivative.
#[allow(clippy::too_many_arguments)]
fn nuclear_prim(
    pa: Powers,
    pb: Powers,
    a: f64,
    b: f64,
    ra: Vec3,
    rb: Vec3,
    rc: Vec3,
    raise_axis: Option<usize>,
) -> f64 {
    let p = a + b;
    let big_p = (ra * a + rb * b) / p;
    let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
    let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
    let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
    let (mut tmax, mut umax, mut vmax) = (pa.0 + pb.0, pa.1 + pb.1, pa.2 + pb.2);
    match raise_axis {
        Some(0) => tmax += 1,
        Some(1) => umax += 1,
        Some(2) => vmax += 1,
        _ => {}
    }
    let r = hermite_aux(tmax, umax, vmax, p, big_p - rc);
    let at = |t: usize, u: usize, v: usize| (t * (umax + 1) + u) * (vmax + 1) + v;
    let (dt, du, dv) = match raise_axis {
        Some(0) => (1, 0, 0),
        Some(1) => (0, 1, 0),
        Some(2) => (0, 0, 1),
        _ => (0, 0, 0),
    };
    let mut acc = 0.0;
    for t in 0..=(pa.0 + pb.0) {
        for u in 0..=(pa.1 + pb.1) {
            for v in 0..=(pa.2 + pb.2) {
                acc += ex.get(pa.0, pb.0, t)
                    * ey.get(pa.1, pb.1, u)
                    * ez.get(pa.2, pb.2, v)
                    * r[at(t + dt, u + du, v + dv)];
            }
        }
    }
    acc * 2.0 * PI / p
}

/// Unnormalized primitive ERI `(pa pb | pc pd)`.
#[allow(clippy::too_many_arguments)]
fn eri_prim(
    pa: Powers,
    pb: Powers,
    pc: Powers,
    pd: Powers,
    a: f64,
    b: f64,
    c: f64,
    d: f64,
    ra: Vec3,
    rb: Vec3,
    rc: Vec3,
    rd: Vec3,
) -> f64 {
    let p = a + b;
    let q = c + d;
    let big_p = (ra * a + rb * b) / p;
    let big_q = (rc * c + rd * d) / q;
    let ex_ab = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
    let ey_ab = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
    let ez_ab = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
    let ex_cd = ECoefs::new(pc.0, pd.0, rc.x - rd.x, c, d);
    let ey_cd = ECoefs::new(pc.1, pd.1, rc.y - rd.y, c, d);
    let ez_cd = ECoefs::new(pc.2, pd.2, rc.z - rd.z, c, d);
    let alpha = p * q / (p + q);
    let (tm, um, vm) = (
        pa.0 + pb.0 + pc.0 + pd.0,
        pa.1 + pb.1 + pc.1 + pd.1,
        pa.2 + pb.2 + pc.2 + pd.2,
    );
    let aux = hermite_aux(tm, um, vm, alpha, big_p - big_q);
    let at = |t: usize, u: usize, v: usize| (t * (um + 1) + u) * (vm + 1) + v;
    let mut val = 0.0;
    for t in 0..=(pa.0 + pb.0) {
        let e1 = ex_ab.get(pa.0, pb.0, t);
        if e1 == 0.0 {
            continue;
        }
        for u in 0..=(pa.1 + pb.1) {
            let e2 = ey_ab.get(pa.1, pb.1, u);
            if e2 == 0.0 {
                continue;
            }
            for v in 0..=(pa.2 + pb.2) {
                let e3 = ez_ab.get(pa.2, pb.2, v);
                if e3 == 0.0 {
                    continue;
                }
                for tau in 0..=(pc.0 + pd.0) {
                    let f1 = ex_cd.get(pc.0, pd.0, tau);
                    if f1 == 0.0 {
                        continue;
                    }
                    for nu in 0..=(pc.1 + pd.1) {
                        let f2 = ey_cd.get(pc.1, pd.1, nu);
                        if f2 == 0.0 {
                            continue;
                        }
                        for ph in 0..=(pc.2 + pd.2) {
                            let f3 = ez_cd.get(pc.2, pd.2, ph);
                            if f3 == 0.0 {
                                continue;
                            }
                            let sign = if (tau + nu + ph) % 2 == 0 { 1.0 } else { -1.0 };
                            val += e1
                                * e2
                                * e3
                                * sign
                                * f1
                                * f2
                                * f3
                                * aux[at(t + tau, u + nu, v + ph)];
                        }
                    }
                }
            }
        }
    }
    2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt()) * val
}

/// Raise/lower the `axis` component of `powers` by +1 / −1 (−1 on a zero
/// power returns `None`).
fn raised(powers: Powers, axis: usize) -> Powers {
    let mut p = [powers.0, powers.1, powers.2];
    p[axis] += 1;
    (p[0], p[1], p[2])
}

fn lowered(powers: Powers, axis: usize) -> Option<Powers> {
    let mut p = [powers.0, powers.1, powers.2];
    if p[axis] == 0 {
        return None;
    }
    p[axis] -= 1;
    Some((p[0], p[1], p[2]))
}

/// Derivative of a contracted integral with respect to the *bra* center,
/// built from a primitive evaluator: `Σ_i c_i (2α_i·I(i+1) − i·I(i−1))`.
fn bra_derivative<I: Fn(Powers, f64) -> f64>(
    powers: Powers,
    axis: usize,
    prims: &[(f64, f64)], // (exponent, normalized coef)
    eval: I,
) -> f64 {
    let up = raised(powers, axis);
    let down = lowered(powers, axis);
    let low_factor = [powers.0, powers.1, powers.2][axis] as f64;
    prims
        .iter()
        .map(|&(alpha, coef)| {
            let mut v = 2.0 * alpha * eval(up, alpha);
            if let Some(dn) = down {
                v -= low_factor * eval(dn, alpha);
            }
            coef * v
        })
        .sum()
}

/// Per-AO contraction data used by the gradient loops.
struct AoData {
    atom: usize,
    center: Vec3,
    powers: Powers,
    prims: Vec<(f64, f64)>,
}

fn ao_table(basis: &Basis) -> Vec<AoData> {
    let mut out = Vec::with_capacity(basis.nao());
    for sh in &basis.shells {
        for powers in cart_components(sh.l) {
            let coefs = sh.normalized_coefs(powers);
            out.push(AoData {
                atom: sh.atom,
                center: sh.center,
                powers,
                prims: sh
                    .prims
                    .iter()
                    .zip(coefs)
                    .map(|(p, c)| (p.exp, c))
                    .collect(),
            });
        }
    }
    out
}

/// The analytic RHF nuclear gradient `dE/dR_A` for every atom.
///
/// `c` are the converged MO coefficients, `eps` the orbital energies,
/// `density` the closed-shell density matrix.
pub fn rhf_gradient(
    mol: &Molecule,
    basis: &Basis,
    c: &Mat,
    eps: &[f64],
    density: &Mat,
) -> Vec<Vec3> {
    let nao = basis.nao();
    let nocc = mol.nocc();
    let aos = ao_table(basis);
    let natoms = mol.natoms();

    // Energy-weighted density W = 2 Σ_i ε_i c_i c_iᵀ.
    let mut w = Mat::zeros(nao, nao);
    for mu in 0..nao {
        for nu in 0..nao {
            let mut acc = 0.0;
            for i in 0..nocc {
                acc += eps[i] * c[(mu, i)] * c[(nu, i)];
            }
            w[(mu, nu)] = 2.0 * acc;
        }
    }

    let mut grad = vec![Vec3::ZERO; natoms];

    // --- nuclear repulsion ---
    for a in 0..natoms {
        for b in 0..natoms {
            if a == b {
                continue;
            }
            let d = mol.atoms[a].pos - mol.atoms[b].pos;
            let r = d.norm();
            let zz = (mol.atoms[a].element.z() * mol.atoms[b].element.z()) as f64;
            grad[a] -= d * (zz / (r * r * r));
        }
    }

    // --- one-electron terms (bra derivative ×2 by symmetry) ---
    let nuclei: Vec<(f64, Vec3)> = mol
        .atoms
        .iter()
        .map(|at| (at.element.z() as f64, at.pos))
        .collect();
    let one_e: Vec<Vec3> = (0..nao)
        .into_par_iter()
        .map(|mu| {
            let amu = &aos[mu];
            let mut g = Vec3::ZERO;
            for (nu, anu) in aos.iter().enumerate() {
                let d_factor = density[(mu, nu)];
                let w_factor = w[(mu, nu)];
                if d_factor.abs() < 1e-14 && w_factor.abs() < 1e-14 {
                    continue;
                }
                for axis in 0..3 {
                    // dS and dT bra derivatives.
                    let ds = bra_derivative(amu.powers, axis, &amu.prims, |pw, alpha| {
                        anu.prims
                            .iter()
                            .map(|&(beta, cb)| {
                                cb * overlap_prim(
                                    pw, anu.powers, alpha, beta, amu.center, anu.center,
                                )
                            })
                            .sum()
                    });
                    let dt = bra_derivative(amu.powers, axis, &amu.prims, |pw, alpha| {
                        anu.prims
                            .iter()
                            .map(|&(beta, cb)| {
                                cb * kinetic_prim(
                                    pw, anu.powers, alpha, beta, amu.center, anu.center,
                                )
                            })
                            .sum()
                    });
                    let dv = bra_derivative(amu.powers, axis, &amu.prims, |pw, alpha| {
                        anu.prims
                            .iter()
                            .map(|&(beta, cb)| {
                                let mut acc = 0.0;
                                for &(z, rc) in &nuclei {
                                    acc -= z * nuclear_prim(
                                        pw, anu.powers, alpha, beta, amu.center, anu.center, rc,
                                        None,
                                    );
                                }
                                cb * acc
                            })
                            .sum()
                    });
                    // bra+ket symmetry: factor 2.
                    g[axis] += 2.0 * d_factor * (dt + dv) - 2.0 * w_factor * ds;
                }
            }
            g
        })
        .collect();
    for (mu, g) in one_e.iter().enumerate() {
        grad[aos[mu].atom] += *g;
    }

    // --- Hellmann–Feynman nuclear-position term of V ---
    // dV/dC_x = −Z·(2π/p)·Σ E·(−R_{t+1}) summed over (μ,ν); assembled per
    // nucleus via the raised-Hermite evaluation.
    let hf_terms: Vec<Vec3> = (0..nao)
        .into_par_iter()
        .map(|mu| {
            let amu = &aos[mu];
            let mut per_nucleus = vec![Vec3::ZERO; natoms];
            for (nu, anu) in aos.iter().enumerate() {
                let d_factor = density[(mu, nu)];
                if d_factor.abs() < 1e-14 {
                    continue;
                }
                for (ni, &(z, rc)) in nuclei.iter().enumerate() {
                    for axis in 0..3 {
                        let mut dv_dc = 0.0;
                        for &(alpha, ca) in &amu.prims {
                            for &(beta, cb) in &anu.prims {
                                // ∂R/∂C = −R_{+1}; the −Z flips once more.
                                dv_dc += ca
                                    * cb
                                    * z
                                    * nuclear_prim(
                                        amu.powers,
                                        anu.powers,
                                        alpha,
                                        beta,
                                        amu.center,
                                        anu.center,
                                        rc,
                                        Some(axis),
                                    );
                            }
                        }
                        per_nucleus[ni][axis] += d_factor * dv_dc;
                    }
                }
            }
            per_nucleus
        })
        .reduce(
            || vec![Vec3::ZERO; natoms],
            |mut acc, row| {
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
                acc
            },
        );
    for (a, v) in grad.iter_mut().zip(hf_terms) {
        *a += v;
    }

    // --- two-electron term ---
    // dE_2e/dX = Σ_{μνλσ} Γ_{μνλσ} d(μν|λσ)/dX with
    // Γ = ½ D_μν D_λσ − ¼ D_μλ D_νσ; center D from translational
    // invariance: dD = −(dA + dB + dC).
    let two_e: Vec<Vec3> = (0..nao)
        .into_par_iter()
        .map(|mu| {
            let amu = &aos[mu];
            let mut per_atom = vec![Vec3::ZERO; natoms];
            for (nu, anu) in aos.iter().enumerate() {
                for (lam, alam) in aos.iter().enumerate() {
                    for (sig, asig) in aos.iter().enumerate() {
                        let gamma = 0.5 * density[(mu, nu)] * density[(lam, sig)]
                            - 0.25 * density[(mu, lam)] * density[(nu, sig)];
                        if gamma.abs() < 1e-12 {
                            continue;
                        }
                        // Skip all-same-atom quartets (zero by invariance).
                        if amu.atom == anu.atom && anu.atom == alam.atom && alam.atom == asig.atom {
                            continue;
                        }
                        for axis in 0..3 {
                            // d/dA (bra-1 center).
                            let da = bra_derivative(amu.powers, axis, &amu.prims, |pw, alpha| {
                                contracted_eri_rest(pw, alpha, amu.center, anu, alam, asig)
                            });
                            // d/dB: swap roles of μ and ν.
                            let db = bra_derivative(anu.powers, axis, &anu.prims, |pw, beta| {
                                contracted_eri_rest_b(pw, beta, anu.center, amu, alam, asig)
                            });
                            // d/dC: differentiate the ket-1 (λ) function.
                            let dc = bra_derivative(alam.powers, axis, &alam.prims, |pw, gam| {
                                contracted_eri_rest_c(pw, gam, alam.center, amu, anu, asig)
                            });
                            let dd = -(da + db + dc);
                            per_atom[amu.atom][axis] += gamma * da;
                            per_atom[anu.atom][axis] += gamma * db;
                            per_atom[alam.atom][axis] += gamma * dc;
                            per_atom[asig.atom][axis] += gamma * dd;
                        }
                    }
                }
            }
            per_atom
        })
        .reduce(
            || vec![Vec3::ZERO; natoms],
            |mut acc, row| {
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
                acc
            },
        );
    for (a, v) in grad.iter_mut().zip(two_e) {
        *a += v;
    }

    grad
}

/// `(pw_μ | rest)` ERI with μ's primitive fixed, remaining three AOs
/// contracted.
fn contracted_eri_rest(
    pw: Powers,
    alpha: f64,
    ra: Vec3,
    anu: &AoData,
    alam: &AoData,
    asig: &AoData,
) -> f64 {
    let mut acc = 0.0;
    for &(b, cb) in &anu.prims {
        for &(cg, cc) in &alam.prims {
            for &(d, cd) in &asig.prims {
                acc += cb
                    * cc
                    * cd
                    * eri_prim(
                        pw,
                        anu.powers,
                        alam.powers,
                        asig.powers,
                        alpha,
                        b,
                        cg,
                        d,
                        ra,
                        anu.center,
                        alam.center,
                        asig.center,
                    );
            }
        }
    }
    acc
}

fn contracted_eri_rest_b(
    pw: Powers,
    beta: f64,
    rb: Vec3,
    amu: &AoData,
    alam: &AoData,
    asig: &AoData,
) -> f64 {
    let mut acc = 0.0;
    for &(a, ca) in &amu.prims {
        for &(cg, cc) in &alam.prims {
            for &(d, cd) in &asig.prims {
                acc += ca
                    * cc
                    * cd
                    * eri_prim(
                        amu.powers,
                        pw,
                        alam.powers,
                        asig.powers,
                        a,
                        beta,
                        cg,
                        d,
                        amu.center,
                        rb,
                        alam.center,
                        asig.center,
                    );
            }
        }
    }
    acc
}

fn contracted_eri_rest_c(
    pw: Powers,
    gam: f64,
    rc: Vec3,
    amu: &AoData,
    anu: &AoData,
    asig: &AoData,
) -> f64 {
    let mut acc = 0.0;
    for &(a, ca) in &amu.prims {
        for &(b, cb) in &anu.prims {
            for &(d, cd) in &asig.prims {
                acc += ca
                    * cb
                    * cd
                    * eri_prim(
                        amu.powers,
                        anu.powers,
                        pw,
                        asig.powers,
                        a,
                        b,
                        gam,
                        d,
                        amu.center,
                        anu.center,
                        rc,
                        asig.center,
                    );
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;

    /// Primitive derivative identities against finite differences.
    #[test]
    fn overlap_bra_derivative_matches_fd() {
        let pa = (1, 0, 0);
        let pb = (0, 1, 0);
        let (a, b) = (0.9, 1.3);
        let rb = Vec3::new(0.5, -0.2, 0.3);
        let h = 1e-6;
        for axis in 0..3 {
            let ra = Vec3::new(0.1, 0.4, -0.6);
            // contracted single-primitive "AO" with coefficient 1.
            let prims = vec![(a, 1.0)];
            let dv = bra_derivative(pa, axis, &prims, |pw, alpha| {
                overlap_prim(pw, pb, alpha, b, ra, rb)
            });
            let mut rp = ra;
            rp[axis] += h;
            let mut rm = ra;
            rm[axis] -= h;
            let fd = (overlap_prim(pa, pb, a, b, rp, rb) - overlap_prim(pa, pb, a, b, rm, rb))
                / (2.0 * h);
            assert!((dv - fd).abs() < 1e-7, "axis {axis}: {dv} vs {fd}");
        }
    }

    #[test]
    fn eri_prim_matches_engine_value() {
        // Cross-check the standalone primitive ERI against the production
        // engine on a single-primitive artificial basis.
        use liair_basis::shell::{Primitive, Shell};
        let ra = Vec3::ZERO;
        let rb = Vec3::new(1.1, 0.0, 0.0);
        let mk = |l: usize, center: Vec3, exp: f64| {
            Shell::new(l, 0, center, vec![Primitive { exp, coef: 1.0 }])
        };
        let basis = Basis::from_shells(vec![mk(0, ra, 0.8), mk(0, rb, 1.2)]);
        let engine_val = crate::eri::eri_shell_quartet(&basis, 0, 1, 0, 1)[0];
        // Unnormalized primitive × the four normalization constants.
        let n0 = liair_basis::shell::primitive_norm(0.8, (0, 0, 0));
        let n1 = liair_basis::shell::primitive_norm(1.2, (0, 0, 0));
        let prim = eri_prim(
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
            0.8,
            1.2,
            0.8,
            1.2,
            ra,
            rb,
            ra,
            rb,
        );
        let want = prim * n0 * n1 * n0 * n1;
        assert!((engine_val - want).abs() < 1e-12, "{engine_val} vs {want}");
    }

    #[test]
    fn h2_gradient_matches_finite_difference() {
        use liair_math::Vec3;
        let mol = systems::h2();
        let grad = scf_gradient(&mol);
        let fd = fd_gradient(&mol, 1e-4);
        for (atom, (g, f)) in grad.iter().zip(&fd).enumerate() {
            for axis in 0..3 {
                assert!(
                    (g[axis] - f[axis]).abs() < 5e-6,
                    "atom {atom} axis {axis}: {} vs {}",
                    g[axis],
                    f[axis]
                );
            }
        }
        // Forces are equal and opposite along the bond.
        assert!((grad[0].x + grad[1].x).abs() < 1e-8);
        let _ = Vec3::ZERO;
    }

    #[test]
    fn water_gradient_matches_finite_difference() {
        let mol = systems::water();
        let grad = scf_gradient(&mol);
        let fd = fd_gradient(&mol, 1e-4);
        for (atom, (g, f)) in grad.iter().zip(&fd).enumerate() {
            for axis in 0..3 {
                assert!(
                    (g[axis] - f[axis]).abs() < 5e-5,
                    "atom {atom} axis {axis}: {} vs {}",
                    g[axis],
                    f[axis]
                );
            }
        }
        // Translational invariance: gradients sum to zero.
        let total = grad.iter().fold(Vec3::ZERO, |acc, &g| acc + g);
        assert!(total.norm() < 1e-6, "net gradient {}", total.norm());
    }

    fn scf_energy(mol: &Molecule) -> f64 {
        // Minimal local RHF to avoid a circular dev-dependency on liair-scf.
        rhf_local(mol).0
    }

    fn scf_gradient(mol: &Molecule) -> Vec<Vec3> {
        let (_, basis, c, eps, d) = rhf_local(mol);
        rhf_gradient(mol, &basis, &c, &eps, &d)
    }

    /// Tiny self-contained RHF driver (core guess + damping) for the
    /// gradient tests.
    fn rhf_local(mol: &Molecule) -> (f64, Basis, Mat, Vec<f64>, Mat) {
        use liair_math::linalg::{eigh, sym_inv_sqrt};
        let basis = Basis::sto3g(mol);
        let n = basis.nao();
        let nocc = mol.nocc();
        let s = crate::overlap_matrix(&basis);
        let h = crate::kinetic_matrix(&basis).add(&crate::nuclear_matrix(&basis, mol));
        let x = sym_inv_sqrt(&s);
        let density_of = |c: &Mat| {
            let mut d = Mat::zeros(n, n);
            for mu in 0..n {
                for nu in 0..n {
                    let mut acc = 0.0;
                    for k in 0..nocc {
                        acc += c[(mu, k)] * c[(nu, k)];
                    }
                    d[(mu, nu)] = 2.0 * acc;
                }
            }
            d
        };
        let orbitals = |f: &Mat| {
            let fp = x.transpose().matmul(f).matmul(&x);
            let (eps, cp) = eigh(&fp);
            (eps, x.matmul(&cp))
        };
        let (_, c0) = orbitals(&h);
        let mut density = density_of(&c0);
        let mut energy = 0.0;
        let mut eps_out = vec![0.0; n];
        let mut c_out = Mat::zeros(n, n);
        for _ in 0..200 {
            let (j, k) = crate::build_jk(&basis, &density, 1e-12);
            let mut f = h.clone();
            f.axpy(1.0, &j);
            f.axpy(-0.5, &k);
            let e = density.trace_product(&h) + 0.5 * density.trace_product(&j)
                - 0.25 * density.trace_product(&k)
                + mol.nuclear_repulsion();
            let (eps, c) = orbitals(&f);
            density = density_of(&c);
            eps_out = eps;
            c_out = c;
            if (e - energy).abs() < 1e-11 {
                energy = e;
                break;
            }
            energy = e;
        }
        (energy, basis, c_out, eps_out, density)
    }

    fn fd_gradient(mol: &Molecule, h: f64) -> Vec<Vec3> {
        let mut out = vec![Vec3::ZERO; mol.natoms()];
        for atom in 0..mol.natoms() {
            for axis in 0..3 {
                let mut mp = mol.clone();
                mp.atoms[atom].pos[axis] += h;
                let mut mm = mol.clone();
                mm.atoms[atom].pos[axis] -= h;
                out[atom][axis] = (scf_energy(&mp) - scf_energy(&mm)) / (2.0 * h);
            }
        }
        out
    }
}
