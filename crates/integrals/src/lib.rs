//! # liair-integrals
//!
//! Analytic Gaussian integrals over contracted Cartesian shells, via the
//! McMurchie–Davidson scheme (Hermite expansion of Gaussian products plus
//! Boys-function auxiliaries):
//!
//! * [`hermite`] — the `E_t^{ij}` expansion coefficients and the
//!   `R_{tuv}` Coulomb auxiliary integrals;
//! * [`one_electron`] — overlap, kinetic, nuclear-attraction and dipole
//!   matrices;
//! * [`eri`] — two-electron repulsion integrals `(ab|cd)`, the full tensor
//!   for small systems, and the Schwarz screening bounds;
//! * [`fock`] — integral-direct Coulomb/exchange builds with Schwarz
//!   screening (the *molecular* exact-exchange reference that validates the
//!   condensed-phase grid pair-Poisson path in `liair-grid`).
//!
//! No integral library exists for Rust (`repro_why`), so this crate is the
//! from-scratch substrate. It is validated against the classic H₂/STO-3G
//! tables of Szabo & Ostlund in the unit tests.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod eri;
pub mod fock;
pub mod gradients;
pub mod hermite;
pub mod one_electron;

/// Internal shim so `hermite` can fill Boys values into a resized buffer
/// without re-importing across module privacy.
pub(crate) fn boys_into_shim(out: &mut [f64], x: f64) {
    liair_math::special::boys_into(out, x);
}

pub use eri::{eri_shell_quartet, eri_tensor, schwarz_matrix, EriTensor};
pub use fock::{build_jk, JkBuilder};
pub use gradients::rhf_gradient;
pub use one_electron::{
    dipole_matrices, kinetic_matrix, nuclear_matrix, overlap_matrix, second_moment_matrices,
};
