//! McMurchie–Davidson building blocks.
//!
//! * [`ECoefs`] — the Hermite expansion coefficients `E_t^{ij}` of the 1-D
//!   Gaussian product `x_A^i x_B^j e^{-a x_A²} e^{-b x_B²}`;
//! * [`hermite_aux`] — the Coulomb auxiliary integrals
//!   `R_{tuv}(p, P−C)` built from the Boys function by the standard
//!   downward-in-`n` recursion.

use liair_math::Vec3;

/// Hermite expansion coefficients for a primitive pair along one axis.
///
/// `get(i, j, t)` returns `E_t^{ij}`; entries with `t > i + j` (or any index
/// out of the constructed range) are zero by construction.
#[derive(Debug, Clone)]
pub struct ECoefs {
    imax: usize,
    jmax: usize,
    /// Flattened `[i][j][t]` with `t` dimension `imax + jmax + 1`.
    data: Vec<f64>,
}

impl ECoefs {
    /// Build the full table for `i ≤ imax`, `j ≤ jmax` given exponents
    /// `a`, `b` and the center separation `qx = Ax − Bx`.
    pub fn new(imax: usize, jmax: usize, qx: f64, a: f64, b: f64) -> Self {
        let p = a + b;
        let mu = a * b / p;
        let xpa = -b * qx / p; // P − A
        let xpb = a * qx / p; // P − B
        let tdim = imax + jmax + 1;
        let mut data = vec![0.0; (imax + 1) * (jmax + 1) * tdim];
        let idx = |i: usize, j: usize, t: usize| (i * (jmax + 1) + j) * tdim + t;
        data[idx(0, 0, 0)] = (-mu * qx * qx).exp();
        // Raise i at j = 0.
        for i in 0..imax {
            for t in 0..=(i + 1) {
                let mut v = xpa * data[idx(i, 0, t)];
                if t > 0 {
                    v += data[idx(i, 0, t - 1)] / (2.0 * p);
                }
                if t < i {
                    v += (t + 1) as f64 * data[idx(i, 0, t + 1)];
                }
                data[idx(i + 1, 0, t)] = v;
            }
        }
        // Raise j for every i.
        for j in 0..jmax {
            for i in 0..=imax {
                for t in 0..=(i + j + 1) {
                    let mut v = xpb * data[idx(i, j, t)];
                    if t > 0 {
                        v += data[idx(i, j, t - 1)] / (2.0 * p);
                    }
                    if t < i + j {
                        v += (t + 1) as f64 * data[idx(i, j, t + 1)];
                    }
                    data[idx(i, j + 1, t)] = v;
                }
            }
        }
        Self { imax, jmax, data }
    }

    /// `E_t^{ij}` (zero outside the stored/valid range).
    #[inline]
    pub fn get(&self, i: usize, j: usize, t: usize) -> f64 {
        if i > self.imax || j > self.jmax || t > i + j {
            return 0.0;
        }
        let tdim = self.imax + self.jmax + 1;
        self.data[(i * (self.jmax + 1) + j) * tdim + t]
    }
}

/// Coulomb auxiliary integrals `R_{tuv} = R^0_{tuv}(p, PC)` for all
/// `t ≤ tmax`, `u ≤ umax`, `v ≤ vmax`, as a flattened
/// `[(tmax+1) × (umax+1) × (vmax+1)]` array indexed `t·(umax+1)(vmax+1) +
/// u·(vmax+1) + v`.
///
/// Recursion (Helgaker–Jørgensen–Olsen §9.9):
/// `R^n_{000} = (−2p)^n F_n(p·|PC|²)`,
/// `R^n_{t+1,u,v} = t·R^{n+1}_{t−1,u,v} + X_PC·R^{n+1}_{t,u,v}` (same per
/// axis), evaluated by carrying full `(t,u,v)` cubes downward in `n`.
pub fn hermite_aux(tmax: usize, umax: usize, vmax: usize, p: f64, pc: Vec3) -> Vec<f64> {
    let mut scratch = AuxScratch::default();
    hermite_aux_into(tmax, umax, vmax, p, pc, &mut scratch);
    scratch.cur.clone()
}

/// Reusable buffers for [`hermite_aux_into`] — the ERI hot loop calls this
/// once per primitive quartet, so allocation there matters.
#[derive(Debug, Default, Clone)]
pub struct AuxScratch {
    /// Result cube after a call (`R⁰_{tuv}`, flattened as in
    /// [`hermite_aux`]).
    pub cur: Vec<f64>,
    next: Vec<f64>,
    boys: Vec<f64>,
}

/// As [`hermite_aux`], but writing into reusable scratch storage; the
/// result lives in `scratch.cur`.
pub fn hermite_aux_into(
    tmax: usize,
    umax: usize,
    vmax: usize,
    p: f64,
    pc: Vec3,
    scratch: &mut AuxScratch,
) {
    let nmax = tmax + umax + vmax;
    scratch.boys.resize(nmax + 1, 0.0);
    crate::boys_into_shim(&mut scratch.boys, p * pc.norm_sqr());
    let f = &scratch.boys;
    let dim = (tmax + 1) * (umax + 1) * (vmax + 1);
    let at = |t: usize, u: usize, v: usize| (t * (umax + 1) + u) * (vmax + 1) + v;
    // cur holds R^{n} cube; start at n = nmax where only (0,0,0) is needed,
    // then step n downward filling progressively larger t+u+v shells.
    scratch.cur.clear();
    scratch.cur.resize(dim, 0.0);
    scratch.next.clear();
    scratch.next.resize(dim, 0.0);
    let cur = &mut scratch.cur;
    let next = &mut scratch.next;
    cur[0] = (-2.0 * p).powi(nmax as i32) * f[nmax];
    for n in (0..nmax).rev() {
        // `next` ← R^{n} from `cur` = R^{n+1}.
        for e in next.iter_mut() {
            *e = 0.0;
        }
        next[0] = (-2.0 * p).powi(n as i32) * f[n];
        let shell_max = nmax - n;
        for t in 0..=tmax.min(shell_max) {
            for u in 0..=umax.min(shell_max - t) {
                for v in 0..=vmax.min(shell_max - t - u) {
                    if t + u + v == 0 {
                        continue;
                    }
                    // Reduce along the first nonzero index.
                    next[at(t, u, v)] = if t > 0 {
                        let mut val = pc.x * cur[at(t - 1, u, v)];
                        if t > 1 {
                            val += (t - 1) as f64 * cur[at(t - 2, u, v)];
                        }
                        val
                    } else if u > 0 {
                        let mut val = pc.y * cur[at(t, u - 1, v)];
                        if u > 1 {
                            val += (u - 1) as f64 * cur[at(t, u - 2, v)];
                        }
                        val
                    } else {
                        let mut val = pc.z * cur[at(t, u, v - 1)];
                        if v > 1 {
                            val += (v - 1) as f64 * cur[at(t, u, v - 2)];
                        }
                        val
                    };
                }
            }
        }
        std::mem::swap(cur, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;
    use liair_math::special::boys;
    use std::f64::consts::PI;

    #[test]
    fn e000_is_gaussian_prefactor() {
        let (a, b, qx) = (0.9, 1.7, 0.8);
        let e = ECoefs::new(0, 0, qx, a, b);
        let mu = a * b / (a + b);
        assert!(approx_eq(e.get(0, 0, 0), (-mu * qx * qx).exp(), 1e-14));
    }

    #[test]
    fn overlap_from_e_coefs_matches_closed_form() {
        // 1-D overlap of two unnormalized s Gaussians:
        // ∫ e^{-a x_A²} e^{-b x_B²} dx = E_0^{00} √(π/p).
        let (a, b, qx) = (0.5, 1.25, 1.3);
        let p = a + b;
        let e = ECoefs::new(0, 0, qx, a, b);
        let got = e.get(0, 0, 0) * (PI / p).sqrt();
        let mu = a * b / p;
        let want = (PI / p).sqrt() * (-mu * qx * qx).exp();
        assert!(approx_eq(got, want, 1e-14));
    }

    #[test]
    fn p_s_overlap_odd_symmetry() {
        // Same-center ⟨p|s⟩ overlap must vanish (odd integrand): E_0^{10}
        // with qx = 0 is zero.
        let e = ECoefs::new(1, 0, 0.0, 0.7, 0.7);
        assert!(e.get(1, 0, 0).abs() < 1e-15);
        // And ⟨p|p⟩ same center: E_0^{11} = 1/(2p).
        let e2 = ECoefs::new(1, 1, 0.0, 0.7, 0.7);
        assert!(approx_eq(e2.get(1, 1, 0), 1.0 / (2.0 * 1.4), 1e-14));
    }

    #[test]
    fn e_coefs_sum_rule() {
        // Σ_t E_t^{ij} · t! δ ... simpler: moments identity
        // x_A = (x−P) + PA ⇒ E_0^{10} = X_PA · E_0^{00}.
        let (a, b, qx) = (0.8, 0.3, -0.6);
        let p = a + b;
        let xpa = -b * qx / p;
        let e = ECoefs::new(1, 0, qx, a, b);
        assert!(approx_eq(e.get(1, 0, 0), xpa * e.get(0, 0, 0), 1e-14));
        assert!(approx_eq(e.get(1, 0, 1), e.get(0, 0, 0) / (2.0 * p), 1e-14));
    }

    #[test]
    fn hermite_aux_s_limit() {
        // R_{000} = F_0(p·R²).
        let p = 1.3;
        let pc = Vec3::new(0.4, -0.2, 0.9);
        let r = hermite_aux(0, 0, 0, p, pc);
        let f = boys(0, p * pc.norm_sqr());
        assert!(approx_eq(r[0], f[0], 1e-14));
    }

    #[test]
    fn hermite_aux_first_derivative() {
        // R_{100}(PC) = ∂/∂PCx R_000 = X_PC · (−2p) F_1.
        let p = 0.9;
        let pc = Vec3::new(0.7, 0.1, -0.3);
        let r = hermite_aux(1, 0, 0, p, pc);
        let f = boys(1, p * pc.norm_sqr());
        let want = pc.x * (-2.0 * p) * f[1];
        // Dims (2,1,1): flat index (t·1 + u)·1 + v collapses to t + u + v.
        let idx = |t: usize, u: usize, v: usize| t + u + v;
        assert!(approx_eq(r[idx(1, 0, 0)], want, 1e-13));
    }

    #[test]
    fn hermite_aux_finite_difference() {
        // Numerically verify R_{010} = ∂R_000/∂PCy via central differences.
        let p = 1.1;
        let pc = Vec3::new(0.3, 0.5, -0.8);
        let h = 1e-5;
        let r = hermite_aux(0, 1, 0, p, pc);
        let rp = hermite_aux(0, 0, 0, p, pc + Vec3::new(0.0, h, 0.0));
        let rm = hermite_aux(0, 0, 0, p, pc - Vec3::new(0.0, h, 0.0));
        let fd = (rp[0] - rm[0]) / (2.0 * h);
        assert!(approx_eq(r[1], fd, 1e-7), "{} vs {fd}", r[1]);
    }
}
