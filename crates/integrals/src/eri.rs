//! Two-electron repulsion integrals `(ab|cd)` (chemists' notation) over
//! contracted Cartesian shells, via McMurchie–Davidson:
//!
//! `(ab|cd) = Σ_prims c⁴ · 2π^{5/2}/(pq√(p+q)) · Σ_{tuv} E^{ab}_{tuv}
//!            Σ_{τνφ} (−1)^{τ+ν+φ} E^{cd}_{τνφ} R_{t+τ,u+ν,v+φ}(α, P−Q)`
//!
//! with `p`, `q` the bra/ket total exponents and `α = pq/(p+q)`.
//!
//! The engine precomputes, per ordered shell pair and primitive pair, the
//! Hermite `E` tables and the Gaussian product prefactor — the quartet
//! loop then only evaluates the `R_{tuv}` auxiliaries (into reusable
//! scratch) and the contraction sums. Primitive quartets whose prefactor
//! product is below `PRIM_SCREEN` are skipped.

use crate::hermite::{hermite_aux_into, AuxScratch, ECoefs};
use liair_basis::shell::{cart_components, ncart};
use liair_basis::Basis;
use liair_math::{Mat, Vec3};
use rayon::prelude::*;
use std::f64::consts::PI;

/// Primitive-quartet prefactor threshold below which the quartet is
/// skipped (`exp(−μ_br |AB|²) · exp(−μ_kt |CD|²)` bound).
pub const PRIM_SCREEN: f64 = 1e-16;

/// Precomputed data for one primitive pair of an ordered shell pair.
#[derive(Debug, Clone)]
struct PrimPair {
    /// Primitive indices within the two shells.
    ia: usize,
    ib: usize,
    /// Total exponent `p = a + b`.
    p: f64,
    /// Gaussian product center.
    big_p: Vec3,
    /// Hermite tables per axis.
    ex: ECoefs,
    ey: ECoefs,
    ez: ECoefs,
    /// `exp(−μ|AB|²)` prefactor used for primitive screening.
    screen: f64,
}

/// Reusable per-thread scratch for quartet evaluation.
#[derive(Debug, Default, Clone)]
pub struct EriScratch {
    aux: AuxScratch,
}

/// Precomputed engine over a basis.
pub struct EriEngine<'a> {
    basis: &'a Basis,
    /// Normalized contraction coefficients per (shell, component, prim).
    coefs: Vec<Vec<Vec<f64>>>,
    /// Primitive-pair tables per ordered shell pair `[sa * nsh + sb]`.
    pairs: Vec<Vec<PrimPair>>,
}

impl<'a> EriEngine<'a> {
    /// Prepare the engine: normalization plus all shell-pair Hermite
    /// tables (O(nsh²·nprim²) setup amortized over O(nsh⁴) quartets).
    pub fn new(basis: &'a Basis) -> Self {
        let coefs: Vec<Vec<Vec<f64>>> = basis
            .shells
            .iter()
            .map(|sh| {
                cart_components(sh.l)
                    .into_iter()
                    .map(|powers| sh.normalized_coefs(powers))
                    .collect()
            })
            .collect();
        let nsh = basis.shells.len();
        let pairs: Vec<Vec<PrimPair>> = (0..nsh * nsh)
            .into_par_iter()
            .map(|idx| {
                let (sa, sb) = (idx / nsh, idx % nsh);
                let (sha, shb) = (&basis.shells[sa], &basis.shells[sb]);
                let d = sha.center - shb.center;
                let mut out = Vec::with_capacity(sha.prims.len() * shb.prims.len());
                for (ia, pa) in sha.prims.iter().enumerate() {
                    for (ib, pb) in shb.prims.iter().enumerate() {
                        let (a, b) = (pa.exp, pb.exp);
                        let p = a + b;
                        let mu = a * b / p;
                        out.push(PrimPair {
                            ia,
                            ib,
                            p,
                            big_p: (sha.center * a + shb.center * b) / p,
                            ex: ECoefs::new(sha.l, shb.l, d.x, a, b),
                            ey: ECoefs::new(sha.l, shb.l, d.y, a, b),
                            ez: ECoefs::new(sha.l, shb.l, d.z, a, b),
                            screen: (-mu * d.norm_sqr()).exp(),
                        });
                    }
                }
                out
            })
            .collect();
        Self {
            basis,
            coefs,
            pairs,
        }
    }

    /// The underlying basis.
    pub fn basis(&self) -> &Basis {
        self.basis
    }

    /// Compute the component block of the shell quartet `(sa sb | sc sd)`
    /// into `out` (resized to `[a][b][c][d]` row-major).
    pub fn shell_quartet_into(
        &self,
        sa: usize,
        sb: usize,
        sc: usize,
        sd: usize,
        scratch: &mut EriScratch,
        out: &mut Vec<f64>,
    ) {
        let nsh = self.basis.shells.len();
        let (la, lb, lc, ld) = (
            self.basis.shells[sa].l,
            self.basis.shells[sb].l,
            self.basis.shells[sc].l,
            self.basis.shells[sd].l,
        );
        let (na, nb, nc, nd) = (ncart(la), ncart(lb), ncart(lc), ncart(ld));
        let comps_a = cart_components(la);
        let comps_b = cart_components(lb);
        let comps_c = cart_components(lc);
        let comps_d = cart_components(ld);
        out.clear();
        out.resize(na * nb * nc * nd, 0.0);
        let tdim = la + lb + lc + ld;
        let at = |t: usize, u: usize, v: usize| (t * (tdim + 1) + u) * (tdim + 1) + v;

        for bra in &self.pairs[sa * nsh + sb] {
            for ket in &self.pairs[sc * nsh + sd] {
                if bra.screen * ket.screen < PRIM_SCREEN {
                    continue;
                }
                let (p, q) = (bra.p, ket.p);
                let alpha = p * q / (p + q);
                hermite_aux_into(
                    tdim,
                    tdim,
                    tdim,
                    alpha,
                    bra.big_p - ket.big_p,
                    &mut scratch.aux,
                );
                let aux = &scratch.aux.cur;
                let pref = 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt());

                for (ca, &pa) in comps_a.iter().enumerate() {
                    for (cb, &pb) in comps_b.iter().enumerate() {
                        for (cc, &pc) in comps_c.iter().enumerate() {
                            for (cdx, &pd) in comps_d.iter().enumerate() {
                                let coef = self.coefs[sa][ca][bra.ia]
                                    * self.coefs[sb][cb][bra.ib]
                                    * self.coefs[sc][cc][ket.ia]
                                    * self.coefs[sd][cdx][ket.ib];
                                let mut val = 0.0;
                                for t in 0..=(pa.0 + pb.0) {
                                    let etx = bra.ex.get(pa.0, pb.0, t);
                                    if etx == 0.0 {
                                        continue;
                                    }
                                    for u in 0..=(pa.1 + pb.1) {
                                        let euy = bra.ey.get(pa.1, pb.1, u);
                                        if euy == 0.0 {
                                            continue;
                                        }
                                        for v in 0..=(pa.2 + pb.2) {
                                            let evz = bra.ez.get(pa.2, pb.2, v);
                                            if evz == 0.0 {
                                                continue;
                                            }
                                            let ebra = etx * euy * evz;
                                            for tau in 0..=(pc.0 + pd.0) {
                                                let etc = ket.ex.get(pc.0, pd.0, tau);
                                                if etc == 0.0 {
                                                    continue;
                                                }
                                                for nu in 0..=(pc.1 + pd.1) {
                                                    let euc = ket.ey.get(pc.1, pd.1, nu);
                                                    if euc == 0.0 {
                                                        continue;
                                                    }
                                                    for ph in 0..=(pc.2 + pd.2) {
                                                        let evc = ket.ez.get(pc.2, pd.2, ph);
                                                        if evc == 0.0 {
                                                            continue;
                                                        }
                                                        let sign = if (tau + nu + ph) % 2 == 0 {
                                                            1.0
                                                        } else {
                                                            -1.0
                                                        };
                                                        val += ebra
                                                            * sign
                                                            * etc
                                                            * euc
                                                            * evc
                                                            * aux[at(t + tau, u + nu, v + ph)];
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                                let idx = ((ca * nb + cb) * nc + cc) * nd + cdx;
                                out[idx] += coef * pref * val;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`Self::shell_quartet_into`].
    pub fn shell_quartet(&self, sa: usize, sb: usize, sc: usize, sd: usize) -> Vec<f64> {
        let mut scratch = EriScratch::default();
        let mut out = Vec::new();
        self.shell_quartet_into(sa, sb, sc, sd, &mut scratch, &mut out);
        out
    }
}

/// One shell quartet through a throwaway engine (tests, small jobs).
pub fn eri_shell_quartet(basis: &Basis, sa: usize, sb: usize, sc: usize, sd: usize) -> Vec<f64> {
    EriEngine::new(basis).shell_quartet(sa, sb, sc, sd)
}

/// Dense `(μν|λσ)` tensor for small systems.
#[derive(Debug, Clone)]
pub struct EriTensor {
    n: usize,
    data: Vec<f64>,
}

impl EriTensor {
    /// AO dimension.
    pub fn nao(&self) -> usize {
        self.n
    }

    /// `(ij|kl)` element.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, l: usize) -> f64 {
        self.data[((i * self.n + j) * self.n + k) * self.n + l]
    }
}

/// Build the full ERI tensor (O(N⁴) memory — guarded to ≤ 96 AOs; larger
/// systems must use the direct Fock build or the grid pair path).
pub fn eri_tensor(basis: &Basis) -> EriTensor {
    let n = basis.nao();
    assert!(n <= 96, "eri_tensor is for small systems (nao = {n} > 96)");
    let engine = EriEngine::new(basis);
    let nsh = basis.shells.len();
    let blocks: Vec<(usize, usize, usize, usize, Vec<f64>)> = (0..nsh * nsh)
        .into_par_iter()
        .flat_map_iter(|ij| {
            let si = ij / nsh;
            let sj = ij % nsh;
            (0..nsh).flat_map(move |sk| (0..nsh).map(move |sl| (si, sj, sk, sl)))
        })
        .map_init(EriScratch::default, |scratch, (si, sj, sk, sl)| {
            let mut block = Vec::new();
            engine.shell_quartet_into(si, sj, sk, sl, scratch, &mut block);
            (si, sj, sk, sl, block)
        })
        .collect();
    let mut data = vec![0.0; n * n * n * n];
    for (si, sj, sk, sl, block) in blocks {
        let (oa, ob, oc, od) = (
            basis.shell_offsets[si],
            basis.shell_offsets[sj],
            basis.shell_offsets[sk],
            basis.shell_offsets[sl],
        );
        let (na, nb, nc, nd) = (
            ncart(basis.shells[si].l),
            ncart(basis.shells[sj].l),
            ncart(basis.shells[sk].l),
            ncart(basis.shells[sl].l),
        );
        for ca in 0..na {
            for cb in 0..nb {
                for cc in 0..nc {
                    for cd in 0..nd {
                        let v = block[((ca * nb + cb) * nc + cc) * nd + cd];
                        let (i, j, k, l) = (oa + ca, ob + cb, oc + cc, od + cd);
                        data[((i * n + j) * n + k) * n + l] = v;
                    }
                }
            }
        }
    }
    EriTensor { n, data }
}

/// Schwarz screening bounds per *shell pair*:
/// `Q_{AB} = max_{μ∈A,ν∈B} √|(μν|μν)|`; `|(ab|cd)| ≤ Q_{AB} Q_{CD}`.
pub fn schwarz_matrix(basis: &Basis) -> Mat {
    let engine = EriEngine::new(basis);
    schwarz_matrix_with(&engine)
}

/// As [`schwarz_matrix`] but reusing a prepared engine.
pub fn schwarz_matrix_with(engine: &EriEngine<'_>) -> Mat {
    let basis = engine.basis();
    let nsh = basis.shells.len();
    let rows: Vec<Vec<f64>> = (0..nsh)
        .into_par_iter()
        .map_init(EriScratch::default, |scratch, sa| {
            let mut block = Vec::new();
            (0..nsh)
                .map(|sb| {
                    engine.shell_quartet_into(sa, sb, sa, sb, scratch, &mut block);
                    let (na, nb) = (ncart(basis.shells[sa].l), ncart(basis.shells[sb].l));
                    let mut best = 0.0f64;
                    for ca in 0..na {
                        for cb in 0..nb {
                            let v = block[((ca * nb + cb) * na + ca) * nb + cb];
                            best = best.max(v.abs());
                        }
                    }
                    best.sqrt()
                })
                .collect()
        })
        .collect();
    let mut m = Mat::zeros(nsh, nsh);
    for (i, row) in rows.into_iter().enumerate() {
        for (j, v) in row.into_iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    m
}

/// Shell-pair distance helper used by distance-based pair screening in the
/// exact-exchange pair list: returns the centers' separation.
pub fn shell_pair_distance(basis: &Basis, sa: usize, sb: usize) -> f64 {
    basis.shells[sa].center.distance(basis.shells[sb].center)
}

/// Estimate of a primitive-pair prefactor `exp(−μ R²_AB)` used in tests.
pub fn gaussian_product_prefactor(a: f64, b: f64, ra: Vec3, rb: Vec3) -> f64 {
    let mu = a * b / (a + b);
    (-mu * (ra - rb).norm_sqr()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::approx_eq;

    #[test]
    fn h2_sto3g_eri_table() {
        // Szabo & Ostlund (ζ = 1.24, R = 1.4 a₀):
        // (11|11) = 0.7746, (11|22) = 0.5697, (12|12) = 0.2970,
        // (11|12) = 0.4441.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let eri = eri_tensor(&basis);
        assert!(
            approx_eq(eri.get(0, 0, 0, 0), 0.7746, 3e-4),
            "(11|11)={}",
            eri.get(0, 0, 0, 0)
        );
        assert!(
            approx_eq(eri.get(0, 0, 1, 1), 0.5697, 3e-4),
            "(11|22)={}",
            eri.get(0, 0, 1, 1)
        );
        assert!(
            approx_eq(eri.get(0, 1, 0, 1), 0.2970, 3e-4),
            "(12|12)={}",
            eri.get(0, 1, 0, 1)
        );
        assert!(
            approx_eq(eri.get(0, 0, 0, 1), 0.4441, 3e-4),
            "(11|12)={}",
            eri.get(0, 0, 0, 1)
        );
    }

    #[test]
    fn eightfold_permutational_symmetry() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let eri = eri_tensor(&basis);
        let n = basis.nao();
        let mut rng = liair_math::rng::SplitMix64::new(3);
        for _ in 0..200 {
            let (i, j, k, l) = (rng.below(n), rng.below(n), rng.below(n), rng.below(n));
            let v = eri.get(i, j, k, l);
            for w in [
                eri.get(j, i, k, l),
                eri.get(i, j, l, k),
                eri.get(j, i, l, k),
                eri.get(k, l, i, j),
                eri.get(l, k, i, j),
                eri.get(k, l, j, i),
                eri.get(l, k, j, i),
            ] {
                assert!(approx_eq(v, w, 1e-9), "({i}{j}|{k}{l}): {v} vs {w}");
            }
        }
    }

    #[test]
    fn diagonal_elements_nonnegative() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let eri = eri_tensor(&basis);
        let n = basis.nao();
        for i in 0..n {
            for j in 0..n {
                assert!(eri.get(i, j, i, j) >= -1e-12);
            }
        }
    }

    #[test]
    fn schwarz_bound_holds() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let q = schwarz_matrix(&basis);
        let engine = EriEngine::new(&basis);
        let nsh = basis.shells.len();
        for sa in 0..nsh {
            for sb in 0..nsh {
                for sc in 0..nsh {
                    for sd in 0..nsh {
                        let block = engine.shell_quartet(sa, sb, sc, sd);
                        let max = block.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                        let bound = q[(sa, sb)] * q[(sc, sd)];
                        assert!(max <= bound + 1e-9, "({sa}{sb}|{sc}{sd}): {max} > {bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn distant_pairs_decay() {
        let mut mol = systems::h2();
        mol.atoms[1].pos = liair_math::Vec3::new(10.0, 0.0, 0.0);
        let basis = Basis::sto3g(&mol);
        let eri = eri_tensor(&basis);
        assert!(eri.get(0, 1, 0, 1).abs() < 1e-8);
        // While the classical Coulomb (11|22) only decays like 1/R.
        assert!(approx_eq(eri.get(0, 0, 1, 1), 0.1, 1e-2));
    }

    #[test]
    fn into_matches_allocating_path() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let engine = EriEngine::new(&basis);
        let mut scratch = EriScratch::default();
        let mut out = Vec::new();
        for (sa, sb, sc, sd) in [(0, 1, 2, 3), (2, 2, 2, 2), (4, 0, 3, 1)] {
            engine.shell_quartet_into(sa, sb, sc, sd, &mut scratch, &mut out);
            let reference = engine.shell_quartet(sa, sb, sc, sd);
            assert_eq!(out, reference);
        }
    }
}
