//! One-electron integral matrices: overlap, kinetic, nuclear attraction,
//! and dipole moments.

use crate::hermite::{hermite_aux, ECoefs};
use liair_basis::shell::cart_components;
use liair_basis::{Basis, Molecule};
use liair_math::{Mat, Vec3};
use std::f64::consts::PI;

/// Per-(shell, component) normalized contraction coefficients, precomputed
/// once per matrix build.
fn shell_coefs(basis: &Basis) -> Vec<Vec<Vec<f64>>> {
    basis
        .shells
        .iter()
        .map(|sh| {
            cart_components(sh.l)
                .into_iter()
                .map(|powers| sh.normalized_coefs(powers))
                .collect()
        })
        .collect()
}

/// Iterate a closure over every AO pair `(row, col, value)` of a symmetric
/// one-electron operator defined by a per-primitive-pair kernel.
///
/// The kernel receives
/// `(powers_a, powers_b, a, b, center_a, center_b)` and returns the
/// *unnormalized primitive* integral; contraction and normalization are
/// applied here.
fn build_symmetric<K>(basis: &Basis, kernel: K) -> Mat
where
    K: Fn((usize, usize, usize), (usize, usize, usize), f64, f64, Vec3, Vec3) -> f64,
{
    let n = basis.nao();
    let coefs = shell_coefs(basis);
    let mut m = Mat::zeros(n, n);
    for (si, sa) in basis.shells.iter().enumerate() {
        for (sj, sb) in basis.shells.iter().enumerate() {
            if sj > si {
                continue;
            }
            let oa = basis.shell_offsets[si];
            let ob = basis.shell_offsets[sj];
            for (ca, pa) in cart_components(sa.l).into_iter().enumerate() {
                for (cb, pb) in cart_components(sb.l).into_iter().enumerate() {
                    let row = oa + ca;
                    let col = ob + cb;
                    if col > row {
                        continue;
                    }
                    let mut acc = 0.0;
                    for (ia, prim_a) in sa.prims.iter().enumerate() {
                        for (ib, prim_b) in sb.prims.iter().enumerate() {
                            let c = coefs[si][ca][ia] * coefs[sj][cb][ib];
                            acc += c * kernel(pa, pb, prim_a.exp, prim_b.exp, sa.center, sb.center);
                        }
                    }
                    m[(row, col)] = acc;
                    m[(col, row)] = acc;
                }
            }
        }
    }
    m
}

/// 1-D overlap factor `S(i,j) = E_0^{ij} √(π/p)`.
#[inline]
fn s1d(e: &ECoefs, i: usize, j: usize, p: f64) -> f64 {
    e.get(i, j, 0) * (PI / p).sqrt()
}

/// Overlap matrix `S_{μν} = ⟨μ|ν⟩`.
pub fn overlap_matrix(basis: &Basis) -> Mat {
    build_symmetric(basis, |pa, pb, a, b, ra, rb| {
        let p = a + b;
        let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
        let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
        let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
        s1d(&ex, pa.0, pb.0, p) * s1d(&ey, pa.1, pb.1, p) * s1d(&ez, pa.2, pb.2, p)
    })
}

/// Kinetic-energy matrix `T_{μν} = ⟨μ| −½∇² |ν⟩`.
pub fn kinetic_matrix(basis: &Basis) -> Mat {
    build_symmetric(basis, |pa, pb, a, b, ra, rb| {
        let p = a + b;
        // Tables extended by 2 in j for the second-derivative terms.
        let ex = ECoefs::new(pa.0, pb.0 + 2, ra.x - rb.x, a, b);
        let ey = ECoefs::new(pa.1, pb.1 + 2, ra.y - rb.y, a, b);
        let ez = ECoefs::new(pa.2, pb.2 + 2, ra.z - rb.z, a, b);
        let s = [|i: usize, j: i64, e: &ECoefs| -> f64 {
            if j < 0 {
                0.0
            } else {
                e.get(i, j as usize, 0)
            }
        }; 1][0];
        let sqrt_pi_p = (PI / p).sqrt();
        // 1-D kinetic factor acting on the ket:
        // T(i,j) = −2b²S(i,j+2) + b(2j+1)S(i,j) − ½ j(j−1) S(i,j−2).
        let t1d = |i: usize, j: usize, e: &ECoefs| -> f64 {
            let jj = j as i64;
            (-2.0 * b * b * s(i, jj + 2, e) + b * (2 * j + 1) as f64 * s(i, jj, e)
                - 0.5 * (j * j.saturating_sub(1)) as f64 * s(i, jj - 2, e))
                * sqrt_pi_p
        };
        let sx = s1d(&ex, pa.0, pb.0, p);
        let sy = s1d(&ey, pa.1, pb.1, p);
        let sz = s1d(&ez, pa.2, pb.2, p);
        t1d(pa.0, pb.0, &ex) * sy * sz
            + sx * t1d(pa.1, pb.1, &ey) * sz
            + sx * sy * t1d(pa.2, pb.2, &ez)
    })
}

/// Nuclear-attraction matrix `V_{μν} = ⟨μ| Σ_A −Z_A/|r−R_A| |ν⟩`.
pub fn nuclear_matrix(basis: &Basis, mol: &Molecule) -> Mat {
    let nuclei: Vec<(f64, Vec3)> = mol
        .atoms
        .iter()
        .map(|at| (at.element.z() as f64, at.pos))
        .collect();
    build_symmetric(basis, |pa, pb, a, b, ra, rb| {
        let p = a + b;
        let big_p = (ra * a + rb * b) / p;
        let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
        let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
        let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
        let (tmax, umax, vmax) = (pa.0 + pb.0, pa.1 + pb.1, pa.2 + pb.2);
        let mut total = 0.0;
        for &(z, rc) in &nuclei {
            let r = hermite_aux(tmax, umax, vmax, p, big_p - rc);
            let at = |t: usize, u: usize, v: usize| (t * (umax + 1) + u) * (vmax + 1) + v;
            let mut acc = 0.0;
            for t in 0..=tmax {
                for u in 0..=umax {
                    for v in 0..=vmax {
                        acc += ex.get(pa.0, pb.0, t)
                            * ey.get(pa.1, pb.1, u)
                            * ez.get(pa.2, pb.2, v)
                            * r[at(t, u, v)];
                    }
                }
            }
            total -= z * acc;
        }
        total * 2.0 * PI / p
    })
}

/// Dipole-moment matrices `D^k_{μν} = ⟨μ| (r − C)_k |ν⟩` for `k = x, y, z`
/// about the origin `c` (used by the Foster–Boys localization).
pub fn dipole_matrices(basis: &Basis, c: Vec3) -> [Mat; 3] {
    let make = |axis: usize| {
        build_symmetric(basis, |pa, pb, a, b, ra, rb| {
            let p = a + b;
            let big_p = (ra * a + rb * b) / p;
            let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
            let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
            let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
            let sqrt_pi_p = (PI / p).sqrt();
            // Moment 1-D factor: ⟨i|(x − Cx)|j⟩ = (E_1^{ij} + X_PC E_0^{ij})√(π/p).
            let m1d = |i: usize, j: usize, e: &ECoefs, xpc: f64| -> f64 {
                (e.get(i, j, 1) + xpc * e.get(i, j, 0)) * sqrt_pi_p
            };
            let sx = s1d(&ex, pa.0, pb.0, p);
            let sy = s1d(&ey, pa.1, pb.1, p);
            let sz = s1d(&ez, pa.2, pb.2, p);
            match axis {
                0 => m1d(pa.0, pb.0, &ex, big_p.x - c.x) * sy * sz,
                1 => sx * m1d(pa.1, pb.1, &ey, big_p.y - c.y) * sz,
                _ => sx * sy * m1d(pa.2, pb.2, &ez, big_p.z - c.z),
            }
        })
    };
    [make(0), make(1), make(2)]
}

/// Second-moment matrices `Q^k_{μν} = ⟨μ| (r − C)_k² |ν⟩` (diagonal
/// Cartesian quadrupole components), used for orbital spreads
/// `σ² = ⟨r²⟩ − ⟨r⟩²` in the exact-exchange screening model.
pub fn second_moment_matrices(basis: &Basis, c: Vec3) -> [Mat; 3] {
    let make = |axis: usize| {
        build_symmetric(basis, |pa, pb, a, b, ra, rb| {
            let p = a + b;
            let big_p = (ra * a + rb * b) / p;
            let ex = ECoefs::new(pa.0, pb.0, ra.x - rb.x, a, b);
            let ey = ECoefs::new(pa.1, pb.1, ra.y - rb.y, a, b);
            let ez = ECoefs::new(pa.2, pb.2, ra.z - rb.z, a, b);
            let sqrt_pi_p = (PI / p).sqrt();
            // ⟨i|(x−Cx)²|j⟩ = [2E_2 + 2X_PC E_1 + (X_PC² + 1/(2p)) E_0]√(π/p)
            let q1d = |i: usize, j: usize, e: &ECoefs, xpc: f64| -> f64 {
                (2.0 * e.get(i, j, 2)
                    + 2.0 * xpc * e.get(i, j, 1)
                    + (xpc * xpc + 0.5 / p) * e.get(i, j, 0))
                    * sqrt_pi_p
            };
            let sx = s1d(&ex, pa.0, pb.0, p);
            let sy = s1d(&ey, pa.1, pb.1, p);
            let sz = s1d(&ez, pa.2, pb.2, p);
            match axis {
                0 => q1d(pa.0, pb.0, &ex, big_p.x - c.x) * sy * sz,
                1 => sx * q1d(pa.1, pb.1, &ey, big_p.y - c.y) * sz,
                _ => sx * sy * q1d(pa.2, pb.2, &ez, big_p.z - c.z),
            }
        })
    };
    [make(0), make(1), make(2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::approx_eq;

    #[test]
    fn overlap_diagonal_is_one() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        for i in 0..basis.nao() {
            assert!(
                approx_eq(s[(i, i)], 1.0, 1e-10),
                "S[{i}][{i}] = {}",
                s[(i, i)]
            );
        }
        assert!(s.asymmetry() < 1e-14);
    }

    #[test]
    fn h2_sto3g_szabo_ostlund_values() {
        // Szabo & Ostlund, Table 3.5-ish (ζ = 1.24, R = 1.4 a₀):
        // S₁₂ = 0.6593, T₁₁ = 0.7600, T₁₂ = 0.2365,
        // V₁₁ (both nuclei) = −1.8804 = −1.2266 − 0.6538,
        // V₁₂ = −1.1948 = 2 × (−0.5974).
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        let t = kinetic_matrix(&basis);
        let v = nuclear_matrix(&basis, &mol);
        assert!(approx_eq(s[(0, 1)], 0.6593, 2e-4), "S12 {}", s[(0, 1)]);
        assert!(approx_eq(t[(0, 0)], 0.7600, 2e-4), "T11 {}", t[(0, 0)]);
        assert!(approx_eq(t[(0, 1)], 0.2365, 2e-4), "T12 {}", t[(0, 1)]);
        assert!(approx_eq(v[(0, 0)], -1.8804, 5e-4), "V11 {}", v[(0, 0)]);
        assert!(approx_eq(v[(0, 1)], -1.1948, 5e-4), "V12 {}", v[(0, 1)]);
    }

    #[test]
    fn kinetic_is_positive_definite() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let t = kinetic_matrix(&basis);
        let (vals, _) = liair_math::linalg::eigh(&t);
        assert!(vals[0] > 0.0, "min kinetic eigenvalue {}", vals[0]);
    }

    #[test]
    fn nuclear_attraction_is_negative_on_diagonal() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let v = nuclear_matrix(&basis, &mol);
        for i in 0..basis.nao() {
            assert!(v[(i, i)] < 0.0);
        }
    }

    #[test]
    fn dipole_of_s_function_is_its_center() {
        // ⟨φ|r|φ⟩ = R for a normalized function centered at R.
        let mut mol = Molecule::new();
        mol.push(liair_basis::Element::H, Vec3::new(0.5, -1.0, 2.0));
        let basis = Basis::sto3g(&mol);
        let d = dipole_matrices(&basis, Vec3::ZERO);
        assert!(approx_eq(d[0][(0, 0)], 0.5, 1e-10));
        assert!(approx_eq(d[1][(0, 0)], -1.0, 1e-10));
        assert!(approx_eq(d[2][(0, 0)], 2.0, 1e-10));
    }

    #[test]
    fn dipole_origin_shift_rule() {
        // D(C) = D(0) − C·S.
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        let d0 = dipole_matrices(&basis, Vec3::ZERO);
        let c = Vec3::new(0.3, 0.7, -0.2);
        let dc = dipole_matrices(&basis, c);
        for k in 0..3 {
            let shift = s.scale(c[k]);
            let diff = d0[k].sub(&shift).sub(&dc[k]).fro_norm();
            assert!(diff < 1e-10, "axis {k}: {diff}");
        }
    }

    #[test]
    fn second_moment_of_s_primitive() {
        // For a single normalized s primitive with exponent α centred at C:
        // ⟨x²⟩ = 1/(4α). Use an artificial one-primitive shell.
        use liair_basis::shell::{Primitive, Shell};
        let alpha = 0.8;
        let center = Vec3::new(0.2, -0.4, 1.0);
        let sh = Shell::new(
            0,
            0,
            center,
            vec![Primitive {
                exp: alpha,
                coef: 1.0,
            }],
        );
        let basis = Basis::from_shells(vec![sh]);
        let q = second_moment_matrices(&basis, center);
        for k in 0..3 {
            assert!(
                approx_eq(q[k][(0, 0)], 1.0 / (4.0 * alpha), 1e-12),
                "axis {k}: {}",
                q[k][(0, 0)]
            );
        }
        // Shifted origin: ⟨(x−C'x)²⟩ = ⟨x²⟩ + (Cx−C'x)² for the same function.
        let q2 = second_moment_matrices(&basis, Vec3::ZERO);
        assert!(approx_eq(q2[0][(0, 0)], 1.0 / (4.0 * alpha) + 0.04, 1e-12));
    }

    #[test]
    fn spreads_are_positive() {
        // σ² = ⟨r²⟩ − |⟨r⟩|² > 0 for every AO of water.
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let d = dipole_matrices(&basis, Vec3::ZERO);
        let q = second_moment_matrices(&basis, Vec3::ZERO);
        for i in 0..basis.nao() {
            let mean_sq: f64 = (0..3).map(|k| q[k][(i, i)]).sum();
            let sq_mean: f64 = (0..3).map(|k| d[k][(i, i)] * d[k][(i, i)]).sum();
            assert!(mean_sq - sq_mean > 0.0, "AO {i}");
        }
    }

    #[test]
    fn p_shell_overlap_block_is_identity_on_center() {
        // The 3 p functions on one atom are orthonormal.
        let mut mol = Molecule::new();
        mol.push(liair_basis::Element::O, Vec3::ZERO);
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        // AOs: 1s, 2s, 2px, 2py, 2pz
        for i in 2..5 {
            for j in 2..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(s[(i, j)], want, 1e-10), "S[{i}][{j}]");
            }
        }
        // s–p on the same center vanish by symmetry.
        assert!(s[(0, 2)].abs() < 1e-12);
        assert!(s[(1, 3)].abs() < 1e-12);
    }
}
