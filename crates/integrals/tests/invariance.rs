//! Physical invariance properties of the integral engine.

use liair_basis::{systems, Basis, Element, Molecule};
use liair_integrals::{eri_tensor, kinetic_matrix, nuclear_matrix, overlap_matrix};
use liair_math::Vec3;
use proptest::prelude::*;

fn translated(mol: &Molecule, shift: Vec3) -> Molecule {
    let mut m = mol.clone();
    m.translate(shift);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every integral matrix is invariant under rigid translation of the
    /// whole molecule.
    #[test]
    fn translation_invariance(
        sx in -5.0f64..5.0,
        sy in -5.0f64..5.0,
        sz in -5.0f64..5.0,
    ) {
        let mol = systems::water();
        let shift = Vec3::new(sx, sy, sz);
        let mol2 = translated(&mol, shift);
        let (b1, b2) = (Basis::sto3g(&mol), Basis::sto3g(&mol2));

        let s_err = overlap_matrix(&b1).sub(&overlap_matrix(&b2)).fro_norm();
        prop_assert!(s_err < 1e-11, "overlap changed by {s_err}");

        let t_err = kinetic_matrix(&b1).sub(&kinetic_matrix(&b2)).fro_norm();
        prop_assert!(t_err < 1e-11, "kinetic changed by {t_err}");

        let v_err = nuclear_matrix(&b1, &mol)
            .sub(&nuclear_matrix(&b2, &mol2))
            .fro_norm();
        prop_assert!(v_err < 1e-10, "nuclear changed by {v_err}");
    }

    /// ERIs over two H atoms depend only on the interatomic distance, not
    /// on the orientation of the bond axis.
    #[test]
    fn eri_rotation_invariance_s_functions(theta in 0.0f64..std::f64::consts::PI, r in 0.8f64..4.0) {
        let make = |dir: Vec3| {
            let mut m = Molecule::new();
            m.push(Element::H, Vec3::ZERO);
            m.push(Element::H, dir * r);
            Basis::sto3g(&m)
        };
        let along_x = make(Vec3::new(1.0, 0.0, 0.0));
        let rotated = make(Vec3::new(theta.cos(), theta.sin(), 0.0));
        let e1 = eri_tensor(&along_x);
        let e2 = eri_tensor(&rotated);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        prop_assert!(
                            (e1.get(i, j, k, l) - e2.get(i, j, k, l)).abs() < 1e-11,
                            "({i}{j}|{k}{l}) differs"
                        );
                    }
                }
            }
        }
    }

    /// The Schwarz inequality holds for arbitrary H3 geometries
    /// (p-function-free stress of the bound).
    #[test]
    fn schwarz_holds_for_random_geometry(
        x1 in 0.8f64..4.0, y2 in 0.8f64..4.0, z3 in 0.8f64..4.0,
    ) {
        let mut m = Molecule::new();
        m.push(Element::H, Vec3::ZERO);
        m.push(Element::H, Vec3::new(x1, 0.0, 0.0));
        m.push(Element::H, Vec3::new(0.0, y2, z3));
        m.charge = 1; // H3+ closed shell (irrelevant for integrals)
        let basis = Basis::sto3g(&m);
        let q = liair_integrals::schwarz_matrix(&basis);
        let eri = eri_tensor(&basis);
        for a in 0..3usize {
            for b in 0..3usize {
                for c in 0..3usize {
                    for d in 0..3usize {
                        let bound = q[(a, b)] * q[(c, d)] + 1e-10;
                        prop_assert!(
                            eri.get(a, b, c, d).abs() <= bound,
                            "({a}{b}|{c}{d}) = {} > {bound}",
                            eri.get(a, b, c, d)
                        );
                    }
                }
            }
        }
    }
}

/// Rotating water by 90° about z permutes the p functions; the RHF energy
/// built from the rotated integrals must be identical.
#[test]
fn scf_energy_rotation_invariant() {
    use liair_math::linalg::{eigh, sym_inv_sqrt};
    use liair_math::Mat;

    let energy_of = |mol: &Molecule| -> f64 {
        let basis = Basis::sto3g(mol);
        let n = basis.nao();
        let nocc = mol.nocc();
        let s = overlap_matrix(&basis);
        let h = kinetic_matrix(&basis).add(&nuclear_matrix(&basis, mol));
        let x = sym_inv_sqrt(&s);
        let density_of = |c: &Mat| {
            let mut d = Mat::zeros(n, n);
            for mu in 0..n {
                for nu in 0..n {
                    let mut acc = 0.0;
                    for k in 0..nocc {
                        acc += c[(mu, k)] * c[(nu, k)];
                    }
                    d[(mu, nu)] = 2.0 * acc;
                }
            }
            d
        };
        let fp0 = x.transpose().matmul(&h).matmul(&x);
        let (_, cp) = eigh(&fp0);
        let mut density = density_of(&x.matmul(&cp));
        let mut e = 0.0;
        for _ in 0..60 {
            let (j, k) = liair_integrals::build_jk(&basis, &density, 1e-12);
            let mut f = h.clone();
            f.axpy(1.0, &j);
            f.axpy(-0.5, &k);
            let e_new = density.trace_product(&h) + 0.5 * density.trace_product(&j)
                - 0.25 * density.trace_product(&k)
                + mol.nuclear_repulsion();
            let fp = x.transpose().matmul(&f).matmul(&x);
            let (_, cpn) = eigh(&fp);
            density = density_of(&x.matmul(&cpn));
            if (e_new - e).abs() < 1e-10 {
                return e_new;
            }
            e = e_new;
        }
        e
    };

    let mol = systems::water();
    let mut rotated = mol.clone();
    for a in &mut rotated.atoms {
        let p = a.pos;
        a.pos = Vec3::new(-p.y, p.x, p.z); // 90° about z
    }
    let e1 = energy_of(&mol);
    let e2 = energy_of(&rotated);
    assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
}
