//! Job specifications: what a tenant submits to the service.
//!
//! A [`JobSpec`] is a complete, self-contained description of one batch
//! computation — the physical problem ([`JobKind`]), the tenant it bills
//! to, its scheduling priority, the rank-pool slice it wants, and the
//! per-job determinism knobs ([`SeedConfig`]). Nothing in a spec reads
//! the process environment: two tenants with different seeds coexist in
//! one service without racing on env vars (the PR 9 satellite that
//! motivated `SeedConfig`).
//!
//! [`Disruption`] injects deterministic failures for the soak tests:
//! a job preempted or faulted at a known step must *resume from its
//! checkpoint* and land on bit-identical final numbers.

use liair_basis::{systems, Molecule};
use liair_runtime::SeedConfig;

/// The small SCF systems the service schedules (each converges in a few
/// iterations at STO-3G — real work, but cheap enough to soak-test with
/// hundreds of jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScfSystem {
    /// H₂ at equilibrium.
    H2,
    /// Lithium hydride.
    LiH,
    /// A single water molecule.
    Water,
    /// A helium atom.
    Helium,
}

impl ScfSystem {
    /// The geometry this system names.
    pub fn molecule(self) -> Molecule {
        match self {
            ScfSystem::H2 => systems::h2(),
            ScfSystem::LiH => systems::lih(),
            ScfSystem::Water => systems::water(),
            ScfSystem::Helium => systems::helium(),
        }
    }

    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            ScfSystem::H2 => "h2",
            ScfSystem::LiH => "lih",
            ScfSystem::Water => "water",
            ScfSystem::Helium => "helium",
        }
    }
}

/// What one job computes.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Converge an RHF SCF on a named small molecule. Checkpointable per
    /// iteration through [`liair_scf::ScfSession`].
    Scf {
        /// Which molecule.
        system: ScfSystem,
        /// Incremental (difference-density) Fock builds.
        incremental_fock: bool,
    },
    /// An r-RESPA MTS trajectory on a seeded water box under the
    /// classical force field (tether-split slow correction).
    /// Checkpointable per outer step through [`liair_md::MdCheckpoint`].
    Md {
        /// Molecules in the box.
        n_waters: usize,
        /// Outer (slow-force) steps.
        n_outer: usize,
        /// Inner steps per outer step.
        n_inner: usize,
        /// Thermalization temperature (K).
        temperature: f64,
    },
    /// A grid-exchange screening evaluation on a synthetic solvent
    /// snapshot: Gaussian proxy orbitals placed deterministically by
    /// `seed`, total exchange energy through the incremental engine.
    /// Same `(system, extent, norb, seed)` ⇒ identical orbitals ⇒ a warm
    /// cross-job cache reproduces the cold result bit-for-bit.
    Screening {
        /// Solvent label (cache namespace).
        system: String,
        /// Cubic grid extent per axis.
        extent: usize,
        /// Proxy orbital count.
        norb: usize,
        /// Geometry seed.
        seed: u64,
    },
}

impl JobKind {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            JobKind::Scf { system, .. } => format!("scf:{}", system.name()),
            JobKind::Md { n_waters, .. } => format!("md:w{n_waters}"),
            JobKind::Screening { system, seed, .. } => format!("screen:{system}#{seed}"),
        }
    }
}

/// Deterministic failure injection, applied on a job's *first* attempt
/// only — the resumed attempt must run undisturbed to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disruption {
    /// Run to completion.
    None,
    /// Scheduler preemption: the runner checkpoints *at* `at_step` and
    /// yields. Resume loses no work.
    Preempt {
        /// SCF iteration / MD outer step at which the job is preempted.
        at_step: usize,
    },
    /// Rank fault (the PR 5 failure model): the attempt dies at
    /// `at_step`, and only the last *periodic* checkpoint survives —
    /// resume re-executes the steps since, and must still reproduce the
    /// uninterrupted numbers bitwise.
    Fault {
        /// SCF iteration / MD outer step at which the attempt dies.
        at_step: usize,
    },
}

impl Disruption {
    /// Whether this spec injects any failure.
    pub fn is_disruptive(&self) -> bool {
        !matches!(self, Disruption::None)
    }
}

/// One submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Billing/quota identity.
    pub tenant: String,
    /// The computation.
    pub kind: JobKind,
    /// Base scheduling priority (higher runs sooner).
    pub priority: u32,
    /// Ranks requested from the shared pool (clamped by the pool).
    pub nranks: usize,
    /// Per-job determinism knobs; never read from the environment.
    pub seeds: SeedConfig,
    /// Deterministic failure injection (first attempt only).
    pub disruption: Disruption,
}

impl JobSpec {
    /// A minimal spec: priority 0, one rank, default seeds, no
    /// disruption.
    pub fn new(tenant: &str, kind: JobKind) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            kind,
            priority: 0,
            nranks: 1,
            seeds: SeedConfig::default(),
            disruption: Disruption::None,
        }
    }

    /// Builder-style priority override.
    pub fn with_priority(mut self, priority: u32) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Builder-style rank-request override.
    pub fn with_nranks(mut self, nranks: usize) -> JobSpec {
        self.nranks = nranks;
        self
    }

    /// Builder-style seed-config override.
    pub fn with_seeds(mut self, seeds: SeedConfig) -> JobSpec {
        self.seeds = seeds;
        self
    }

    /// Builder-style disruption override.
    pub fn with_disruption(mut self, disruption: Disruption) -> JobSpec {
        self.disruption = disruption;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let s = JobSpec::new(
            "acme",
            JobKind::Scf {
                system: ScfSystem::LiH,
                incremental_fock: false,
            },
        );
        assert_eq!(s.kind.label(), "scf:lih");
        assert_eq!(
            JobKind::Screening {
                system: "pc".into(),
                extent: 16,
                norb: 4,
                seed: 3
            }
            .label(),
            "screen:pc#3"
        );
    }

    #[test]
    fn builders_compose() {
        let s = JobSpec::new(
            "a",
            JobKind::Md {
                n_waters: 2,
                n_outer: 3,
                n_inner: 2,
                temperature: 300.0,
            },
        )
        .with_priority(7)
        .with_nranks(4)
        .with_disruption(Disruption::Preempt { at_step: 2 });
        assert_eq!(s.priority, 7);
        assert_eq!(s.nranks, 4);
        assert!(s.disruption.is_disruptive());
    }

    #[test]
    fn scf_systems_have_atoms() {
        for sys in [
            ScfSystem::H2,
            ScfSystem::LiH,
            ScfSystem::Water,
            ScfSystem::Helium,
        ] {
            assert!(!sys.molecule().atoms.is_empty(), "{}", sys.name());
        }
    }
}
