//! Job specifications: what a tenant submits to the service.
//!
//! A [`JobSpec`] is a complete, self-contained description of one batch
//! computation — the physical problem ([`JobKind`]), the tenant it bills
//! to, its scheduling priority, the rank-pool slice it wants, and the
//! per-job determinism knobs ([`SeedConfig`]). Nothing in a spec reads
//! the process environment: two tenants with different seeds coexist in
//! one service without racing on env vars (the PR 9 satellite that
//! motivated `SeedConfig`).
//!
//! [`Disruption`] injects deterministic failures for the soak tests:
//! a job preempted or faulted at a known step must *resume from its
//! checkpoint* and land on bit-identical final numbers.

use liair_basis::systems::Solvent;
use liair_basis::{systems, Molecule};
use liair_runtime::SeedConfig;
use liair_xc::Functional;

/// The small SCF systems the service schedules (each converges in a few
/// iterations at STO-3G — real work, but cheap enough to soak-test with
/// hundreds of jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScfSystem {
    /// H₂ at equilibrium.
    H2,
    /// Lithium hydride.
    LiH,
    /// A single water molecule.
    Water,
    /// A helium atom.
    Helium,
}

impl ScfSystem {
    /// The geometry this system names.
    pub fn molecule(self) -> Molecule {
        match self {
            ScfSystem::H2 => systems::h2(),
            ScfSystem::LiH => systems::lih(),
            ScfSystem::Water => systems::water(),
            ScfSystem::Helium => systems::helium(),
        }
    }

    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            ScfSystem::H2 => "h2",
            ScfSystem::LiH => "lih",
            ScfSystem::Water => "water",
            ScfSystem::Helium => "helium",
        }
    }
}

/// What one job computes.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Converge an RHF SCF on a named small molecule. Checkpointable per
    /// iteration through [`liair_scf::ScfSession`].
    Scf {
        /// Which molecule.
        system: ScfSystem,
        /// Incremental (difference-density) Fock builds.
        incremental_fock: bool,
    },
    /// An r-RESPA MTS trajectory on a seeded water box under the
    /// classical force field (tether-split slow correction).
    /// Checkpointable per outer step through [`liair_md::MdCheckpoint`].
    Md {
        /// Molecules in the box.
        n_waters: usize,
        /// Outer (slow-force) steps.
        n_outer: usize,
        /// Inner steps per outer step.
        n_inner: usize,
        /// Thermalization temperature (K).
        temperature: f64,
    },
    /// A grid-exchange screening evaluation on a synthetic solvent
    /// snapshot: Gaussian proxy orbitals placed deterministically by
    /// `seed`, total exchange energy through the incremental engine.
    /// Same `(system, extent, norb, seed)` ⇒ identical orbitals ⇒ a warm
    /// cross-job cache reproduces the cold result bit-for-bit.
    Screening {
        /// Solvent label (cache namespace).
        system: String,
        /// Cubic grid extent per axis.
        extent: usize,
        /// Proxy orbital count.
        norb: usize,
        /// Geometry seed.
        seed: u64,
    },
    /// The campaign's quantum observable: the reaction (interaction)
    /// energy of the solvent·Li₂O₂ contact complex against its isolated
    /// fragments, `E_int = E(complex) − E(solvent) − E(Li₂O₂)`, at RHF
    /// plus a post-SCF `functional` total, with HOMO–LUMO gaps of the
    /// complex and the free solvent as oxidative-stability proxies.
    /// Checkpointable during the (dominant) complex SCF stage.
    Reaction {
        /// Which candidate solvent.
        solvent: Solvent,
        /// Post-SCF functional for the reported interaction energy
        /// (`Functional::Hf` reproduces the RHF number exactly).
        functional: Functional,
    },
    /// The campaign's dynamical observable: an r-RESPA MTS trajectory of
    /// an electrolyte box (`box_n³ − 1` solvent molecules around one
    /// Li₂O₂ cluster), accumulating the Li–O radial distribution
    /// function and solvent bond-scission events along the way.
    /// Checkpointable per outer step, including the RDF histogram.
    Solvation {
        /// Which candidate solvent fills the box.
        solvent: Solvent,
        /// Lattice side: `box_n³ − 1` solvent molecules + 1 Li₂O₂.
        box_n: usize,
        /// Geometry seed (lattice orientations).
        seed: u64,
        /// Outer (slow-force) MTS steps.
        n_outer: usize,
        /// Inner steps per outer step.
        n_inner: usize,
        /// Thermostat target (K); campaigns run hot for accelerated
        /// degradation.
        temperature: f64,
    },
}

impl JobKind {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            JobKind::Scf { system, .. } => format!("scf:{}", system.name()),
            JobKind::Md { n_waters, .. } => format!("md:w{n_waters}"),
            JobKind::Screening { system, seed, .. } => format!("screen:{system}#{seed}"),
            JobKind::Reaction {
                solvent,
                functional,
            } => format!("reaction:{}:{}", solvent.key(), functional.name()),
            JobKind::Solvation {
                solvent,
                box_n,
                seed,
                ..
            } => format!("solvation:{}:n{box_n}#{seed}", solvent.key()),
        }
    }
}

/// Deterministic failure injection, applied on a job's *first* attempt
/// only — the resumed attempt must run undisturbed to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disruption {
    /// Run to completion.
    None,
    /// Scheduler preemption: the runner checkpoints *at* `at_step` and
    /// yields. Resume loses no work.
    Preempt {
        /// SCF iteration / MD outer step at which the job is preempted.
        at_step: usize,
    },
    /// Rank fault (the PR 5 failure model): the attempt dies at
    /// `at_step`, and only the last *periodic* checkpoint survives —
    /// resume re-executes the steps since, and must still reproduce the
    /// uninterrupted numbers bitwise.
    Fault {
        /// SCF iteration / MD outer step at which the attempt dies.
        at_step: usize,
    },
}

impl Disruption {
    /// Whether this spec injects any failure.
    pub fn is_disruptive(&self) -> bool {
        !matches!(self, Disruption::None)
    }
}

/// Why a [`JobBuilder`] refused to produce a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Tenant names are quota keys; an empty one would alias every
    /// anonymous submitter onto one budget.
    EmptyTenant,
    /// A size/step parameter that must be ≥ 1 was 0.
    ZeroParam(&'static str),
    /// A physical parameter outside its sane range.
    BadParam {
        /// Which field.
        field: &'static str,
        /// What went wrong.
        why: &'static str,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyTenant => write!(f, "tenant must be non-empty"),
            SpecError::ZeroParam(field) => write!(f, "{field} must be at least 1"),
            SpecError::BadParam { field, why } => write!(f, "{field}: {why}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Billing/quota identity.
    pub tenant: String,
    /// The computation.
    pub kind: JobKind,
    /// Base scheduling priority (higher runs sooner).
    pub priority: u32,
    /// Ranks requested from the shared pool (clamped by the pool).
    pub nranks: usize,
    /// Per-job determinism knobs; never read from the environment.
    pub seeds: SeedConfig,
    /// Deterministic failure injection (first attempt only).
    pub disruption: Disruption,
}

impl JobSpec {
    /// Typed entry point: an RHF SCF job on a named small molecule.
    pub fn scf(system: ScfSystem) -> JobBuilder {
        JobBuilder::new(JobKind::Scf {
            system,
            incremental_fock: false,
        })
    }

    /// Typed entry point: an MTS MD job on a seeded water box.
    pub fn md(n_waters: usize, n_outer: usize, n_inner: usize) -> JobBuilder {
        JobBuilder::new(JobKind::Md {
            n_waters,
            n_outer,
            n_inner,
            temperature: 300.0,
        })
    }

    /// Typed entry point: a grid-exchange screening job on a synthetic
    /// solvent snapshot.
    pub fn screening(system: &str, extent: usize, norb: usize, seed: u64) -> JobBuilder {
        JobBuilder::new(JobKind::Screening {
            system: system.to_string(),
            extent,
            norb,
            seed,
        })
    }

    /// Typed entry point: a reaction-energy job on a solvent·Li₂O₂
    /// complex.
    pub fn reaction(solvent: Solvent, functional: Functional) -> JobBuilder {
        JobBuilder::new(JobKind::Reaction {
            solvent,
            functional,
        })
    }

    /// Typed entry point: a solvation-shell MD job on an electrolyte
    /// box.
    pub fn solvation(solvent: Solvent, box_n: usize, seed: u64) -> JobBuilder {
        JobBuilder::new(JobKind::Solvation {
            solvent,
            box_n,
            seed,
            n_outer: 4,
            n_inner: 2,
            temperature: 400.0,
        })
    }

    /// Generic entry point when the kind is already in hand.
    pub fn builder(kind: JobKind) -> JobBuilder {
        JobBuilder::new(kind)
    }

    /// A minimal spec: priority 0, one rank, default seeds, no
    /// disruption.
    #[deprecated(
        since = "0.10.0",
        note = "use the typed builders (`JobSpec::scf`, `JobSpec::md`, \
                `JobSpec::screening`, …) or `JobSpec::builder(kind)`"
    )]
    pub fn new(tenant: &str, kind: JobKind) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            kind,
            priority: 0,
            nranks: 1,
            seeds: SeedConfig::default(),
            disruption: Disruption::None,
        }
    }

    /// Builder-style priority override.
    #[deprecated(since = "0.10.0", note = "use `JobBuilder::priority`")]
    pub fn with_priority(mut self, priority: u32) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Builder-style rank-request override.
    #[deprecated(since = "0.10.0", note = "use `JobBuilder::nranks`")]
    pub fn with_nranks(mut self, nranks: usize) -> JobSpec {
        self.nranks = nranks;
        self
    }

    /// Builder-style seed-config override.
    #[deprecated(since = "0.10.0", note = "use `JobBuilder::seeds`")]
    pub fn with_seeds(mut self, seeds: SeedConfig) -> JobSpec {
        self.seeds = seeds;
        self
    }

    /// Builder-style disruption override.
    #[deprecated(since = "0.10.0", note = "use `JobBuilder::disruption`")]
    pub fn with_disruption(mut self, disruption: Disruption) -> JobSpec {
        self.disruption = disruption;
        self
    }
}

/// Validating builder behind the typed [`JobSpec`] entry points.
///
/// Every knob has a sane default (tenant `"default"`, priority 0, one
/// rank, [`SeedConfig::default`], no disruption); [`JobBuilder::build`]
/// checks the accumulated spec and is the only way out, so an invalid
/// spec (empty tenant, zero-sized box, non-finite temperature, …) is
/// unrepresentable downstream of it.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    kind: JobKind,
    tenant: String,
    priority: u32,
    nranks: usize,
    seeds: SeedConfig,
    disruption: Disruption,
}

impl JobBuilder {
    fn new(kind: JobKind) -> JobBuilder {
        JobBuilder {
            kind,
            tenant: "default".to_string(),
            priority: 0,
            nranks: 1,
            seeds: SeedConfig::default(),
            disruption: Disruption::None,
        }
    }

    /// Billing/quota identity (default `"default"`).
    pub fn tenant(mut self, tenant: &str) -> JobBuilder {
        self.tenant = tenant.to_string();
        self
    }

    /// Base scheduling priority (default 0; higher runs sooner).
    pub fn priority(mut self, priority: u32) -> JobBuilder {
        self.priority = priority;
        self
    }

    /// Ranks requested from the shared pool (default 1).
    pub fn nranks(mut self, nranks: usize) -> JobBuilder {
        self.nranks = nranks;
        self
    }

    /// Full per-job seed configuration.
    pub fn seeds(mut self, seeds: SeedConfig) -> JobBuilder {
        self.seeds = seeds;
        self
    }

    /// Shorthand: override only the MD seed of the job's seed config.
    pub fn md_seed(mut self, seed: u64) -> JobBuilder {
        self.seeds = self.seeds.with_md_seed(seed);
        self
    }

    /// Toggle incremental (difference-density) Fock builds; no-op for
    /// non-SCF kinds.
    pub fn incremental_fock(mut self, on: bool) -> JobBuilder {
        if let JobKind::Scf {
            incremental_fock, ..
        } = &mut self.kind
        {
            *incremental_fock = on;
        }
        self
    }

    /// Thermalization temperature in K; no-op for non-MD kinds.
    pub fn temperature(mut self, t: f64) -> JobBuilder {
        match &mut self.kind {
            JobKind::Md { temperature, .. } | JobKind::Solvation { temperature, .. } => {
                *temperature = t;
            }
            _ => {}
        }
        self
    }

    /// MTS step counts; no-op for non-MD kinds.
    pub fn steps(mut self, outer: usize, inner: usize) -> JobBuilder {
        match &mut self.kind {
            JobKind::Md {
                n_outer, n_inner, ..
            }
            | JobKind::Solvation {
                n_outer, n_inner, ..
            } => {
                *n_outer = outer;
                *n_inner = inner;
            }
            _ => {}
        }
        self
    }

    /// Deterministic failure injection (default none).
    pub fn disruption(mut self, disruption: Disruption) -> JobBuilder {
        self.disruption = disruption;
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<JobSpec, SpecError> {
        if self.tenant.is_empty() {
            return Err(SpecError::EmptyTenant);
        }
        if self.nranks == 0 {
            return Err(SpecError::ZeroParam("nranks"));
        }
        match &self.kind {
            JobKind::Scf { .. } | JobKind::Reaction { .. } => {}
            JobKind::Md {
                n_waters,
                n_outer,
                n_inner,
                temperature,
            } => {
                if *n_waters == 0 {
                    return Err(SpecError::ZeroParam("n_waters"));
                }
                if *n_outer == 0 {
                    return Err(SpecError::ZeroParam("n_outer"));
                }
                if *n_inner == 0 {
                    return Err(SpecError::ZeroParam("n_inner"));
                }
                if !temperature.is_finite() || *temperature <= 0.0 {
                    return Err(SpecError::BadParam {
                        field: "temperature",
                        why: "must be finite and positive",
                    });
                }
            }
            JobKind::Screening { extent, norb, .. } => {
                if *extent == 0 {
                    return Err(SpecError::ZeroParam("extent"));
                }
                if *norb == 0 {
                    return Err(SpecError::ZeroParam("norb"));
                }
            }
            JobKind::Solvation {
                box_n,
                n_outer,
                n_inner,
                temperature,
                ..
            } => {
                if *box_n < 2 {
                    return Err(SpecError::BadParam {
                        field: "box_n",
                        why: "electrolyte box needs box_n >= 2 (box_n^3 - 1 solvent molecules)",
                    });
                }
                if *n_outer == 0 {
                    return Err(SpecError::ZeroParam("n_outer"));
                }
                if *n_inner == 0 {
                    return Err(SpecError::ZeroParam("n_inner"));
                }
                if !temperature.is_finite() || *temperature <= 0.0 {
                    return Err(SpecError::BadParam {
                        field: "temperature",
                        why: "must be finite and positive",
                    });
                }
            }
        }
        Ok(JobSpec {
            tenant: self.tenant,
            kind: self.kind,
            priority: self.priority,
            nranks: self.nranks,
            seeds: self.seeds,
            disruption: self.disruption,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let s = JobSpec::scf(ScfSystem::LiH).tenant("acme").build().unwrap();
        assert_eq!(s.kind.label(), "scf:lih");
        assert_eq!(s.tenant, "acme");
        assert_eq!(
            JobKind::Screening {
                system: "pc".into(),
                extent: 16,
                norb: 4,
                seed: 3
            }
            .label(),
            "screen:pc#3"
        );
        assert_eq!(
            JobKind::Reaction {
                solvent: Solvent::Dmso,
                functional: Functional::Pbe0
            }
            .label(),
            "reaction:dmso:PBE0"
        );
        assert_eq!(
            JobKind::Solvation {
                solvent: Solvent::Dme,
                box_n: 2,
                seed: 5,
                n_outer: 4,
                n_inner: 2,
                temperature: 400.0
            }
            .label(),
            "solvation:dme:n2#5"
        );
    }

    #[test]
    fn builders_compose() {
        let s = JobSpec::md(2, 3, 2)
            .tenant("a")
            .priority(7)
            .nranks(4)
            .disruption(Disruption::Preempt { at_step: 2 })
            .build()
            .unwrap();
        assert_eq!(s.priority, 7);
        assert_eq!(s.nranks, 4);
        assert!(s.disruption.is_disruptive());
        match s.kind {
            JobKind::Md {
                n_waters,
                n_outer,
                n_inner,
                temperature,
            } => {
                assert_eq!((n_waters, n_outer, n_inner), (2, 3, 2));
                assert_eq!(temperature, 300.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            JobSpec::scf(ScfSystem::H2).tenant("").build().unwrap_err(),
            SpecError::EmptyTenant
        );
        assert_eq!(
            JobSpec::md(0, 3, 2).build().unwrap_err(),
            SpecError::ZeroParam("n_waters")
        );
        assert_eq!(
            JobSpec::screening("pc", 8, 0, 1).build().unwrap_err(),
            SpecError::ZeroParam("norb")
        );
        assert!(matches!(
            JobSpec::solvation(Solvent::Dmso, 1, 0).build().unwrap_err(),
            SpecError::BadParam { field: "box_n", .. }
        ));
        assert!(matches!(
            JobSpec::md(2, 3, 2)
                .temperature(f64::NAN)
                .build()
                .unwrap_err(),
            SpecError::BadParam {
                field: "temperature",
                ..
            }
        ));
        assert_eq!(
            JobSpec::scf(ScfSystem::H2).nranks(0).build().unwrap_err(),
            SpecError::ZeroParam("nranks")
        );
    }

    #[test]
    fn builder_knobs_reach_the_kind() {
        let s = JobSpec::scf(ScfSystem::Water)
            .incremental_fock(true)
            .md_seed(99)
            .build()
            .unwrap();
        assert!(matches!(
            s.kind,
            JobKind::Scf {
                incremental_fock: true,
                ..
            }
        ));
        assert_eq!(s.seeds.resolve_md_seed(None), 99);

        let s = JobSpec::solvation(Solvent::EthyleneCarbonate, 2, 1)
            .steps(6, 3)
            .temperature(500.0)
            .build()
            .unwrap();
        match s.kind {
            JobKind::Solvation {
                n_outer,
                n_inner,
                temperature,
                ..
            } => {
                assert_eq!((n_outer, n_inner), (6, 3));
                assert_eq!(temperature, 500.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    /// The deprecated constructors must keep producing specs identical
    /// to the builder's for one release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let old = JobSpec::new(
            "acme",
            JobKind::Scf {
                system: ScfSystem::LiH,
                incremental_fock: false,
            },
        )
        .with_priority(3)
        .with_nranks(2)
        .with_seeds(SeedConfig::default().with_md_seed(7))
        .with_disruption(Disruption::Fault { at_step: 1 });
        let new = JobSpec::scf(ScfSystem::LiH)
            .tenant("acme")
            .priority(3)
            .nranks(2)
            .seeds(SeedConfig::default().with_md_seed(7))
            .disruption(Disruption::Fault { at_step: 1 })
            .build()
            .unwrap();
        assert_eq!(old, new);
    }

    #[test]
    fn scf_systems_have_atoms() {
        for sys in [
            ScfSystem::H2,
            ScfSystem::LiH,
            ScfSystem::Water,
            ScfSystem::Helium,
        ] {
            assert!(!sys.molecule().atoms.is_empty(), "{}", sys.name());
        }
    }
}
