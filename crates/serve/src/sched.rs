//! Priority-aged job queue.
//!
//! Plain priority scheduling starves low-priority tenants whenever a
//! high-priority stream keeps the queue non-empty. The standard batch
//! remedy is *aging*: a job's effective priority grows with its wait, so
//! every job eventually outbids fresh arrivals. Here age is measured in
//! *scheduling decisions* (logical ticks), not wall seconds — the same
//! job mix always schedules in the same order, which is what the
//! bit-identity soak tests need.
//!
//! Ties (equal effective priority) break FIFO by submission sequence, so
//! equal-priority tenants get fair ordering rather than hash order.

/// One queued entry: the payload plus its scheduling metadata.
#[derive(Debug)]
struct Queued<T> {
    item: T,
    base_priority: u32,
    /// Submission sequence number (FIFO tiebreak, also the age origin).
    seq: u64,
    /// Tick at which the entry was (re-)enqueued.
    born: u64,
}

/// A priority queue with tick-based aging.
#[derive(Debug)]
pub struct AgedQueue<T> {
    entries: Vec<Queued<T>>,
    next_seq: u64,
    tick: u64,
    /// Effective-priority points gained per tick of waiting.
    aging_rate: u64,
}

impl<T> AgedQueue<T> {
    /// Queue whose entries gain `aging_rate` priority points per
    /// scheduling tick they wait.
    pub fn new(aging_rate: u64) -> AgedQueue<T> {
        AgedQueue {
            entries: Vec::new(),
            next_seq: 0,
            tick: 0,
            aging_rate,
        }
    }

    /// Enqueue with a base priority. Returns the submission sequence
    /// number.
    pub fn push(&mut self, item: T, base_priority: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Queued {
            item,
            base_priority,
            seq,
            born: self.tick,
        });
        seq
    }

    /// Re-enqueue a previously popped item (a preempted job going back to
    /// wait) keeping its original sequence number — its age origin resets
    /// to now, but its FIFO position among equals is preserved.
    pub fn requeue(&mut self, item: T, base_priority: u32, seq: u64) {
        self.entries.push(Queued {
            item,
            base_priority,
            seq,
            born: self.tick,
        });
    }

    fn effective(&self, q: &Queued<T>) -> u64 {
        q.base_priority as u64 + self.aging_rate * (self.tick - q.born)
    }

    /// Pop the best entry: highest effective priority, FIFO among ties.
    /// Advances the aging tick. Returns `(item, base_priority, seq)`.
    pub fn pop(&mut self) -> Option<(T, u32, u64)> {
        self.pop_where(|_| true)
    }

    /// Pop the best entry among those satisfying `eligible` — the
    /// backfill hook: when the head job's rank request cannot currently
    /// be leased, a smaller job may run instead of idling the pool.
    /// Advances the aging tick (every scheduling decision ages the
    /// queue, even a backfilled one).
    pub fn pop_where<F: Fn(&T) -> bool>(&mut self, eligible: F) -> Option<(T, u32, u64)> {
        self.tick += 1;
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, q)| eligible(&q.item))
            .max_by(|(_, a), (_, b)| {
                self.effective(a)
                    .cmp(&self.effective(b))
                    // FIFO: lower seq wins a tie, so compare reversed.
                    .then(b.seq.cmp(&a.seq))
            })
            .map(|(i, _)| i)?;
        let q = self.entries.swap_remove(best);
        Some((q.item, q.base_priority, q.seq))
    }

    /// Entries still waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_priority_pops_first_fifo_on_ties() {
        let mut q = AgedQueue::new(0);
        q.push("low", 1);
        q.push("hi", 5);
        q.push("low2", 1);
        assert_eq!(q.pop().unwrap().0, "hi");
        assert_eq!(q.pop().unwrap().0, "low", "FIFO among equals");
        assert_eq!(q.pop().unwrap().0, "low2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn aging_lets_old_jobs_outbid_fresh_high_priority() {
        // rate 2/tick: a priority-0 job that sits through 3 scheduling
        // decisions (e.g. its rank request was never leasable) outbids a
        // fresh priority-5 arrival on the 4th.
        let mut q = AgedQueue::new(2);
        q.push("old", 0);
        for _ in 0..3 {
            // Scheduling decisions that can't run "old" (no eligible
            // entry) still advance the aging tick.
            assert!(q.pop_where(|_| false).is_none());
        }
        q.push("fresh", 5);
        // old: 0 + 2·4 = 8 beats fresh: 5 + 2·1 = 7.
        assert_eq!(q.pop().unwrap().0, "old", "aged past the fresh job");
    }

    #[test]
    fn pop_where_backfills_around_ineligible_head() {
        let mut q = AgedQueue::new(0);
        q.push(("big", 16usize), 9);
        q.push(("small", 2usize), 1);
        // Only 4 ranks free: the priority-9 head is ineligible.
        let (item, _, _) = q.pop_where(|&(_, ranks)| ranks <= 4).unwrap();
        assert_eq!(item.0, "small");
        assert_eq!(q.len(), 1, "big job still waiting");
    }

    #[test]
    fn requeue_preserves_fifo_position_among_equals() {
        let mut q = AgedQueue::new(0);
        q.push("first", 3);
        q.push("second", 3);
        let (item, p, seq) = q.pop().unwrap();
        assert_eq!(item, "first");
        q.requeue(item, p, seq);
        // Same priority, original seq: "first" still precedes "second".
        assert_eq!(q.pop().unwrap().0, "first");
    }
}
