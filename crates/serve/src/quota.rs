//! Per-tenant admission control.
//!
//! The service is multi-tenant: one misbehaving tenant must not be able
//! to flood the queue or monopolize the rank pool. Admission is checked
//! once, at submit time, against the tenant's [`TenantQuota`]; a rejected
//! job never enters the queue (the tenant sees the rejection immediately,
//! matching batch-system convention).

use std::collections::HashMap;

/// Limits one tenant may not exceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Jobs a tenant may have admitted (queued + running) at once.
    pub max_jobs: usize,
    /// Largest rank slice one of the tenant's jobs may request.
    pub max_ranks_per_job: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_jobs: usize::MAX,
            max_ranks_per_job: usize::MAX,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already has `max_jobs` admitted.
    TooManyJobs,
    /// The job asked for more ranks than the tenant's per-job cap.
    RanksOverQuota,
    /// The job asked for more ranks than the whole pool owns — it could
    /// never be scheduled.
    RanksOverPool,
}

/// Admission bookkeeping: per-tenant quotas, live admitted counts, and
/// rejection counters.
#[derive(Debug, Default)]
pub struct Admission {
    default_quota: TenantQuota,
    quotas: HashMap<String, TenantQuota>,
    admitted: HashMap<String, usize>,
    rejections: u64,
}

impl Admission {
    /// Admission under one default quota for every tenant.
    pub fn new(default_quota: TenantQuota) -> Admission {
        Admission {
            default_quota,
            ..Admission::default()
        }
    }

    /// Override the quota for one tenant.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.quotas.insert(tenant.to_string(), quota);
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// Try to admit a job of `nranks` for `tenant` against a pool of
    /// `pool_total` ranks. On success the tenant's admitted count is
    /// incremented (release it with [`Admission::release`] when the job
    /// leaves the system).
    pub fn try_admit(
        &mut self,
        tenant: &str,
        nranks: usize,
        pool_total: usize,
    ) -> Result<(), RejectReason> {
        let quota = self.quota_for(tenant);
        let live = self.admitted.get(tenant).copied().unwrap_or(0);
        let verdict = if live >= quota.max_jobs {
            Err(RejectReason::TooManyJobs)
        } else if nranks > quota.max_ranks_per_job {
            Err(RejectReason::RanksOverQuota)
        } else if nranks > pool_total {
            Err(RejectReason::RanksOverPool)
        } else {
            Ok(())
        };
        match verdict {
            Ok(()) => {
                *self.admitted.entry(tenant.to_string()).or_insert(0) += 1;
                Ok(())
            }
            Err(r) => {
                self.rejections += 1;
                Err(r)
            }
        }
    }

    /// A previously admitted job of `tenant` left the system (completed
    /// or was abandoned).
    pub fn release(&mut self, tenant: &str) {
        if let Some(n) = self.admitted.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }

    /// Jobs currently admitted for `tenant`.
    pub fn admitted(&self, tenant: &str) -> usize {
        self.admitted.get(tenant).copied().unwrap_or(0)
    }

    /// Total submissions refused so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_count_quota_is_enforced_and_released() {
        let mut adm = Admission::new(TenantQuota {
            max_jobs: 2,
            max_ranks_per_job: 8,
        });
        assert!(adm.try_admit("a", 1, 16).is_ok());
        assert!(adm.try_admit("a", 1, 16).is_ok());
        assert_eq!(adm.try_admit("a", 1, 16), Err(RejectReason::TooManyJobs));
        // Another tenant is unaffected.
        assert!(adm.try_admit("b", 1, 16).is_ok());
        adm.release("a");
        assert!(adm.try_admit("a", 1, 16).is_ok());
        assert_eq!(adm.rejections(), 1);
    }

    #[test]
    fn rank_quotas_are_enforced() {
        let mut adm = Admission::new(TenantQuota {
            max_jobs: 10,
            max_ranks_per_job: 4,
        });
        assert_eq!(adm.try_admit("a", 8, 16), Err(RejectReason::RanksOverQuota));
        // Within quota but beyond the whole pool: unschedulable.
        assert_eq!(adm.try_admit("a", 4, 2), Err(RejectReason::RanksOverPool));
        assert!(adm.try_admit("a", 4, 16).is_ok());
        assert_eq!(adm.admitted("a"), 1);
    }

    #[test]
    fn per_tenant_override_beats_default() {
        let mut adm = Admission::new(TenantQuota {
            max_jobs: 1,
            max_ranks_per_job: 1,
        });
        adm.set_quota(
            "vip",
            TenantQuota {
                max_jobs: 100,
                max_ranks_per_job: 100,
            },
        );
        assert!(adm.try_admit("vip", 32, 64).is_ok());
        assert_eq!(
            adm.try_admit("pleb", 32, 64),
            Err(RejectReason::RanksOverQuota)
        );
    }
}
