//! The solvent-screening campaign driver — the layer the whole stack
//! was built for.
//!
//! A [`CampaignSpec`] names a grid — solvents × concentrations × seeds ×
//! functionals — and [`run_campaign`] fans it across the batch service
//! as ordinary [`JobSpec`]s: one *reaction* job per (solvent,
//! functional) measuring the interaction energy of the solvent·Li₂O₂
//! contact complex, and one *solvation* job per (solvent, concentration,
//! seed) measuring Li–O structure and bond scissions in an MTS
//! electrolyte-box trajectory. The members inherit everything the serve
//! layer already guarantees — admission, aged scheduling, rank leases,
//! cross-job caches, checkpoint/restart — so a campaign survives
//! preemptions and faults without losing determinism.
//!
//! The result is a ranked stability report ([`CampaignReport`]). Its
//! [`CampaignReport::canonical_json`] rendering is **deterministic by
//! construction**: members appear in expansion order (never completion
//! order), every energy is serialized with its exact bit pattern, and
//! scheduling-dependent fields (latency, attempt counts, cache
//! counters) are excluded. Same spec + seeds ⇒ byte-identical report,
//! across worker counts and under injected disruptions — the property
//! `crates/serve/tests/campaign.rs` pins.

use crate::job::{Disruption, JobKind, JobSpec, SpecError};
use crate::runner::Observables;
use crate::service::{run_and_verify, DisruptionRecord, JobOutcome, JobReport, ServiceConfig};
use liair_basis::systems::Solvent;
use liair_core::CachePoolStats;
use liair_xc::Functional;

/// Score penalty per solvent-internal bond broken in a solvation
/// trajectory (mHa-equivalent). Degradation dominates: one scission
/// outweighs typical binding-energy spreads.
const BROKEN_BOND_PENALTY: f64 = 10.0;
/// Weight of the complex HOMO–LUMO gap (mHa) in the stability score —
/// a small oxidative-stability bonus, never decisive on its own.
const GAP_WEIGHT: f64 = 0.01;

/// A solvent-screening campaign: the grid, the ensemble parameters, and
/// how its jobs are submitted.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Candidate solvents, in report order.
    pub solvents: Vec<Solvent>,
    /// Post-SCF functionals of the reaction ensemble (one reaction job
    /// per solvent × functional). Empty ⇒ no reaction members.
    pub functionals: Vec<Functional>,
    /// Electrolyte concentrations as lattice sides `box_n` (a box holds
    /// `box_n³ − 1` solvent molecules + Li₂O₂). Empty ⇒ no solvation
    /// members.
    pub concentrations: Vec<usize>,
    /// Trajectory seeds of the solvation ensemble (one job per solvent ×
    /// concentration × seed).
    pub seeds: Vec<u64>,
    /// Outer MTS steps per solvation trajectory.
    pub n_outer: usize,
    /// Inner steps per outer step.
    pub n_inner: usize,
    /// Trajectory temperature (K).
    pub temperature: f64,
    /// Tenant the campaign bills to.
    pub tenant: String,
    /// Scheduling priority of every member.
    pub priority: u32,
    /// Injected disruptions, as `(member_index, disruption)` over the
    /// expansion order — the campaign's resilience knob.
    pub disruptions: Vec<(usize, Disruption)>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            solvents: Solvent::all().to_vec(),
            functionals: vec![Functional::Hf, Functional::Pbe0],
            concentrations: vec![2],
            seeds: vec![2014],
            n_outer: 6,
            n_inner: 2,
            temperature: 400.0,
            tenant: "campaign".to_string(),
            priority: 0,
            disruptions: Vec::new(),
        }
    }
}

fn all_distinct<T: PartialEq>(xs: &[T]) -> bool {
    xs.iter()
        .enumerate()
        .all(|(i, x)| !xs[..i].iter().any(|y| y == x))
}

impl CampaignSpec {
    /// Members this grid expands to.
    pub fn n_members(&self) -> usize {
        self.solvents.len()
            * (self.functionals.len() + self.concentrations.len() * self.seeds.len())
    }

    /// Expand the grid into service jobs, in the fixed **expansion
    /// order** every downstream aggregate uses: for each solvent (spec
    /// order), its reaction members (functional order), then its
    /// solvation members (concentration-major, seed-minor).
    ///
    /// Validates the grid: non-empty, duplicate-free axes (a duplicate
    /// member would be indistinguishable in the result set), in-range
    /// disruption indices. Per-member validation is the
    /// [`crate::job::JobBuilder`]'s.
    pub fn expand(&self) -> Result<Vec<JobSpec>, SpecError> {
        if self.solvents.is_empty() {
            return Err(SpecError::ZeroParam("solvents"));
        }
        if self.n_members() == 0 {
            return Err(SpecError::BadParam {
                field: "campaign",
                why: "no members: both functionals and concentrations×seeds are empty",
            });
        }
        for (xs_distinct, field) in [
            (all_distinct(&self.solvents), "solvents"),
            (all_distinct(&self.functionals), "functionals"),
            (all_distinct(&self.concentrations), "concentrations"),
            (all_distinct(&self.seeds), "seeds"),
        ] {
            if !xs_distinct {
                return Err(SpecError::BadParam {
                    field,
                    why: "must be duplicate-free (duplicate members are indistinguishable)",
                });
            }
        }
        let mut jobs = Vec::with_capacity(self.n_members());
        for &solvent in &self.solvents {
            for &functional in &self.functionals {
                jobs.push(
                    JobSpec::reaction(solvent, functional)
                        .tenant(&self.tenant)
                        .priority(self.priority)
                        .build()?,
                );
            }
            for &box_n in &self.concentrations {
                for &seed in &self.seeds {
                    jobs.push(
                        JobSpec::solvation(solvent, box_n, seed)
                            .tenant(&self.tenant)
                            .priority(self.priority)
                            .steps(self.n_outer, self.n_inner)
                            .temperature(self.temperature)
                            .build()?,
                    );
                }
            }
        }
        for &(idx, disruption) in &self.disruptions {
            if idx >= jobs.len() {
                return Err(SpecError::BadParam {
                    field: "disruptions",
                    why: "member index out of range",
                });
            }
            jobs[idx].disruption = disruption;
        }
        Ok(jobs)
    }
}

/// One campaign member's result, in expansion order.
#[derive(Debug, Clone)]
pub struct MemberRecord {
    /// Stable member label ([`JobKind::label`]).
    pub label: String,
    /// Which solvent this member probes.
    pub solvent: Solvent,
    /// Headline numbers (deterministic).
    pub outcome: JobOutcome,
    /// Physical observables (deterministic).
    pub observables: Observables,
    /// Resume accounting and verification stamp (scheduling-dependent;
    /// excluded from the canonical report).
    pub disruption: DisruptionRecord,
    /// Wall time (scheduling-dependent; excluded from the canonical
    /// report).
    pub latency_s: f64,
}

/// Per-solvent aggregate over the campaign ensemble, every mean taken
/// in expansion order (fixed summation order ⇒ bit-stable).
#[derive(Debug, Clone)]
pub struct SolventVerdict {
    /// The candidate.
    pub solvent: Solvent,
    /// Interaction energy per functional, `(functional name, mHa)`, in
    /// spec order.
    pub e_int_by_functional: Vec<(&'static str, f64)>,
    /// Mean interaction energy over the functional ensemble (mHa);
    /// `None` without reaction members.
    pub e_int_mha: Option<f64>,
    /// Complex HOMO–LUMO gap (mHa), from the first reaction member.
    pub gap_complex_mha: Option<f64>,
    /// Isolated-solvent HOMO–LUMO gap (mHa).
    pub gap_solvent_mha: Option<f64>,
    /// Solvent-internal bonds broken, summed over solvation members.
    pub bonds_broken: usize,
    /// Mean Li–O coordination number over solvation members.
    pub li_o_coordination: Option<f64>,
    /// Mean first-peak radius of the Li–O RDF (Bohr).
    pub rdf_peak_r: Option<f64>,
    /// The ranking key — see [`SolventVerdict::score`].
    pub stability_score: f64,
}

impl SolventVerdict {
    /// The deterministic stability score: interaction energy in mHa
    /// (weaker binding to the peroxide ⇒ higher, i.e. the solvent
    /// coordinates rather than reacts), plus a small HOMO–LUMO-gap
    /// bonus (oxidative stability), minus a dominant penalty per bond
    /// scission (outright degradation). Higher is more stable.
    fn score(&self) -> f64 {
        let mut s = 0.0;
        if let Some(e) = self.e_int_mha {
            s += e;
        }
        if let Some(g) = self.gap_complex_mha {
            s += GAP_WEIGHT * g;
        }
        s - BROKEN_BOND_PENALTY * self.bonds_broken as f64
    }
}

/// What a campaign produced: the ranked verdicts, the raw members, and
/// batch-level accounting.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-solvent verdicts, most stable first (ties broken by spec
    /// order — deterministic).
    pub ranking: Vec<SolventVerdict>,
    /// Every completed member, in expansion order.
    pub members: Vec<MemberRecord>,
    /// Labels of members that never completed (rejected at admission).
    pub missing: Vec<String>,
    /// Cross-job cache counters (informational, scheduling-dependent).
    pub cache: CachePoolStats,
    /// Batch wall time (informational).
    pub elapsed_s: f64,
    /// Fraction of resumed members that bit-matched their uninterrupted
    /// reference (1.0 when nothing was disrupted).
    pub bit_identical_fraction: f64,
}

impl CampaignReport {
    /// Rank of `solvent` in the stability ranking (0 = most stable).
    pub fn rank_of(&self, solvent: Solvent) -> Option<usize> {
        self.ranking.iter().position(|v| v.solvent == solvent)
    }

    /// The deterministic rendering of the report: members in expansion
    /// order, every float carried as its exact bit pattern (hex of
    /// `f64::to_bits`) next to a human-readable value, and nothing
    /// scheduling-dependent — no wall times, attempt counts, cache or
    /// profile counters. Two campaigns with the same spec and seeds
    /// produce byte-identical strings regardless of worker count or
    /// injected disruptions.
    pub fn canonical_json(&self) -> String {
        fn f(x: f64) -> String {
            format!(
                "{{\"value\":\"{:.17e}\",\"bits\":\"{:#018x}\"}}",
                x,
                x.to_bits()
            )
        }
        fn opt(x: Option<f64>) -> String {
            x.map_or_else(|| "null".to_string(), f)
        }
        let mut out = String::from("{\"ranking\":[");
        for (i, v) in self.ranking.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"solvent\":\"{}\",\"stability_score\":{},\"e_int_mha\":{},\
                 \"e_int_by_functional\":[{}],\"gap_complex_mha\":{},\"gap_solvent_mha\":{},\
                 \"bonds_broken\":{},\"li_o_coordination\":{},\"rdf_peak_r\":{}}}",
                v.solvent.key(),
                f(v.stability_score),
                opt(v.e_int_mha),
                v.e_int_by_functional
                    .iter()
                    .map(|(name, e)| format!("{{\"functional\":\"{name}\",\"mha\":{}}}", f(*e)))
                    .collect::<Vec<_>>()
                    .join(","),
                opt(v.gap_complex_mha),
                opt(v.gap_solvent_mha),
                v.bonds_broken,
                opt(v.li_o_coordination),
                opt(v.rdf_peak_r),
            ));
        }
        out.push_str("],\"members\":[");
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let o = &m.observables;
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"final_energy\":{},\"steps\":{},\"converged\":{},\
                 \"e_int_rhf\":{},\"e_int_functional\":{},\"gap_complex\":{},\"gap_solvent\":{},\
                 \"rdf_li_o_peak_r\":{},\"rdf_li_o_peak_g\":{},\"li_o_coordination\":{},\
                 \"bonds_broken\":{}}}",
                m.label,
                f(m.outcome.final_energy),
                m.outcome.steps,
                m.outcome.converged,
                opt(o.e_int_rhf),
                opt(o.e_int_functional),
                opt(o.gap_complex),
                opt(o.gap_solvent),
                opt(o.rdf_li_o_peak_r),
                opt(o.rdf_li_o_peak_g),
                opt(o.li_o_coordination),
                o.bonds_broken
                    .map_or_else(|| "null".to_string(), |n| n.to_string()),
            ));
        }
        out.push_str("],\"missing\":[");
        out.push_str(
            &self
                .missing
                .iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("]}");
        out
    }
}

/// Run a campaign: expand the grid, drive it through the service (with
/// bit-verification of every resumed member), and aggregate the ranked
/// stability report.
pub fn run_campaign(cfg: ServiceConfig, spec: &CampaignSpec) -> Result<CampaignReport, SpecError> {
    let jobs = spec.expand()?;
    let service_report = run_and_verify(cfg, jobs.clone());

    // Re-associate completions with members by kind equality — the grid
    // is duplicate-free, so the kind identifies the member regardless of
    // completion order.
    let mut members = Vec::new();
    let mut missing = Vec::new();
    for job in &jobs {
        match service_report
            .completed
            .iter()
            .find(|r| r.spec.kind == job.kind)
        {
            Some(r) => members.push(member_record(r)),
            None => missing.push(job.kind.label()),
        }
    }

    let mut ranking: Vec<SolventVerdict> = spec
        .solvents
        .iter()
        .map(|&solvent| verdict_for(solvent, spec, &members))
        .collect();
    // Stable sort + spec-ordered input ⇒ deterministic tie-breaking.
    ranking.sort_by(|a, b| b.stability_score.total_cmp(&a.stability_score));

    Ok(CampaignReport {
        ranking,
        members,
        missing,
        cache: service_report.cache,
        elapsed_s: service_report.elapsed_s,
        bit_identical_fraction: service_report.bit_identical_fraction(),
    })
}

fn member_record(r: &JobReport) -> MemberRecord {
    let solvent = match &r.spec.kind {
        JobKind::Reaction { solvent, .. } | JobKind::Solvation { solvent, .. } => *solvent,
        other => unreachable!("campaigns expand to reaction/solvation jobs only, got {other:?}"),
    };
    MemberRecord {
        label: r.spec.kind.label(),
        solvent,
        outcome: r.outcome.clone(),
        observables: r.observables.clone(),
        disruption: r.disruption.clone(),
        latency_s: r.latency_s,
    }
}

fn verdict_for(solvent: Solvent, spec: &CampaignSpec, members: &[MemberRecord]) -> SolventVerdict {
    let mine: Vec<&MemberRecord> = members.iter().filter(|m| m.solvent == solvent).collect();
    // Reaction aggregates, in functional (= expansion) order.
    let mut e_int_by_functional = Vec::new();
    for &functional in &spec.functionals {
        let label = JobKind::Reaction {
            solvent,
            functional,
        }
        .label();
        if let Some(m) = mine.iter().find(|m| m.label == label) {
            if let Some(e) = m.observables.e_int_functional {
                e_int_by_functional.push((functional.name(), e * 1e3));
            }
        }
    }
    let e_int_mha = if e_int_by_functional.is_empty() {
        None
    } else {
        Some(
            e_int_by_functional.iter().map(|&(_, e)| e).sum::<f64>()
                / e_int_by_functional.len() as f64,
        )
    };
    let first_reaction = mine.iter().find(|m| m.observables.gap_complex.is_some());
    let gap_complex_mha = first_reaction.and_then(|m| m.observables.gap_complex.map(|g| g * 1e3));
    let gap_solvent_mha = first_reaction.and_then(|m| m.observables.gap_solvent.map(|g| g * 1e3));
    // Solvation aggregates, in expansion order.
    let solvation: Vec<&&MemberRecord> = mine
        .iter()
        .filter(|m| m.observables.bonds_broken.is_some())
        .collect();
    let bonds_broken = solvation
        .iter()
        .map(|m| m.observables.bonds_broken.unwrap_or(0))
        .sum();
    let mean = |get: fn(&Observables) -> Option<f64>| -> Option<f64> {
        let vals: Vec<f64> = solvation
            .iter()
            .filter_map(|m| get(&m.observables))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    let mut v = SolventVerdict {
        solvent,
        e_int_by_functional,
        e_int_mha,
        gap_complex_mha,
        gap_solvent_mha,
        bonds_broken,
        li_o_coordination: mean(|o| o.li_o_coordination),
        rdf_peak_r: mean(|o| o.rdf_li_o_peak_r),
        stability_score: 0.0,
    };
    v.stability_score = v.score();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_fixed_and_validated() {
        let spec = CampaignSpec {
            solvents: vec![Solvent::PropyleneCarbonate, Solvent::Dme],
            functionals: vec![Functional::Hf],
            concentrations: vec![2],
            seeds: vec![1, 2],
            ..CampaignSpec::default()
        };
        assert_eq!(spec.n_members(), 6);
        let jobs = spec.expand().unwrap();
        let labels: Vec<String> = jobs.iter().map(|j| j.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "reaction:pc:HF",
                "solvation:pc:n2#1",
                "solvation:pc:n2#2",
                "reaction:dme:HF",
                "solvation:dme:n2#1",
                "solvation:dme:n2#2",
            ]
        );
        assert!(jobs.iter().all(|j| j.tenant == "campaign"));
    }

    #[test]
    fn bad_grids_are_rejected() {
        let empty = CampaignSpec {
            solvents: vec![],
            ..CampaignSpec::default()
        };
        assert_eq!(
            empty.expand().unwrap_err(),
            SpecError::ZeroParam("solvents")
        );

        let dup = CampaignSpec {
            seeds: vec![3, 3],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            dup.expand().unwrap_err(),
            SpecError::BadParam { field: "seeds", .. }
        ));

        let no_members = CampaignSpec {
            functionals: vec![],
            concentrations: vec![],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            no_members.expand().unwrap_err(),
            SpecError::BadParam {
                field: "campaign",
                ..
            }
        ));

        let bad_disruption = CampaignSpec {
            functionals: vec![],
            disruptions: vec![(99, Disruption::Preempt { at_step: 1 })],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            bad_disruption.expand().unwrap_err(),
            SpecError::BadParam {
                field: "disruptions",
                ..
            }
        ));
    }

    #[test]
    fn disruption_overrides_land_on_the_right_member() {
        let spec = CampaignSpec {
            solvents: vec![Solvent::Dmso],
            functionals: vec![],
            concentrations: vec![2],
            seeds: vec![7, 8],
            disruptions: vec![(1, Disruption::Fault { at_step: 2 })],
            ..CampaignSpec::default()
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(!jobs[0].disruption.is_disruptive());
        assert_eq!(jobs[1].disruption, Disruption::Fault { at_step: 2 });
    }
}
