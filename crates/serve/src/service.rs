//! The batch service: admission → queue → rank-pool lease → runner.
//!
//! [`Service::run`] drives a whole batch to completion over a fixed pool
//! of worker threads and a shared [`RankPool`]:
//!
//! 1. every submission passes per-tenant **admission** ([`crate::quota`]);
//!    rejected jobs never enter the queue;
//! 2. admitted jobs wait in the **aged priority queue** ([`crate::sched`]);
//! 3. the scheduler dispatches the best *leasable* job — the head job
//!    waits for its rank slice while smaller jobs backfill around it —
//!    attaching a [`RankLease`] that travels with the work item and
//!    returns its ranks on drop, even if the worker panics;
//! 4. workers run attempts through [`crate::runner`]; preempted/faulted
//!    attempts come back with a checkpoint and are **requeued** (keeping
//!    their FIFO seq, so aging treats the wait fairly); the follow-up
//!    attempt resumes instead of restarting.
//!
//! Screening jobs share one [`ExchangeCachePool`] across tenants: the
//! cross-job cache at the heart of this PR. Everything the acceptance
//! criteria measure — p99 latency, cache hit rate, resume counts — lands
//! in [`ServiceReport`].

use crate::job::{Disruption, JobSpec};
use crate::quota::{Admission, RejectReason, TenantQuota};
use crate::runner::{run_job, Attempt, JobCheckpoint, JobOutput, Observables};
use crate::sched::AgedQueue;
use liair_core::{BuildProfile, CachePoolStats, ExchangeCachePool, IncStats};
use liair_runtime::{PoolStats, RankPool};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Service-wide knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrent worker threads (attempts in flight).
    pub max_workers: usize,
    /// Ranks in the shared pool leases are carved from.
    pub pool_ranks: usize,
    /// Cross-job exchange-cache capacity (parked caches).
    pub cache_capacity: usize,
    /// Default per-tenant quota.
    pub quota: TenantQuota,
    /// Priority points a waiting job gains per scheduling tick.
    pub aging_rate: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_workers: 4,
            pool_ranks: 8,
            cache_capacity: 16,
            quota: TenantQuota::default(),
            aging_rate: 1,
        }
    }
}

/// The physics a completed job produced — the stable, headline part of
/// a [`JobReport`]. Every field is a deterministic function of the spec
/// and is bit-compared by the verification layers.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's headline energy (converged SCF energy, final MD
    /// potential, screening exchange energy, reaction interaction
    /// energy).
    pub final_energy: f64,
    /// SCF iterations / MD inner steps / screening pairs evaluated.
    pub steps: usize,
    /// SCF convergence flag (`true` for non-SCF kinds).
    pub converged: bool,
}

/// Execution instrumentation of a completed job: cache-reuse counters
/// and the build profile of its last exchange build. Informational —
/// *not* part of the deterministic surface (the FFT plan-cache window is
/// process-wide state, and scheduling decides which job warms a cache).
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    /// Incremental-exchange reuse counters (screening jobs).
    pub inc: IncStats,
    /// Build instrumentation of the job's last exchange build.
    pub build: BuildProfile,
    /// Whether the job's cross-job cache came warm out of the pool.
    pub cache_warm: bool,
}

/// What failure injection did to a job, and whether the resumed result
/// was verified against an uninterrupted reference.
#[derive(Debug, Clone, Default)]
pub struct DisruptionRecord {
    /// Whether the spec injected a disruption.
    pub injected: bool,
    /// Attempts it took (1 = never disrupted).
    pub attempts: usize,
    /// Whether the job came back from a checkpoint at least once.
    pub resumed: bool,
    /// Largest checkpoint this job shipped between attempts (bytes).
    pub checkpoint_bytes: usize,
    /// `Some(true)` when [`run_and_verify`] bit-compared this resumed
    /// job against an uninterrupted reference and it matched;
    /// `Some(false)` on mismatch; `None` when no verification ran.
    pub bit_verified: Option<bool>,
}

/// Per-job accounting in the final report: the public result surface of
/// [`Service::run`] (re-exported through the `liair` facade).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// The completed run's headline numbers.
    pub outcome: JobOutcome,
    /// Kind-specific physical observables.
    pub observables: Observables,
    /// Execution instrumentation (informational, non-deterministic).
    pub profile: ProfileSummary,
    /// Failure injection and resume accounting.
    pub disruption: DisruptionRecord,
    /// Submit → completion wall time (seconds).
    pub latency_s: f64,
}

/// Everything one batch produced.
#[derive(Debug)]
pub struct ServiceReport {
    /// Completed jobs, in completion order.
    pub completed: Vec<JobReport>,
    /// Rejected submissions and why.
    pub rejected: Vec<(JobSpec, RejectReason)>,
    /// Cross-job cache counters at the end of the batch.
    pub cache: CachePoolStats,
    /// Rank-pool counters at the end of the batch.
    pub pool: PoolStats,
    /// Whole-batch wall time (seconds).
    pub elapsed_s: f64,
}

impl ServiceReport {
    /// Completed jobs per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed.len() as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// The `q`-quantile of job latency (`0.99` for p99), 0.0 when empty.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.completed.iter().map(|r| r.latency_s).collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let idx = ((lat.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        lat[idx]
    }

    /// Jobs that were disrupted on their first attempt and later
    /// completed via a checkpoint resume.
    pub fn resumed_jobs(&self) -> usize {
        self.completed
            .iter()
            .filter(|r| r.disruption.resumed)
            .count()
    }

    /// Jobs whose spec injected a disruption (the resume denominator).
    pub fn disrupted_jobs(&self) -> usize {
        self.completed
            .iter()
            .filter(|r| r.disruption.injected)
            .count()
    }

    /// Fraction of bit-verified jobs that matched their uninterrupted
    /// reference (1.0 when nothing was verified — vacuous truth). Only
    /// meaningful after [`run_and_verify`].
    pub fn bit_identical_fraction(&self) -> f64 {
        let verified: Vec<bool> = self
            .completed
            .iter()
            .filter_map(|r| r.disruption.bit_verified)
            .collect();
        if verified.is_empty() {
            return 1.0;
        }
        verified.iter().filter(|&&ok| ok).count() as f64 / verified.len() as f64
    }
}

/// Work item traveling scheduler → worker. The lease rides along and is
/// dropped (ranks returned) when the attempt finishes.
struct WorkItem {
    id: usize,
    spec: JobSpec,
    checkpoint: Option<JobCheckpoint>,
    lease: liair_runtime::RankLease,
}

/// Result traveling worker → scheduler.
struct WorkDone {
    id: usize,
    attempt: Attempt,
}

/// In-flight bookkeeping per admitted job.
struct Tracked {
    spec: JobSpec,
    submitted: Instant,
    attempts: usize,
    resumed: bool,
    checkpoint_bytes: usize,
    checkpoint: Option<JobCheckpoint>,
    /// FIFO sequence from first enqueue, preserved across requeues.
    seq: Option<u64>,
}

/// The batch service. Construct, [`Service::run`] a batch, read the
/// report.
pub struct Service {
    cfg: ServiceConfig,
}

impl Service {
    /// A service with the given knobs.
    pub fn new(cfg: ServiceConfig) -> Service {
        Service { cfg }
    }

    /// Run `jobs` to completion and report.
    pub fn run(&self, jobs: Vec<JobSpec>) -> ServiceReport {
        let t_start = Instant::now();
        let pool = RankPool::new(self.cfg.pool_ranks);
        let cache = ExchangeCachePool::new(self.cfg.cache_capacity);
        let mut admission = Admission::new(self.cfg.quota);
        let mut rejected = Vec::new();
        let mut tracked: Vec<Tracked> = Vec::new();
        let mut queue: AgedQueue<usize> = AgedQueue::new(self.cfg.aging_rate);

        for spec in jobs {
            match admission.try_admit(&spec.tenant, spec.nranks, pool.total()) {
                Ok(()) => {
                    let id = tracked.len();
                    tracked.push(Tracked {
                        spec,
                        submitted: t_start, // overwritten below; placeholder
                        attempts: 0,
                        resumed: false,
                        checkpoint_bytes: 0,
                        checkpoint: None,
                        seq: None,
                    });
                    let t = tracked.last_mut().expect("just pushed");
                    t.submitted = Instant::now();
                    let seq = queue.push(id, t.spec.priority);
                    t.seq = Some(seq);
                }
                Err(reason) => rejected.push((spec, reason)),
            }
        }

        let (done_tx, done_rx) = mpsc::channel::<WorkDone>();
        let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
        let work_rx = Mutex::new(work_rx);
        let mut completed: Vec<JobReport> = Vec::new();

        std::thread::scope(|scope| {
            for _ in 0..self.cfg.max_workers.max(1) {
                let done_tx = done_tx.clone();
                let work_rx = &work_rx;
                let cache = &cache;
                scope.spawn(move || {
                    loop {
                        // Hold the receiver lock only for the recv itself.
                        let item = match work_rx.lock().unwrap().recv() {
                            Ok(item) => item,
                            Err(_) => break, // scheduler hung up: drain done
                        };
                        let nranks = item.lease.nranks();
                        let attempt =
                            run_job(&item.spec, item.checkpoint.as_ref(), nranks, Some(cache));
                        drop(item.lease); // return ranks before reporting
                        if done_tx
                            .send(WorkDone {
                                id: item.id,
                                attempt,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(done_tx); // scheduler's own clones only via workers

            let mut inflight = 0usize;
            loop {
                // Dispatch while a worker slot and a leasable job exist.
                while inflight < self.cfg.max_workers.max(1) && !queue.is_empty() {
                    let popped = queue.pop_where(|&id| {
                        pool.available() >= tracked[id].spec.nranks.clamp(1, pool.total())
                    });
                    let Some((id, _priority, _seq)) = popped else {
                        break; // nothing leasable right now
                    };
                    let want = tracked[id].spec.nranks;
                    let lease = pool
                        .try_lease(want)
                        .expect("pop_where checked availability and we are the only leaser");
                    let t = &mut tracked[id];
                    t.attempts += 1;
                    let item = WorkItem {
                        id,
                        spec: t.spec.clone(),
                        checkpoint: t.checkpoint.take(),
                        lease,
                    };
                    work_tx
                        .send(item)
                        .expect("workers outlive the scheduler loop");
                    inflight += 1;
                }
                if inflight == 0 {
                    break; // queue empty (or head unleasable with nothing running — impossible: leases all returned)
                }
                let done = done_rx.recv().expect("a worker holds the sender");
                inflight -= 1;
                let t = &mut tracked[done.id];
                match done.attempt {
                    Attempt::Done(output) => {
                        admission.release(&t.spec.tenant);
                        let JobOutput {
                            final_energy,
                            steps,
                            converged,
                            observables,
                            inc,
                            profile,
                            cache_warm,
                        } = output;
                        completed.push(JobReport {
                            spec: t.spec.clone(),
                            outcome: JobOutcome {
                                final_energy,
                                steps,
                                converged,
                            },
                            observables,
                            profile: ProfileSummary {
                                inc,
                                build: profile,
                                cache_warm,
                            },
                            disruption: DisruptionRecord {
                                injected: t.spec.disruption.is_disruptive(),
                                attempts: t.attempts,
                                resumed: t.resumed,
                                checkpoint_bytes: t.checkpoint_bytes,
                                bit_verified: None,
                            },
                            latency_s: t.submitted.elapsed().as_secs_f64(),
                        });
                    }
                    Attempt::Preempted(ck) | Attempt::Faulted(ck) => {
                        t.checkpoint_bytes = t.checkpoint_bytes.max(ck.nbytes());
                        t.checkpoint = Some(ck);
                        t.resumed = true;
                        let seq = t.seq.expect("admitted jobs were enqueued");
                        queue.requeue(done.id, t.spec.priority, seq);
                    }
                }
            }
            drop(work_tx); // hang up: workers exit their recv loops
        });

        ServiceReport {
            completed,
            rejected,
            cache: cache.stats(),
            pool: pool.stats(),
            elapsed_s: t_start.elapsed().as_secs_f64(),
        }
    }
}

/// Convenience: run `jobs` under `cfg` and verify every resumed job
/// bitwise — headline energy *and* observables — against an
/// uninterrupted reference run (references are memoized per distinct
/// `(kind, seeds)`). Each resumed job's
/// [`DisruptionRecord::bit_verified`] is stamped with the result; read
/// the batch-level answer off
/// [`ServiceReport::bit_identical_fraction`].
pub fn run_and_verify(cfg: ServiceConfig, jobs: Vec<JobSpec>) -> ServiceReport {
    let mut report = Service::new(cfg).run(jobs);
    let mut references: Vec<(JobSpec, JobOutput)> = Vec::new();
    for job in report.completed.iter_mut().filter(|r| r.disruption.resumed) {
        let probe = JobSpec {
            disruption: Disruption::None,
            priority: 0,
            nranks: 1,
            ..job.spec.clone()
        };
        let reference = match references.iter().find(|(s, _)| *s == probe) {
            Some((_, out)) => out.clone(),
            None => {
                let out = crate::runner::run_reference(&probe);
                references.push((probe, out.clone()));
                out
            }
        };
        let ok = job.outcome.final_energy.to_bits() == reference.final_energy.to_bits()
            && job.observables.bits_eq(&reference.observables);
        job.disruption.bit_verified = Some(ok);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ScfSystem;
    use liair_runtime::SeedConfig;

    fn small_batch() -> Vec<JobSpec> {
        vec![
            JobSpec::scf(ScfSystem::H2).tenant("a").build().unwrap(),
            JobSpec::screening("pc", 16, 3, 1)
                .tenant("a")
                .build()
                .unwrap(),
            JobSpec::screening("pc", 16, 3, 1)
                .tenant("b")
                .priority(2)
                .build()
                .unwrap(),
            JobSpec::md(2, 4, 2)
                .tenant("b")
                .seeds(SeedConfig::default().with_md_seed(5))
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn batch_completes_and_shares_the_cache() {
        let report = Service::new(ServiceConfig {
            max_workers: 2,
            ..ServiceConfig::default()
        })
        .run(small_batch());
        assert_eq!(report.completed.len(), 4);
        assert!(report.rejected.is_empty());
        // Two identical screening jobs: the second hits the shared cache
        // (they may run concurrently under 2 workers only if dispatched
        // together — with 2 workers and 4 jobs the screening pair is
        // dispatched in different waves, so at least one checkout hits).
        assert_eq!(report.cache.misses + report.cache.hits, 2);
        assert!(report.pool.granted >= 4);
        assert!(report.elapsed_s > 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn quota_rejections_surface_in_the_report() {
        let cfg = ServiceConfig {
            max_workers: 1,
            quota: TenantQuota {
                max_jobs: 1,
                max_ranks_per_job: 2,
            },
            ..ServiceConfig::default()
        };
        let jobs = vec![
            JobSpec::scf(ScfSystem::Helium).tenant("a").build().unwrap(),
            // Second job for the same tenant: over max_jobs.
            JobSpec::scf(ScfSystem::H2).tenant("a").build().unwrap(),
            // Over the per-job rank cap.
            JobSpec::scf(ScfSystem::H2)
                .tenant("b")
                .nranks(4)
                .build()
                .unwrap(),
        ];
        let report = Service::new(cfg).run(jobs);
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.rejected.len(), 2);
        assert!(report
            .rejected
            .iter()
            .any(|(_, r)| *r == crate::quota::RejectReason::TooManyJobs));
        assert!(report
            .rejected
            .iter()
            .any(|(_, r)| *r == crate::quota::RejectReason::RanksOverQuota));
    }

    #[test]
    fn disrupted_jobs_resume_and_verify_bit_identical() {
        let jobs = vec![
            JobSpec::scf(ScfSystem::LiH)
                .tenant("a")
                .disruption(crate::job::Disruption::Preempt { at_step: 3 })
                .build()
                .unwrap(),
            JobSpec::md(2, 5, 2)
                .tenant("b")
                .seeds(SeedConfig::default().with_md_seed(23))
                .disruption(crate::job::Disruption::Fault { at_step: 3 })
                .build()
                .unwrap(),
        ];
        let report = run_and_verify(
            ServiceConfig {
                max_workers: 2,
                ..ServiceConfig::default()
            },
            jobs,
        );
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.resumed_jobs(), 2);
        assert!(report
            .completed
            .iter()
            .all(|r| r.disruption.attempts == 2 && r.disruption.checkpoint_bytes > 0));
        assert!(report
            .completed
            .iter()
            .all(|r| r.disruption.bit_verified == Some(true)));
        assert_eq!(
            report.bit_identical_fraction(),
            1.0,
            "every resumed job must match bitwise"
        );
    }

    #[test]
    fn oversubscribed_ranks_serialize_via_leases() {
        // Pool of 2 ranks, every job wants 2: jobs must run one at a
        // time even with 4 workers — peak_leased never exceeds the pool.
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                JobSpec::screening("dme", 16, 3, i)
                    .tenant("a")
                    .nranks(2)
                    .build()
                    .unwrap()
            })
            .collect();
        let report = Service::new(ServiceConfig {
            max_workers: 4,
            pool_ranks: 2,
            ..ServiceConfig::default()
        })
        .run(jobs);
        assert_eq!(report.completed.len(), 4);
        assert!(report.pool.peak_leased <= 2);
        assert_eq!(report.pool.reclaimed, report.pool.granted);
    }
}
