//! # liair-serve
//!
//! A multi-tenant batch job service over the exchange engine: the
//! operational layer that turns one-shot calculations into a shared
//! facility, the way a BG/Q partition is actually consumed — many users,
//! many job kinds, one rank pool.
//!
//! * [`job`] — job specifications: SCF convergence, MTS-MD trajectories,
//!   grid-exchange screening evaluations; per-job
//!   [`SeedConfig`](liair_runtime::SeedConfig) so tenants never race on
//!   process environment;
//! * [`quota`] — per-tenant admission control (job-count and rank caps,
//!   rejection accounting);
//! * [`sched`] — priority queue with tick-based aging (no starvation,
//!   deterministic order) and small-job backfill;
//! * [`runner`] — attempt execution with bit-exact checkpoint/restart:
//!   preempted jobs resume from the exact preemption step, faulted jobs
//!   from the last periodic checkpoint, both landing bitwise on the
//!   uninterrupted numbers;
//! * [`service`] — the scheduler loop: admission → queue → rank-pool
//!   lease → worker threads, with the shared cross-job
//!   [`ExchangeCachePool`](liair_core::ExchangeCachePool) and the final
//!   [`ServiceReport`](service::ServiceReport);
//! * [`campaign`] — the solvent-screening campaign driver: a
//!   [`CampaignSpec`](campaign::CampaignSpec) grid (solvents ×
//!   concentrations × seeds × functionals) fanned across the service,
//!   aggregated into a deterministic ranked stability report.
//!
//! See DESIGN.md ("The serve layer" and "The campaign layer") for the
//! architecture and the cache keying/eviction policy.

pub mod campaign;
pub mod job;
pub mod quota;
pub mod runner;
pub mod sched;
pub mod service;

pub use campaign::{run_campaign, CampaignReport, CampaignSpec, MemberRecord, SolventVerdict};
pub use job::{Disruption, JobBuilder, JobKind, JobSpec, ScfSystem, SpecError};
pub use quota::{Admission, RejectReason, TenantQuota};
pub use runner::{run_job, run_reference, Attempt, JobCheckpoint, JobOutput, Observables};
pub use sched::AgedQueue;
pub use service::{
    run_and_verify, DisruptionRecord, JobOutcome, JobReport, ProfileSummary, Service,
    ServiceConfig, ServiceReport,
};
