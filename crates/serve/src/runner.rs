//! Job execution with checkpoint/restart.
//!
//! The runner executes one *attempt* of a job on whatever backend slice
//! the scheduler leased. An attempt ends three ways:
//!
//! * [`Attempt::Done`] — ran to completion, numbers attached;
//! * [`Attempt::Preempted`] — the injected preemption fired: the runner
//!   checkpointed *at* the preemption step, so resume loses nothing;
//! * [`Attempt::Faulted`] — the injected rank fault fired: only the last
//!   *periodic* checkpoint (every [`CHECKPOINT_EVERY`] steps) survives,
//!   so resume re-executes the lost steps.
//!
//! Either way the follow-up attempt starts from [`JobCheckpoint`] and —
//! because stepping is deterministic and checkpoints are bit-exact
//! (`liair-math::codec`, every float via `to_bits`) — must land on final
//! numbers bitwise equal to an uninterrupted run. That is the property
//! the soak test measures and DESIGN.md promises.
//!
//! Disruptions are injected on the **first attempt only**: the runner is
//! told whether it is resuming, and a resumed attempt runs undisturbed.

use crate::job::{Disruption, JobKind, JobSpec};
use liair_basis::systems::Solvent;
use liair_basis::{systems, Basis, Cell, Element, Molecule};
use liair_core::screening::{source_pairs, OrbitalInfo};
use liair_core::{
    BalanceStrategy, BuildProfile, ExchangeCachePool, ExecBackend, IncStats, SystemKey,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use liair_md::analysis::{rdf_peak, BondEvents, RdfAccumulator};
use liair_md::mts::SplitForceProvider;
use liair_md::{ForceField, MdCheckpoint, MdOptions, MdState, MtsOptions, Thermostat};
use liair_scf::{functional_energy, rhf, Method, ScfCheckpoint, ScfOptions, ScfSession};
use liair_xc::Functional;

/// Steps between the periodic checkpoints a fault falls back on.
pub const CHECKPOINT_EVERY: usize = 2;

/// Li–O attack distance (Bohr) of the reaction jobs' contact complexes —
/// the geometry `tab-battery` established for the degradation study.
pub const COMPLEX_LI_O_DIST: f64 = 3.6;

/// Li–O RDF extent (Bohr) of the solvation jobs.
const RDF_R_MAX: f64 = 12.0;
/// Li–O RDF bin count of the solvation jobs.
const RDF_NBINS: usize = 48;
/// First-shell cutoff (Bohr) for the reported Li–O coordination number.
const RDF_COORD_CUT: f64 = 5.0;
/// Bond-scission stretch criterion (relative to r₀) of the solvation
/// jobs — the Morse bonds are > 95 % dissociated past it.
const BOND_STRETCH: f64 = 1.5;

/// Fixed cubic cell edge (Bohr) of the screening snapshots.
const SCREEN_CELL_EDGE: f64 = 12.0;
/// Screening pair-list threshold.
const SCREEN_EPS: f64 = 1e-6;
/// Fingerprint tolerance of the screening jobs' incremental caches.
/// Identical orbitals have fingerprint distance exactly 0, so any
/// positive tolerance reuses them — and reuse of identical orbitals is
/// bit-identical to recomputation (the PR 2 property the cross-job cache
/// inherits).
const SCREEN_EPS_INC: f64 = 1e-9;

/// Resume state of an interrupted solvation trajectory: the MD state
/// plus the analysis accumulators, so a resumed attempt continues the
/// RDF histogram and bond-event ledger bit-exactly rather than
/// restarting them.
#[derive(Debug, Clone)]
pub struct SolvationCheckpoint {
    /// Serialized [`MdCheckpoint`].
    pub md: Vec<u8>,
    /// Li–O RDF histogram bins at the checkpoint.
    pub rdf_bins: Vec<f64>,
    /// RDF frames accumulated at the checkpoint.
    pub rdf_frames: usize,
    /// Distinct solvent-internal bonds broken so far (first-broken
    /// order, the [`BondEvents`] ledger).
    pub broken: Vec<usize>,
}

/// Serialized resume state of a suspended job.
#[derive(Debug, Clone)]
pub enum JobCheckpoint {
    /// An SCF session mid-convergence (SCF and reaction jobs — a
    /// reaction job checkpoints its dominant stage, the complex SCF).
    Scf(ScfCheckpoint),
    /// An MD trajectory mid-flight (serialized [`MdCheckpoint`]).
    Md(Vec<u8>),
    /// A solvation trajectory mid-flight: MD state + analysis state.
    Solvation(SolvationCheckpoint),
}

impl JobCheckpoint {
    /// Serialized size (what a real service would write to burst
    /// buffers; here it feeds the bench's checkpoint-bytes column).
    pub fn nbytes(&self) -> usize {
        match self {
            JobCheckpoint::Scf(ck) => ck.bytes.len(),
            JobCheckpoint::Md(b) => b.len(),
            JobCheckpoint::Solvation(ck) => {
                ck.md.len() + 8 * ck.rdf_bins.len() + 8 + 8 * ck.broken.len()
            }
        }
    }
}

/// Physical observables a job extracted, beyond its headline energy.
/// Every field is `None` unless the job kind computes it; all are
/// deterministic functions of the spec, so the soak and campaign layers
/// bit-compare them the same way they compare `final_energy`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observables {
    /// Reaction jobs: `E(complex) − E(solvent) − E(Li₂O₂)` at RHF (Ha).
    pub e_int_rhf: Option<f64>,
    /// Reaction jobs: the same interaction energy under the requested
    /// post-SCF functional (Ha). Equals `e_int_rhf` for `Hf`.
    pub e_int_functional: Option<f64>,
    /// Reaction jobs: HOMO–LUMO gap of the contact complex (Ha).
    pub gap_complex: Option<f64>,
    /// Reaction jobs: HOMO–LUMO gap of the isolated solvent (Ha).
    pub gap_solvent: Option<f64>,
    /// Solvation jobs: radius (Bohr) of the first Li–O RDF peak.
    pub rdf_li_o_peak_r: Option<f64>,
    /// Solvation jobs: height of the first Li–O RDF peak.
    pub rdf_li_o_peak_g: Option<f64>,
    /// Solvation jobs: mean Li–O coordination number within
    /// [`RDF_COORD_CUT`] Bohr.
    pub li_o_coordination: Option<f64>,
    /// Solvation jobs: distinct solvent-internal bonds broken.
    pub bonds_broken: Option<usize>,
}

impl Observables {
    /// Bitwise equality across every field — `to_bits`, not float `==`,
    /// so `-0.0 ≠ 0.0` and NaN equals itself. The comparison the
    /// verification layers use.
    pub fn bits_eq(&self, other: &Observables) -> bool {
        fn beq(a: Option<f64>, b: Option<f64>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                _ => false,
            }
        }
        beq(self.e_int_rhf, other.e_int_rhf)
            && beq(self.e_int_functional, other.e_int_functional)
            && beq(self.gap_complex, other.gap_complex)
            && beq(self.gap_solvent, other.gap_solvent)
            && beq(self.rdf_li_o_peak_r, other.rdf_li_o_peak_r)
            && beq(self.rdf_li_o_peak_g, other.rdf_li_o_peak_g)
            && beq(self.li_o_coordination, other.li_o_coordination)
            && self.bonds_broken == other.bonds_broken
    }
}

/// Numbers a completed job reports.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's headline number: converged SCF energy, final MD
    /// potential, total screening exchange energy, or reaction
    /// interaction energy. Bit-compared against the uninterrupted
    /// reference by the soak tests.
    pub final_energy: f64,
    /// SCF iterations / MD inner steps / screening pairs evaluated.
    pub steps: usize,
    /// SCF convergence flag (`true` for the other kinds).
    pub converged: bool,
    /// Kind-specific physical observables (campaign jobs).
    pub observables: Observables,
    /// Incremental-exchange reuse counters (screening jobs).
    pub inc: IncStats,
    /// Build instrumentation of the job's last exchange build (screening
    /// jobs; carries the FFT plan-cache window among the rest).
    pub profile: BuildProfile,
    /// Whether this job's screening cache came warm out of the pool.
    pub cache_warm: bool,
}

/// How one attempt ended.
// One Attempt per job attempt: the size skew vs a checkpoint variant is
// irrelevant at that rate, and boxing would ripple through every match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Attempt {
    /// Ran to completion.
    Done(JobOutput),
    /// Preemption point reached; checkpoint taken at that exact step.
    Preempted(JobCheckpoint),
    /// Rank fault; only the last periodic checkpoint survives.
    Faulted(JobCheckpoint),
}

/// The backend a rank lease of `nranks` maps to: the message-passing
/// engine backend for multi-rank leases, rayon for single-rank ones.
/// Engine builds are bit-identical across all of these (the PR 3/4
/// guarantee), which is what makes lease-sized backends safe to mix with
/// cross-job caches.
pub fn backend_for_lease(nranks: usize) -> ExecBackend {
    if nranks > 1 {
        ExecBackend::Comm {
            nranks,
            strategy: BalanceStrategy::GreedyLpt,
        }
    } else {
        ExecBackend::Rayon
    }
}

/// Execute one attempt of `spec`.
///
/// `resume` carries the checkpoint of a previous attempt (disruptions
/// are not re-injected when it is `Some`). `nranks` is the size of the
/// rank lease the scheduler granted. `cache` is the shared cross-job
/// exchange cache pool (screening jobs only).
pub fn run_job(
    spec: &JobSpec,
    resume: Option<&JobCheckpoint>,
    nranks: usize,
    cache: Option<&ExchangeCachePool>,
) -> Attempt {
    let disruption = if resume.is_some() {
        Disruption::None
    } else {
        spec.disruption
    };
    match &spec.kind {
        JobKind::Scf {
            system,
            incremental_fock,
        } => run_scf(spec, *system, *incremental_fock, resume, disruption),
        JobKind::Md {
            n_waters,
            n_outer,
            n_inner,
            temperature,
        } => run_md(
            spec,
            *n_waters,
            *n_outer,
            *n_inner,
            *temperature,
            resume,
            disruption,
        ),
        JobKind::Screening {
            system,
            extent,
            norb,
            seed,
        } => run_screening(system, *extent, *norb, *seed, nranks, cache),
        JobKind::Reaction {
            solvent,
            functional,
        } => run_reaction(*solvent, *functional, resume, disruption),
        JobKind::Solvation {
            solvent,
            box_n,
            seed,
            n_outer,
            n_inner,
            temperature,
        } => run_solvation(
            *solvent,
            *box_n,
            *seed,
            *n_outer,
            *n_inner,
            *temperature,
            resume,
            disruption,
        ),
    }
}

/// Run `spec` uninterrupted on the default backend with no shared cache —
/// the reference the soak tests bit-compare resumed jobs against.
pub fn run_reference(spec: &JobSpec) -> JobOutput {
    let clean = JobSpec {
        disruption: Disruption::None,
        ..spec.clone()
    };
    match run_job(&clean, None, 1, None) {
        Attempt::Done(out) => out,
        _ => unreachable!("an undisrupted attempt always completes"),
    }
}

fn scf_options(incremental_fock: bool) -> ScfOptions {
    ScfOptions {
        incremental_fock,
        ..ScfOptions::default()
    }
}

/// Step an SCF session to convergence under the checkpoint/disruption
/// protocol shared by SCF and reaction jobs: `Err` is the interrupted
/// attempt (checkpoint attached), `Ok` the converged session.
#[allow(clippy::result_large_err)] // the Err is the attempt itself, moved straight out
fn drive_scf<'a>(
    mut session: ScfSession<'a>,
    disruption: Disruption,
) -> Result<ScfSession<'a>, Attempt> {
    let mut periodic: Option<ScfCheckpoint> = Some(session.checkpoint());
    while session.step() {
        let it = session.iterations();
        match disruption {
            Disruption::Preempt { at_step } if it == at_step && !session.done() => {
                return Err(Attempt::Preempted(JobCheckpoint::Scf(session.checkpoint())));
            }
            Disruption::Fault { at_step } if it == at_step && !session.done() => {
                let ck = periodic
                    .take()
                    .expect("an initial checkpoint always exists");
                return Err(Attempt::Faulted(JobCheckpoint::Scf(ck)));
            }
            _ => {}
        }
        if it.is_multiple_of(CHECKPOINT_EVERY) {
            periodic = Some(session.checkpoint());
        }
    }
    Ok(session)
}

fn run_scf(
    _spec: &JobSpec,
    system: crate::job::ScfSystem,
    incremental_fock: bool,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    let mol = system.molecule();
    let basis = Basis::sto3g(&mol);
    let opts = scf_options(incremental_fock);
    let session = match resume {
        Some(JobCheckpoint::Scf(ck)) => ScfSession::resume(&mol, &basis, ck)
            .expect("a checkpoint taken by this runner resumes against the same basis"),
        Some(_) => unreachable!("SCF job resumed with a non-SCF checkpoint"),
        None => ScfSession::new(&mol, &basis, &opts, Method::Rhf),
    };
    let session = match drive_scf(session, disruption) {
        Ok(s) => s,
        Err(attempt) => return attempt,
    };
    Attempt::Done(JobOutput {
        final_energy: session.energy(),
        steps: session.iterations(),
        converged: session.converged(),
        observables: Observables::default(),
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// SCF options of the reaction jobs — the `tab-battery` settings (the
/// bigger complexes need the headroom).
fn reaction_scf_options() -> ScfOptions {
    ScfOptions {
        energy_tol: 1e-7,
        max_iter: 150,
        ..Default::default()
    }
}

/// A reaction job: converge the solvent·Li₂O₂ complex (disruptable, the
/// dominant stage), then its isolated fragments (cheap, never
/// disrupted — rerun deterministically on resume), and report the
/// interaction energy plus frontier-orbital gaps.
fn run_reaction(
    solvent: Solvent,
    functional: Functional,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    let complex = systems::li2o2_complex(solvent, COMPLEX_LI_O_DIST);
    let basis_c = Basis::sto3g(&complex);
    let opts = reaction_scf_options();
    let session = match resume {
        Some(JobCheckpoint::Scf(ck)) => ScfSession::resume(&complex, &basis_c, ck)
            .expect("a checkpoint taken by this runner resumes against the same basis"),
        Some(_) => unreachable!("reaction job resumed with a non-SCF checkpoint"),
        None => ScfSession::new(&complex, &basis_c, &opts, Method::Rhf),
    };
    let session = match drive_scf(session, disruption) {
        Ok(s) => s,
        Err(attempt) => return attempt,
    };
    let steps = session.iterations();
    let res_c = session.into_result();

    let solv_mol = solvent.molecule();
    let basis_s = Basis::sto3g(&solv_mol);
    let res_s = rhf(&solv_mol, &basis_s, &opts);
    let cluster = systems::li2o2();
    let basis_x = Basis::sto3g(&cluster);
    let res_x = rhf(&cluster, &basis_x, &opts);

    let e_int_rhf = res_c.energy - res_s.energy - res_x.energy;
    // `Hf` is the RHF energy expression itself — skip the recompute so
    // the two columns are bitwise equal, not merely close.
    let e_int_fn = if functional == Functional::Hf {
        e_int_rhf
    } else {
        functional_energy(&complex, &basis_c, &res_c, functional, &opts)
            - functional_energy(&solv_mol, &basis_s, &res_s, functional, &opts)
            - functional_energy(&cluster, &basis_x, &res_x, functional, &opts)
    };
    Attempt::Done(JobOutput {
        final_energy: e_int_fn,
        steps,
        converged: res_c.converged && res_s.converged && res_x.converged,
        observables: Observables {
            e_int_rhf: Some(e_int_rhf),
            e_int_functional: Some(e_int_fn),
            gap_complex: res_c.homo_lumo_gap(),
            gap_solvent: res_s.homo_lumo_gap(),
            ..Default::default()
        },
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// The deterministic force split MD jobs integrate under: classical
/// force field fast part, a weak quartic tether to the *initial*
/// positions as the slow correction (the same split the MTS equivalence
/// proofs use). Reconstructable from the job spec alone — which is why
/// [`MdCheckpoint`] never serializes the provider.
pub struct TetherSplit {
    ff: ForceField,
    anchors: Vec<Vec3>,
    k: f64,
}

impl TetherSplit {
    /// Split anchored at `mol`'s current positions.
    pub fn new(mol: &Molecule, cell: Option<&Cell>, k: f64) -> TetherSplit {
        TetherSplit {
            ff: ForceField::from_molecule(mol, cell),
            anchors: mol.atoms.iter().map(|a| a.pos).collect(),
            k,
        }
    }

    /// The classical force field of the fast part (bond-scission
    /// detection reuses its bond list).
    pub fn force_field(&self) -> &ForceField {
        &self.ff
    }
}

impl SplitForceProvider for TetherSplit {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.ff.energy_forces(mol, cell)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        _cell: Option<&Cell>,
        _fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let mut e = 0.0;
        let forces = mol
            .atoms
            .iter()
            .zip(&self.anchors)
            .map(|(a, &r0)| {
                let d = a.pos - r0;
                let r2 = d.norm_sqr();
                e += 0.25 * self.k * r2 * r2;
                -d * (self.k * r2)
            })
            .collect();
        (e, forces)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_md(
    spec: &JobSpec,
    n_waters: usize,
    n_outer: usize,
    n_inner: usize,
    temperature: f64,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    let seed = spec.seeds.resolve_md_seed(None);
    // The provider is never serialized: it is a pure function of the job
    // spec (initial box geometry), reconstructed on every attempt.
    let (mol0, cell) = systems::water_box(n_waters, seed);
    let split = TetherSplit::new(&mol0, Some(&cell), 1e-4);
    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::NoseHoover {
            t_target: temperature,
            tau: 300.0,
        },
        mts: MtsOptions { n_inner },
    };
    let mut state = match resume {
        Some(JobCheckpoint::Md(bytes)) => MdCheckpoint::from_bytes(bytes)
            .expect("a checkpoint taken by this runner round-trips")
            .restore(),
        Some(_) => unreachable!("MD job resumed with a non-MD checkpoint"),
        None => {
            let mut st = MdState::new_split(mol0, Some(cell), &split);
            st.thermalize_seeded(temperature, Some(seed));
            st
        }
    };
    let mut periodic = MdCheckpoint::capture(&state).to_bytes();
    loop {
        let outer_done = state.step_count / n_inner;
        if outer_done >= n_outer {
            break;
        }
        state.step_mts(&split, &opts);
        let outer_done = state.step_count / n_inner;
        if outer_done >= n_outer {
            break;
        }
        match disruption {
            Disruption::Preempt { at_step } if outer_done == at_step => {
                let ck = MdCheckpoint::capture(&state).to_bytes();
                return Attempt::Preempted(JobCheckpoint::Md(ck));
            }
            Disruption::Fault { at_step } if outer_done == at_step => {
                return Attempt::Faulted(JobCheckpoint::Md(periodic));
            }
            _ => {}
        }
        if outer_done.is_multiple_of(CHECKPOINT_EVERY) {
            periodic = MdCheckpoint::capture(&state).to_bytes();
        }
    }
    Attempt::Done(JobOutput {
        final_energy: state.potential,
        steps: state.step_count,
        converged: true,
        observables: Observables::default(),
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// A solvation job: MTS-integrate an electrolyte box, accumulating the
/// Li–O RDF and solvent-internal bond scissions once per outer step.
/// The analysis accumulators checkpoint *with* the MD state
/// ([`SolvationCheckpoint`]), so a resumed trajectory's histogram is
/// bit-identical to an uninterrupted one.
#[allow(clippy::too_many_arguments)]
fn run_solvation(
    solvent: Solvent,
    box_n: usize,
    seed: u64,
    n_outer: usize,
    n_inner: usize,
    temperature: f64,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    // Spec-reconstructable, like the MD jobs' provider: geometry, force
    // field, and bond filter are pure functions of the job spec.
    let (mol0, cell) = systems::electrolyte_box(solvent, box_n, seed);
    let split = TetherSplit::new(&mol0, Some(&cell), 1e-4);
    // Solvent-internal bonds only: the cluster's Li–O/O–O bonds stretch
    // and reform as solvation forces act on it, and counting those would
    // charge the solvent for the peroxide's breathing. No solvent in the
    // candidate set has an O–O bond, and only the cluster has Li.
    let solvent_bonds: Vec<usize> = split
        .force_field()
        .bonds
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            let (ei, ej) = (mol0.atoms[b.i].element, mol0.atoms[b.j].element);
            ei != Element::Li && ej != Element::Li && !(ei == Element::O && ej == Element::O)
        })
        .map(|(idx, _)| idx)
        .collect();
    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::NoseHoover {
            t_target: temperature,
            tau: 300.0,
        },
        mts: MtsOptions { n_inner },
    };
    let mut rdf = RdfAccumulator::new(Element::Li, Element::O, RDF_R_MAX, RDF_NBINS);
    let mut events = BondEvents::default();
    let mut state = match resume {
        Some(JobCheckpoint::Solvation(ck)) => {
            rdf.set_state(ck.rdf_bins.clone(), ck.rdf_frames);
            events.broken = ck.broken.clone();
            MdCheckpoint::from_bytes(&ck.md)
                .expect("a checkpoint taken by this runner round-trips")
                .restore()
        }
        Some(_) => unreachable!("solvation job resumed with a non-solvation checkpoint"),
        None => {
            let mut st = MdState::new_split(mol0, Some(cell), &split);
            st.thermalize_seeded(temperature, Some(seed));
            st
        }
    };
    let capture = |state: &MdState, rdf: &RdfAccumulator, events: &BondEvents| {
        JobCheckpoint::Solvation(SolvationCheckpoint {
            md: MdCheckpoint::capture(state).to_bytes(),
            rdf_bins: rdf.bins.clone(),
            rdf_frames: rdf.frames(),
            broken: events.broken.clone(),
        })
    };
    let mut periodic = capture(&state, &rdf, &events);
    loop {
        if state.step_count / n_inner >= n_outer {
            break;
        }
        state.step_mts(&split, &opts);
        let outer_done = state.step_count / n_inner;
        // One analysis frame per completed outer step, *before* any
        // checkpoint of that step — the accumulators travel with it.
        rdf.add_frame(&state.mol, &cell);
        let broken_now: Vec<usize> = split
            .force_field()
            .broken_bonds(&state.mol, Some(&cell), BOND_STRETCH)
            .into_iter()
            .filter(|b| solvent_bonds.contains(b))
            .collect();
        events.record(&broken_now);
        if outer_done >= n_outer {
            break;
        }
        match disruption {
            Disruption::Preempt { at_step } if outer_done == at_step => {
                return Attempt::Preempted(capture(&state, &rdf, &events));
            }
            Disruption::Fault { at_step } if outer_done == at_step => {
                return Attempt::Faulted(periodic);
            }
            _ => {}
        }
        if outer_done.is_multiple_of(CHECKPOINT_EVERY) {
            periodic = capture(&state, &rdf, &events);
        }
    }
    let g = rdf.finish(&state.mol, &cell);
    let (peak_r, peak_g) = rdf_peak(&g);
    Attempt::Done(JobOutput {
        final_energy: state.potential,
        steps: state.step_count,
        converged: true,
        observables: Observables {
            rdf_li_o_peak_r: Some(peak_r),
            rdf_li_o_peak_g: Some(peak_g),
            li_o_coordination: Some(rdf.coordination_number(&state.mol, RDF_COORD_CUT)),
            bonds_broken: Some(events.count()),
            ..Default::default()
        },
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// Deterministic Gaussian proxy-orbital snapshot for a screening job.
/// Same `(extent, norb, seed)` ⇒ identical fields, bit for bit — the
/// precondition for cross-job cache reuse being exact.
fn screening_snapshot(
    extent: usize,
    norb: usize,
    seed: u64,
) -> (RealGrid, Vec<Vec<f64>>, Vec<OrbitalInfo>, Cell) {
    let cell = Cell::cubic(SCREEN_CELL_EDGE);
    let grid = RealGrid::cubic(cell, extent);
    let mut rng = SplitMix64::new(seed);
    let infos: Vec<OrbitalInfo> = (0..norb)
        .map(|_| OrbitalInfo {
            center: Vec3::new(
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
            ),
            spread: 1.0,
        })
        .collect();
    let fields: Vec<Vec<f64>> = infos
        .iter()
        .map(|info| {
            (0..grid.len())
                .map(|p| {
                    let d2 = grid.point_flat(p).distance(info.center).powi(2);
                    (-d2 / (2.0 * info.spread * info.spread)).exp()
                })
                .collect()
        })
        .collect();
    (grid, fields, infos, cell)
}

fn run_screening(
    system: &str,
    extent: usize,
    norb: usize,
    seed: u64,
    nranks: usize,
    cache: Option<&ExchangeCachePool>,
) -> Attempt {
    let (grid, fields, infos, cell) = screening_snapshot(extent, norb, seed);
    let solver = PoissonSolver::isolated(grid);
    let pairs = source_pairs(&infos, SCREEN_EPS, Some(&cell));
    let key = SystemKey {
        system: system.to_string(),
        dims: grid.dims,
        norb,
        seed,
    };
    let (mut inc, warm) = match cache {
        Some(pool) => {
            let before = pool.stats().hits;
            let inc = pool.checkout(&key, SCREEN_EPS_INC, 0);
            (inc, pool.stats().hits > before)
        }
        None => (
            liair_core::IncrementalExchange::new(SCREEN_EPS_INC, 0),
            false,
        ),
    };
    inc.set_backend(backend_for_lease(nranks));
    let result = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
    let profile = inc.last_profile;
    let totals = result.inc;
    if let Some(pool) = cache {
        pool.checkin(key, inc);
    }
    Attempt::Done(JobOutput {
        final_energy: result.energy,
        steps: result.pairs_evaluated + totals.pairs_reused,
        converged: true,
        observables: Observables::default(),
        inc: totals,
        profile,
        cache_warm: warm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ScfSystem;
    use liair_runtime::SeedConfig;

    fn scf_spec(disruption: Disruption) -> JobSpec {
        JobSpec::scf(ScfSystem::LiH)
            .tenant("t")
            .disruption(disruption)
            .build()
            .unwrap()
    }

    fn md_spec(disruption: Disruption) -> JobSpec {
        JobSpec::md(2, 5, 2)
            .tenant("t")
            .seeds(SeedConfig::default().with_md_seed(11))
            .disruption(disruption)
            .build()
            .unwrap()
    }

    fn solvation_spec(disruption: Disruption) -> JobSpec {
        JobSpec::solvation(Solvent::EthyleneCarbonate, 2, 3)
            .tenant("t")
            .steps(5, 2)
            .disruption(disruption)
            .build()
            .unwrap()
    }

    fn resume_to_done(spec: &JobSpec, first: Attempt) -> JobOutput {
        let ck = match first {
            Attempt::Preempted(ck) | Attempt::Faulted(ck) => ck,
            Attempt::Done(_) => panic!("expected the first attempt to be disrupted"),
        };
        match run_job(spec, Some(&ck), 1, None) {
            Attempt::Done(out) => out,
            _ => panic!("resumed attempts run undisturbed"),
        }
    }

    #[test]
    fn preempted_scf_resumes_bit_identical() {
        let reference = run_reference(&scf_spec(Disruption::None));
        assert!(reference.converged);
        let spec = scf_spec(Disruption::Preempt { at_step: 3 });
        let first = run_job(&spec, None, 1, None);
        let resumed = resume_to_done(&spec, first);
        assert_eq!(
            resumed.final_energy.to_bits(),
            reference.final_energy.to_bits()
        );
        assert_eq!(resumed.steps, reference.steps);
    }

    #[test]
    fn faulted_scf_replays_lost_steps_bit_identical() {
        let reference = run_reference(&scf_spec(Disruption::None));
        let spec = scf_spec(Disruption::Fault { at_step: 3 });
        let first = run_job(&spec, None, 1, None);
        assert!(matches!(first, Attempt::Faulted(_)));
        let resumed = resume_to_done(&spec, first);
        assert_eq!(
            resumed.final_energy.to_bits(),
            reference.final_energy.to_bits()
        );
    }

    #[test]
    fn preempted_and_faulted_md_resume_bit_identical() {
        for disruption in [
            Disruption::Preempt { at_step: 2 },
            Disruption::Fault { at_step: 3 },
        ] {
            let reference = run_reference(&md_spec(Disruption::None));
            let spec = md_spec(disruption);
            let first = run_job(&spec, None, 1, None);
            let resumed = resume_to_done(&spec, first);
            assert_eq!(
                resumed.final_energy.to_bits(),
                reference.final_energy.to_bits(),
                "under {disruption:?}"
            );
            assert_eq!(resumed.steps, reference.steps);
        }
    }

    #[test]
    fn disrupted_solvation_resumes_bit_identical() {
        let reference = run_reference(&solvation_spec(Disruption::None));
        let obs_ref = &reference.observables;
        assert!(obs_ref.rdf_li_o_peak_g.is_some());
        assert!(obs_ref.bonds_broken.is_some());
        for disruption in [
            Disruption::Preempt { at_step: 2 },
            Disruption::Fault { at_step: 3 },
        ] {
            let spec = solvation_spec(disruption);
            let first = run_job(&spec, None, 1, None);
            let resumed = resume_to_done(&spec, first);
            assert_eq!(
                resumed.final_energy.to_bits(),
                reference.final_energy.to_bits(),
                "under {disruption:?}"
            );
            assert_eq!(resumed.steps, reference.steps);
            // The analysis accumulators resumed too: every observable is
            // bitwise equal, not merely close.
            let obs = &resumed.observables;
            for (got, want) in [
                (obs.rdf_li_o_peak_r, obs_ref.rdf_li_o_peak_r),
                (obs.rdf_li_o_peak_g, obs_ref.rdf_li_o_peak_g),
                (obs.li_o_coordination, obs_ref.li_o_coordination),
            ] {
                assert_eq!(
                    got.unwrap().to_bits(),
                    want.unwrap().to_bits(),
                    "under {disruption:?}"
                );
            }
            assert_eq!(obs.bonds_broken, obs_ref.bonds_broken);
        }
    }

    #[test]
    fn warm_screening_matches_cold_bitwise() {
        let pool = ExchangeCachePool::new(4);
        let spec = JobSpec::screening("pc", 16, 3, 5)
            .tenant("t")
            .build()
            .unwrap();
        let cold = match run_job(&spec, None, 1, Some(&pool)) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert!(!cold.cache_warm);
        assert_eq!(cold.inc.pairs_reused, 0);
        let warm = match run_job(&spec, None, 1, Some(&pool)) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert!(warm.cache_warm);
        assert!(warm.inc.pairs_reused > 0);
        assert_eq!(warm.inc.pairs_recomputed, 0);
        assert_eq!(warm.final_energy.to_bits(), cold.final_energy.to_bits());
        // And both match a pool-free reference.
        let lone = run_reference(&spec);
        assert_eq!(lone.final_energy.to_bits(), cold.final_energy.to_bits());
    }

    #[test]
    fn multirank_lease_screening_is_bit_identical_to_single() {
        let spec = JobSpec::screening("dmso", 16, 3, 9)
            .tenant("t")
            .build()
            .unwrap();
        let single = match run_job(&spec, None, 1, None) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        let multi = match run_job(&spec, None, 3, None) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert_eq!(single.final_energy.to_bits(), multi.final_energy.to_bits());
    }
}
