//! Job execution with checkpoint/restart.
//!
//! The runner executes one *attempt* of a job on whatever backend slice
//! the scheduler leased. An attempt ends three ways:
//!
//! * [`Attempt::Done`] — ran to completion, numbers attached;
//! * [`Attempt::Preempted`] — the injected preemption fired: the runner
//!   checkpointed *at* the preemption step, so resume loses nothing;
//! * [`Attempt::Faulted`] — the injected rank fault fired: only the last
//!   *periodic* checkpoint (every [`CHECKPOINT_EVERY`] steps) survives,
//!   so resume re-executes the lost steps.
//!
//! Either way the follow-up attempt starts from [`JobCheckpoint`] and —
//! because stepping is deterministic and checkpoints are bit-exact
//! (`liair-math::codec`, every float via `to_bits`) — must land on final
//! numbers bitwise equal to an uninterrupted run. That is the property
//! the soak test measures and DESIGN.md promises.
//!
//! Disruptions are injected on the **first attempt only**: the runner is
//! told whether it is resuming, and a resumed attempt runs undisturbed.

use crate::job::{Disruption, JobKind, JobSpec};
use liair_basis::{systems, Basis, Cell, Molecule};
use liair_core::screening::{source_pairs, OrbitalInfo};
use liair_core::{
    BalanceStrategy, BuildProfile, ExchangeCachePool, ExecBackend, IncStats, SystemKey,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use liair_md::mts::SplitForceProvider;
use liair_md::{ForceField, MdCheckpoint, MdOptions, MdState, MtsOptions, Thermostat};
use liair_scf::{Method, ScfCheckpoint, ScfOptions, ScfSession};

/// Steps between the periodic checkpoints a fault falls back on.
pub const CHECKPOINT_EVERY: usize = 2;

/// Fixed cubic cell edge (Bohr) of the screening snapshots.
const SCREEN_CELL_EDGE: f64 = 12.0;
/// Screening pair-list threshold.
const SCREEN_EPS: f64 = 1e-6;
/// Fingerprint tolerance of the screening jobs' incremental caches.
/// Identical orbitals have fingerprint distance exactly 0, so any
/// positive tolerance reuses them — and reuse of identical orbitals is
/// bit-identical to recomputation (the PR 2 property the cross-job cache
/// inherits).
const SCREEN_EPS_INC: f64 = 1e-9;

/// Serialized resume state of a suspended job.
#[derive(Debug, Clone)]
pub enum JobCheckpoint {
    /// An SCF session mid-convergence.
    Scf(ScfCheckpoint),
    /// An MD trajectory mid-flight (serialized [`MdCheckpoint`]).
    Md(Vec<u8>),
}

impl JobCheckpoint {
    /// Serialized size (what a real service would write to burst
    /// buffers; here it feeds the bench's checkpoint-bytes column).
    pub fn nbytes(&self) -> usize {
        match self {
            JobCheckpoint::Scf(ck) => ck.bytes.len(),
            JobCheckpoint::Md(b) => b.len(),
        }
    }
}

/// Numbers a completed job reports.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's headline number: converged SCF energy, final MD
    /// potential, or total screening exchange energy. Bit-compared
    /// against the uninterrupted reference by the soak tests.
    pub final_energy: f64,
    /// SCF iterations / MD inner steps / screening pairs evaluated.
    pub steps: usize,
    /// SCF convergence flag (`true` for the other kinds).
    pub converged: bool,
    /// Incremental-exchange reuse counters (screening jobs).
    pub inc: IncStats,
    /// Build instrumentation of the job's last exchange build (screening
    /// jobs; carries the FFT plan-cache window among the rest).
    pub profile: BuildProfile,
    /// Whether this job's screening cache came warm out of the pool.
    pub cache_warm: bool,
}

/// How one attempt ended.
// One Attempt per job attempt: the size skew vs a checkpoint variant is
// irrelevant at that rate, and boxing would ripple through every match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Attempt {
    /// Ran to completion.
    Done(JobOutput),
    /// Preemption point reached; checkpoint taken at that exact step.
    Preempted(JobCheckpoint),
    /// Rank fault; only the last periodic checkpoint survives.
    Faulted(JobCheckpoint),
}

/// The backend a rank lease of `nranks` maps to: the message-passing
/// engine backend for multi-rank leases, rayon for single-rank ones.
/// Engine builds are bit-identical across all of these (the PR 3/4
/// guarantee), which is what makes lease-sized backends safe to mix with
/// cross-job caches.
pub fn backend_for_lease(nranks: usize) -> ExecBackend {
    if nranks > 1 {
        ExecBackend::Comm {
            nranks,
            strategy: BalanceStrategy::GreedyLpt,
        }
    } else {
        ExecBackend::Rayon
    }
}

/// Execute one attempt of `spec`.
///
/// `resume` carries the checkpoint of a previous attempt (disruptions
/// are not re-injected when it is `Some`). `nranks` is the size of the
/// rank lease the scheduler granted. `cache` is the shared cross-job
/// exchange cache pool (screening jobs only).
pub fn run_job(
    spec: &JobSpec,
    resume: Option<&JobCheckpoint>,
    nranks: usize,
    cache: Option<&ExchangeCachePool>,
) -> Attempt {
    let disruption = if resume.is_some() {
        Disruption::None
    } else {
        spec.disruption
    };
    match &spec.kind {
        JobKind::Scf {
            system,
            incremental_fock,
        } => run_scf(spec, *system, *incremental_fock, resume, disruption),
        JobKind::Md {
            n_waters,
            n_outer,
            n_inner,
            temperature,
        } => run_md(
            spec,
            *n_waters,
            *n_outer,
            *n_inner,
            *temperature,
            resume,
            disruption,
        ),
        JobKind::Screening {
            system,
            extent,
            norb,
            seed,
        } => run_screening(system, *extent, *norb, *seed, nranks, cache),
    }
}

/// Run `spec` uninterrupted on the default backend with no shared cache —
/// the reference the soak tests bit-compare resumed jobs against.
pub fn run_reference(spec: &JobSpec) -> JobOutput {
    let clean = JobSpec {
        disruption: Disruption::None,
        ..spec.clone()
    };
    match run_job(&clean, None, 1, None) {
        Attempt::Done(out) => out,
        _ => unreachable!("an undisrupted attempt always completes"),
    }
}

fn scf_options(incremental_fock: bool) -> ScfOptions {
    ScfOptions {
        incremental_fock,
        ..ScfOptions::default()
    }
}

fn run_scf(
    _spec: &JobSpec,
    system: crate::job::ScfSystem,
    incremental_fock: bool,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    let mol = system.molecule();
    let basis = Basis::sto3g(&mol);
    let opts = scf_options(incremental_fock);
    let mut session = match resume {
        Some(JobCheckpoint::Scf(ck)) => ScfSession::resume(&mol, &basis, ck)
            .expect("a checkpoint taken by this runner resumes against the same basis"),
        Some(JobCheckpoint::Md(_)) => unreachable!("SCF job resumed with an MD checkpoint"),
        None => ScfSession::new(&mol, &basis, &opts, Method::Rhf),
    };
    let mut periodic: Option<ScfCheckpoint> = Some(session.checkpoint());
    while session.step() {
        let it = session.iterations();
        match disruption {
            Disruption::Preempt { at_step } if it == at_step && !session.done() => {
                return Attempt::Preempted(JobCheckpoint::Scf(session.checkpoint()));
            }
            Disruption::Fault { at_step } if it == at_step && !session.done() => {
                let ck = periodic
                    .take()
                    .expect("an initial checkpoint always exists");
                return Attempt::Faulted(JobCheckpoint::Scf(ck));
            }
            _ => {}
        }
        if it % CHECKPOINT_EVERY == 0 {
            periodic = Some(session.checkpoint());
        }
    }
    Attempt::Done(JobOutput {
        final_energy: session.energy(),
        steps: session.iterations(),
        converged: session.converged(),
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// The deterministic force split MD jobs integrate under: classical
/// force field fast part, a weak quartic tether to the *initial*
/// positions as the slow correction (the same split the MTS equivalence
/// proofs use). Reconstructable from the job spec alone — which is why
/// [`MdCheckpoint`] never serializes the provider.
pub struct TetherSplit {
    ff: ForceField,
    anchors: Vec<Vec3>,
    k: f64,
}

impl TetherSplit {
    /// Split anchored at `mol`'s current positions.
    pub fn new(mol: &Molecule, cell: Option<&Cell>, k: f64) -> TetherSplit {
        TetherSplit {
            ff: ForceField::from_molecule(mol, cell),
            anchors: mol.atoms.iter().map(|a| a.pos).collect(),
            k,
        }
    }
}

impl SplitForceProvider for TetherSplit {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.ff.energy_forces(mol, cell)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        _cell: Option<&Cell>,
        _fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let mut e = 0.0;
        let forces = mol
            .atoms
            .iter()
            .zip(&self.anchors)
            .map(|(a, &r0)| {
                let d = a.pos - r0;
                let r2 = d.norm_sqr();
                e += 0.25 * self.k * r2 * r2;
                -d * (self.k * r2)
            })
            .collect();
        (e, forces)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_md(
    spec: &JobSpec,
    n_waters: usize,
    n_outer: usize,
    n_inner: usize,
    temperature: f64,
    resume: Option<&JobCheckpoint>,
    disruption: Disruption,
) -> Attempt {
    let seed = spec.seeds.resolve_md_seed(None);
    // The provider is never serialized: it is a pure function of the job
    // spec (initial box geometry), reconstructed on every attempt.
    let (mol0, cell) = systems::water_box(n_waters, seed);
    let split = TetherSplit::new(&mol0, Some(&cell), 1e-4);
    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::NoseHoover {
            t_target: temperature,
            tau: 300.0,
        },
        mts: MtsOptions { n_inner },
    };
    let mut state = match resume {
        Some(JobCheckpoint::Md(bytes)) => MdCheckpoint::from_bytes(bytes)
            .expect("a checkpoint taken by this runner round-trips")
            .restore(),
        Some(JobCheckpoint::Scf(_)) => unreachable!("MD job resumed with an SCF checkpoint"),
        None => {
            let mut st = MdState::new_split(mol0, Some(cell), &split);
            st.thermalize_seeded(temperature, Some(seed));
            st
        }
    };
    let mut periodic = MdCheckpoint::capture(&state).to_bytes();
    loop {
        let outer_done = state.step_count / n_inner;
        if outer_done >= n_outer {
            break;
        }
        state.step_mts(&split, &opts);
        let outer_done = state.step_count / n_inner;
        if outer_done >= n_outer {
            break;
        }
        match disruption {
            Disruption::Preempt { at_step } if outer_done == at_step => {
                let ck = MdCheckpoint::capture(&state).to_bytes();
                return Attempt::Preempted(JobCheckpoint::Md(ck));
            }
            Disruption::Fault { at_step } if outer_done == at_step => {
                return Attempt::Faulted(JobCheckpoint::Md(periodic));
            }
            _ => {}
        }
        if outer_done.is_multiple_of(CHECKPOINT_EVERY) {
            periodic = MdCheckpoint::capture(&state).to_bytes();
        }
    }
    Attempt::Done(JobOutput {
        final_energy: state.potential,
        steps: state.step_count,
        converged: true,
        inc: IncStats::default(),
        profile: BuildProfile::default(),
        cache_warm: false,
    })
}

/// Deterministic Gaussian proxy-orbital snapshot for a screening job.
/// Same `(extent, norb, seed)` ⇒ identical fields, bit for bit — the
/// precondition for cross-job cache reuse being exact.
fn screening_snapshot(
    extent: usize,
    norb: usize,
    seed: u64,
) -> (RealGrid, Vec<Vec<f64>>, Vec<OrbitalInfo>, Cell) {
    let cell = Cell::cubic(SCREEN_CELL_EDGE);
    let grid = RealGrid::cubic(cell, extent);
    let mut rng = SplitMix64::new(seed);
    let infos: Vec<OrbitalInfo> = (0..norb)
        .map(|_| OrbitalInfo {
            center: Vec3::new(
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
                rng.range_f64(2.0, SCREEN_CELL_EDGE - 2.0),
            ),
            spread: 1.0,
        })
        .collect();
    let fields: Vec<Vec<f64>> = infos
        .iter()
        .map(|info| {
            (0..grid.len())
                .map(|p| {
                    let d2 = grid.point_flat(p).distance(info.center).powi(2);
                    (-d2 / (2.0 * info.spread * info.spread)).exp()
                })
                .collect()
        })
        .collect();
    (grid, fields, infos, cell)
}

fn run_screening(
    system: &str,
    extent: usize,
    norb: usize,
    seed: u64,
    nranks: usize,
    cache: Option<&ExchangeCachePool>,
) -> Attempt {
    let (grid, fields, infos, cell) = screening_snapshot(extent, norb, seed);
    let solver = PoissonSolver::isolated(grid);
    let pairs = source_pairs(&infos, SCREEN_EPS, Some(&cell));
    let key = SystemKey {
        system: system.to_string(),
        dims: grid.dims,
        norb,
        seed,
    };
    let (mut inc, warm) = match cache {
        Some(pool) => {
            let before = pool.stats().hits;
            let inc = pool.checkout(&key, SCREEN_EPS_INC, 0);
            (inc, pool.stats().hits > before)
        }
        None => (
            liair_core::IncrementalExchange::new(SCREEN_EPS_INC, 0),
            false,
        ),
    };
    inc.set_backend(backend_for_lease(nranks));
    let result = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
    let profile = inc.last_profile;
    let totals = result.inc;
    if let Some(pool) = cache {
        pool.checkin(key, inc);
    }
    Attempt::Done(JobOutput {
        final_energy: result.energy,
        steps: result.pairs_evaluated + totals.pairs_reused,
        converged: true,
        inc: totals,
        profile,
        cache_warm: warm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ScfSystem;
    use liair_runtime::SeedConfig;

    fn scf_spec(disruption: Disruption) -> JobSpec {
        JobSpec::new(
            "t",
            JobKind::Scf {
                system: ScfSystem::LiH,
                incremental_fock: false,
            },
        )
        .with_disruption(disruption)
    }

    fn md_spec(disruption: Disruption) -> JobSpec {
        JobSpec::new(
            "t",
            JobKind::Md {
                n_waters: 2,
                n_outer: 5,
                n_inner: 2,
                temperature: 300.0,
            },
        )
        .with_seeds(SeedConfig::default().with_md_seed(11))
        .with_disruption(disruption)
    }

    fn resume_to_done(spec: &JobSpec, first: Attempt) -> JobOutput {
        let ck = match first {
            Attempt::Preempted(ck) | Attempt::Faulted(ck) => ck,
            Attempt::Done(_) => panic!("expected the first attempt to be disrupted"),
        };
        match run_job(spec, Some(&ck), 1, None) {
            Attempt::Done(out) => out,
            _ => panic!("resumed attempts run undisturbed"),
        }
    }

    #[test]
    fn preempted_scf_resumes_bit_identical() {
        let reference = run_reference(&scf_spec(Disruption::None));
        assert!(reference.converged);
        let spec = scf_spec(Disruption::Preempt { at_step: 3 });
        let first = run_job(&spec, None, 1, None);
        let resumed = resume_to_done(&spec, first);
        assert_eq!(
            resumed.final_energy.to_bits(),
            reference.final_energy.to_bits()
        );
        assert_eq!(resumed.steps, reference.steps);
    }

    #[test]
    fn faulted_scf_replays_lost_steps_bit_identical() {
        let reference = run_reference(&scf_spec(Disruption::None));
        let spec = scf_spec(Disruption::Fault { at_step: 3 });
        let first = run_job(&spec, None, 1, None);
        assert!(matches!(first, Attempt::Faulted(_)));
        let resumed = resume_to_done(&spec, first);
        assert_eq!(
            resumed.final_energy.to_bits(),
            reference.final_energy.to_bits()
        );
    }

    #[test]
    fn preempted_and_faulted_md_resume_bit_identical() {
        for disruption in [
            Disruption::Preempt { at_step: 2 },
            Disruption::Fault { at_step: 3 },
        ] {
            let reference = run_reference(&md_spec(Disruption::None));
            let spec = md_spec(disruption);
            let first = run_job(&spec, None, 1, None);
            let resumed = resume_to_done(&spec, first);
            assert_eq!(
                resumed.final_energy.to_bits(),
                reference.final_energy.to_bits(),
                "under {disruption:?}"
            );
            assert_eq!(resumed.steps, reference.steps);
        }
    }

    #[test]
    fn warm_screening_matches_cold_bitwise() {
        let pool = ExchangeCachePool::new(4);
        let spec = JobSpec::new(
            "t",
            JobKind::Screening {
                system: "pc".into(),
                extent: 16,
                norb: 3,
                seed: 5,
            },
        );
        let cold = match run_job(&spec, None, 1, Some(&pool)) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert!(!cold.cache_warm);
        assert_eq!(cold.inc.pairs_reused, 0);
        let warm = match run_job(&spec, None, 1, Some(&pool)) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert!(warm.cache_warm);
        assert!(warm.inc.pairs_reused > 0);
        assert_eq!(warm.inc.pairs_recomputed, 0);
        assert_eq!(warm.final_energy.to_bits(), cold.final_energy.to_bits());
        // And both match a pool-free reference.
        let lone = run_reference(&spec);
        assert_eq!(lone.final_energy.to_bits(), cold.final_energy.to_bits());
    }

    #[test]
    fn multirank_lease_screening_is_bit_identical_to_single() {
        let spec = JobSpec::new(
            "t",
            JobKind::Screening {
                system: "dmso".into(),
                extent: 16,
                norb: 3,
                seed: 9,
            },
        );
        let single = match run_job(&spec, None, 1, None) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        let multi = match run_job(&spec, None, 3, None) {
            Attempt::Done(out) => out,
            _ => unreachable!(),
        };
        assert_eq!(single.final_energy.to_bits(), multi.final_energy.to_bits());
    }
}
