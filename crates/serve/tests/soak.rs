//! Short-soak smoke test: a few dozen mixed jobs through the full
//! service — admission, aged scheduling, rank leasing, cross-job caches,
//! checkpoint/restart — asserting the acceptance properties the big
//! `repro bench-serve` soak measures at scale:
//!
//! * every admitted job completes;
//! * the repeated-system screening workload hits the cross-job cache;
//! * every disrupted job resumes from its checkpoint and lands bitwise
//!   on the uninterrupted final energy.

use liair_runtime::SeedConfig;
use liair_serve::{
    run_and_verify, Disruption, JobKind, JobSpec, ScfSystem, ServiceConfig, TenantQuota,
};

/// A deterministic mixed workload: `n` jobs cycling over tenants, kinds,
/// and a small set of screening systems (so repeats hit the cache), with
/// every 4th job disrupted.
fn mixed_jobs(n: usize) -> Vec<JobSpec> {
    let tenants = ["astra", "borel", "curie"];
    let scf_systems = [
        ScfSystem::H2,
        ScfSystem::Helium,
        ScfSystem::LiH,
        ScfSystem::Water,
    ];
    let screens = [("pc", 3u64), ("dmso", 5), ("dme", 7)];
    (0..n)
        .map(|i| {
            let tenant = tenants[i % tenants.len()];
            let kind = match i % 3 {
                0 => {
                    let (system, seed) = screens[(i / 3) % screens.len()];
                    JobKind::Screening {
                        system: system.to_string(),
                        extent: 16,
                        norb: 3,
                        seed,
                    }
                }
                1 => JobKind::Scf {
                    system: scf_systems[(i / 3) % scf_systems.len()],
                    incremental_fock: i % 6 == 1,
                },
                _ => JobKind::Md {
                    n_waters: 2,
                    n_outer: 5,
                    n_inner: 1 + (i / 3) % 3,
                    temperature: 300.0,
                },
            };
            // Screening jobs are single-build: disruption targets the
            // checkpointable kinds.
            let disruption = if i % 4 == 1 && i % 3 != 0 {
                if i % 8 == 1 {
                    Disruption::Preempt { at_step: 2 }
                } else {
                    Disruption::Fault { at_step: 3 }
                }
            } else {
                Disruption::None
            };
            // A disruption must fire before the job finishes: H₂/He
            // converge in 2-3 iterations, so disrupted SCF jobs run LiH
            // (which needs several more).
            let kind = match (kind, disruption) {
                (
                    JobKind::Scf {
                        incremental_fock, ..
                    },
                    d,
                ) if d.is_disruptive() => JobKind::Scf {
                    system: ScfSystem::LiH,
                    incremental_fock,
                },
                (kind, _) => kind,
            };
            JobSpec::builder(kind)
                .tenant(tenant)
                .priority((i % 5) as u32)
                .nranks(1 + i % 3)
                .seeds(SeedConfig::default().with_md_seed(100 + (i / 3) as u64 % 4))
                .disruption(disruption)
                .build()
                .expect("soak specs are valid")
        })
        .collect()
}

#[test]
fn short_soak_completes_hits_cache_and_resumes_bitwise() {
    let n = 36;
    let jobs = mixed_jobs(n);
    let n_disrupted = jobs.iter().filter(|j| j.disruption.is_disruptive()).count();
    assert!(n_disrupted >= 5, "workload must exercise disruption");
    let cfg = ServiceConfig {
        max_workers: 3,
        pool_ranks: 6,
        cache_capacity: 8,
        quota: TenantQuota::default(),
        aging_rate: 1,
    };
    let report = run_and_verify(cfg, jobs);

    assert_eq!(report.completed.len(), n, "every admitted job completes");
    assert!(report.rejected.is_empty());

    // Cross-job cache: 12 screening jobs over 3 distinct systems — at
    // most one concurrent-miss per system beyond the cold one, so the
    // hit rate clears 50% comfortably.
    assert!(
        report.cache.hit_rate() > 0.5,
        "cache hit rate {} with {} hits / {} misses",
        report.cache.hit_rate(),
        report.cache.hits,
        report.cache.misses
    );

    // Checkpoint/restart: every disrupted job resumed (took >1 attempt)
    // and reproduced the uninterrupted final energy bitwise.
    assert_eq!(report.disrupted_jobs(), n_disrupted);
    assert_eq!(report.resumed_jobs(), n_disrupted);
    assert_eq!(report.bit_identical_fraction(), 1.0);

    // Leasing: ranks all came back, the pool was never oversubscribed.
    assert_eq!(report.pool.reclaimed, report.pool.granted);
    assert!(report.pool.peak_leased <= 6);

    // Latency accounting is populated and ordered.
    let p50 = report.latency_quantile(0.5);
    let p99 = report.latency_quantile(0.99);
    assert!(p50 > 0.0 && p99 >= p50);
}

#[test]
fn repeated_batches_warm_start_nothing_across_services() {
    // Each Service::run owns its caches: a fresh service starts cold
    // (cross-job, not cross-service — state is explicit, not ambient).
    let jobs = |_: usize| {
        vec![JobSpec::screening("pc", 16, 3, 3)
            .tenant("a")
            .build()
            .unwrap()]
    };
    let first = liair_serve::Service::new(ServiceConfig::default()).run(jobs(0));
    let second = liair_serve::Service::new(ServiceConfig::default()).run(jobs(1));
    assert_eq!(first.cache.misses, 1);
    assert_eq!(second.cache.misses, 1, "no ambient cross-service state");
    assert_eq!(
        first.completed[0].outcome.final_energy.to_bits(),
        second.completed[0].outcome.final_energy.to_bits()
    );
}
