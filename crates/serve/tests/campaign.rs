//! The campaign layer's acceptance property: one [`CampaignSpec`] with
//! fixed seeds produces a **byte-identical** canonical ranked report —
//! across worker counts (scheduling order must not leak into the
//! report) and under an injected disruption (checkpoint/resume must be
//! invisible in the physics).
//!
//! The grid here is solvation-only (`functionals: []`): reaction
//! members converge 50–60-AO RHF complexes, which belongs in the
//! release-mode `repro screen-solvents` bench, not a debug test.

use liair_basis::systems::Solvent;
use liair_serve::campaign::{run_campaign, CampaignSpec};
use liair_serve::{Disruption, ServiceConfig, TenantQuota};

fn grid() -> CampaignSpec {
    CampaignSpec {
        solvents: vec![Solvent::EthyleneCarbonate, Solvent::Dmso],
        functionals: vec![],
        concentrations: vec![2],
        seeds: vec![11, 12],
        n_outer: 5,
        n_inner: 2,
        temperature: 400.0,
        tenant: "campaign-test".to_string(),
        priority: 0,
        disruptions: vec![],
    }
}

fn cfg(max_workers: usize) -> ServiceConfig {
    ServiceConfig {
        max_workers,
        pool_ranks: 4,
        cache_capacity: 8,
        quota: TenantQuota::default(),
        aging_rate: 1,
    }
}

#[test]
fn canonical_report_is_byte_identical_across_workers_and_disruption() {
    let baseline = run_campaign(cfg(1), &grid()).expect("campaign runs");
    assert_eq!(baseline.members.len(), 4, "2 solvents × 2 seeds");
    assert!(baseline.missing.is_empty());
    assert_eq!(baseline.ranking.len(), 2);
    let canon = baseline.canonical_json();
    assert!(canon.contains("solvation:ec:n2#11"));

    // Worker-count sweep: completion order changes, the report must not.
    for workers in [2, 4] {
        let report = run_campaign(cfg(workers), &grid()).expect("campaign runs");
        assert_eq!(
            report.canonical_json(),
            canon,
            "canonical report drifted at {workers} workers"
        );
    }

    // One member faulted mid-trajectory: it resumes from its periodic
    // checkpoint, re-executes the lost steps, and the report — physics,
    // RDF histogram, ranking — is still byte-identical.
    let mut disrupted_spec = grid();
    disrupted_spec.disruptions = vec![(1, Disruption::Fault { at_step: 2 })];
    let disrupted = run_campaign(cfg(2), &disrupted_spec).expect("campaign runs");
    assert_eq!(
        disrupted.bit_identical_fraction, 1.0,
        "the resumed member must bit-match its uninterrupted reference"
    );
    assert!(disrupted.members.iter().any(|m| m.disruption.resumed));
    assert_eq!(
        disrupted.canonical_json(),
        canon,
        "a fault + resume leaked into the canonical report"
    );

    // The ranking is queryable and consistent with the verdict order.
    for (rank, verdict) in baseline.ranking.iter().enumerate() {
        assert_eq!(baseline.rank_of(verdict.solvent), Some(rank));
    }
}
