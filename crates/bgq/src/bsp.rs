//! A bulk-synchronous (BSP) simulator.
//!
//! Parallel exact-exchange builds are phase-structured: every rank computes
//! its task share, then the machine runs a collective. The simulator takes
//! the *actual* per-rank work assignments produced by `liair-core`'s load
//! balancer, prices each phase with the node and collective models, and
//! reports step time, per-phase breakdown, and compute utilization —
//! exactly the quantities the paper's figures plot.

use crate::collectives::{self, CollectiveAlgo};
use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Communication closing a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommOp {
    /// No communication (barrier only).
    None,
    /// Allreduce of `bytes`.
    Allreduce { bytes: f64 },
    /// One-to-all broadcast of `bytes`.
    Broadcast { bytes: f64 },
    /// Reduce-scatter of a `bytes`-sized vector.
    ReduceScatter { bytes: f64 },
    /// All-to-all with `bytes` held per node.
    Alltoall { bytes_per_node: f64 },
    /// Irregular point-to-point phase; `max_bytes_per_node` bounds the
    /// busiest node.
    PointToPoint { max_bytes_per_node: f64 },
}

/// Per-rank compute of a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseCompute {
    /// Every rank busy for the same duration (seconds).
    Uniform(f64),
    /// Explicit per-rank durations (len = node count).
    PerRank(Vec<f64>),
}

/// One BSP superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspPhase {
    /// Label used in breakdown tables.
    pub name: String,
    /// Compute part.
    pub compute: PhaseCompute,
    /// Closing communication.
    pub comm: CommOp,
}

/// Timing of one phase in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase label.
    pub name: String,
    /// Wall time of the compute part (max over ranks).
    pub compute: f64,
    /// Mean busy time over ranks (≤ compute; gap = imbalance).
    pub compute_mean: f64,
    /// Communication time.
    pub comm: f64,
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspReport {
    /// Total step wall time.
    pub total: f64,
    /// Per-phase timings.
    pub phases: Vec<PhaseTiming>,
    /// Fraction of node-seconds spent computing: Σ busy / (P × total).
    pub compute_utilization: f64,
    /// Max/mean load ratio across ranks, aggregated over phases.
    pub imbalance: f64,
}

impl BspReport {
    /// Total communication time.
    pub fn comm_total(&self) -> f64 {
        self.phases.iter().map(|p| p.comm).sum()
    }

    /// Total (critical-path) compute time.
    pub fn compute_total(&self) -> f64 {
        self.phases.iter().map(|p| p.compute).sum()
    }
}

/// Price a communication op on a machine.
pub fn comm_time(machine: &MachineConfig, algo: CollectiveAlgo, op: &CommOp) -> f64 {
    match *op {
        CommOp::None => 0.0,
        CommOp::Allreduce { bytes } => collectives::allreduce(machine, algo, bytes),
        CommOp::Broadcast { bytes } => collectives::broadcast(machine, algo, bytes),
        CommOp::ReduceScatter { bytes } => collectives::reduce_scatter(machine, algo, bytes),
        CommOp::Alltoall { bytes_per_node } => collectives::alltoall(machine, bytes_per_node),
        CommOp::PointToPoint { max_bytes_per_node } => {
            collectives::point_to_point(machine, max_bytes_per_node)
        }
    }
}

/// Run the superstep sequence.
pub fn simulate(machine: &MachineConfig, algo: CollectiveAlgo, phases: &[BspPhase]) -> BspReport {
    let p = machine.torus.nodes() as f64;
    let mut total = 0.0;
    let mut busy = 0.0;
    let mut timings = Vec::with_capacity(phases.len());
    let mut worst_imbalance = 1.0f64;
    for ph in phases {
        let (cmax, cmean) = match &ph.compute {
            PhaseCompute::Uniform(t) => (*t, *t),
            PhaseCompute::PerRank(v) => {
                assert_eq!(
                    v.len(),
                    machine.torus.nodes(),
                    "phase '{}' rank count mismatch",
                    ph.name
                );
                let max = v.iter().copied().fold(0.0f64, f64::max);
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                (max, mean)
            }
        };
        if cmean > 0.0 {
            worst_imbalance = worst_imbalance.max(cmax / cmean);
        }
        let comm = comm_time(machine, algo, &ph.comm);
        total += cmax + comm;
        busy += cmean * p;
        timings.push(PhaseTiming {
            name: ph.name.clone(),
            compute: cmax,
            compute_mean: cmean,
            comm,
        });
    }
    let compute_utilization = if total > 0.0 { busy / (p * total) } else { 1.0 };
    BspReport {
        total,
        phases: timings,
        compute_utilization,
        imbalance: worst_imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::bgq_nodes(32)
    }

    #[test]
    fn uniform_phase_times_add() {
        let m = machine();
        let phases = vec![
            BspPhase {
                name: "a".into(),
                compute: PhaseCompute::Uniform(1.0),
                comm: CommOp::None,
            },
            BspPhase {
                name: "b".into(),
                compute: PhaseCompute::Uniform(0.5),
                comm: CommOp::None,
            },
        ];
        let r = simulate(&m, CollectiveAlgo::TorusPipelined, &phases);
        assert!((r.total - 1.5).abs() < 1e-12);
        assert!((r.compute_utilization - 1.0).abs() < 1e-12);
        assert!((r.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_shows_up_in_utilization() {
        let m = machine();
        let mut loads = vec![1.0; m.nodes()];
        loads[0] = 2.0; // one straggler
        let phases = vec![BspPhase {
            name: "work".into(),
            compute: PhaseCompute::PerRank(loads),
            comm: CommOp::None,
        }];
        let r = simulate(&m, CollectiveAlgo::TorusPipelined, &phases);
        assert!((r.total - 2.0).abs() < 1e-12);
        assert!(r.compute_utilization < 0.55);
        assert!(r.imbalance > 1.9);
    }

    #[test]
    fn communication_adds_to_total() {
        let m = machine();
        let phases = vec![BspPhase {
            name: "x".into(),
            compute: PhaseCompute::Uniform(0.1),
            comm: CommOp::Allreduce { bytes: 1e8 },
        }];
        let r = simulate(&m, CollectiveAlgo::TorusPipelined, &phases);
        assert!(r.total > 0.1);
        assert!(r.comm_total() > 0.0);
        assert!((r.total - (r.compute_total() + r.comm_total())).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn wrong_rank_count_panics() {
        let m = machine();
        let phases = vec![BspPhase {
            name: "bad".into(),
            compute: PhaseCompute::PerRank(vec![1.0; 3]),
            comm: CommOp::None,
        }];
        simulate(&m, CollectiveAlgo::TorusPipelined, &phases);
    }
}
