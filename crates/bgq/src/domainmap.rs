//! Mapping the 3-D domain grid onto the 5-D torus.
//!
//! The domain decomposition in `liair-core::domain` shards the periodic
//! cell into a `gx × gy × gz` grid of subdomains whose halo traffic is
//! strictly nearest-neighbor *in the grid*. This module folds the 5-D
//! torus partition into such a 3-D grid: every torus extent is split into
//! its prime factors and the factors are dealt greedily onto the three
//! grid axes, keeping the axis products balanced. The resulting map is a
//! bijection (mixed-radix encode/decode), and because a unit step along a
//! grid axis flips the lowest-order digit most of the time, face-neighbor
//! demands ride mostly single-hop torus links — measured, not assumed, by
//! routing the actual demand set through [`crate::routing`].

use crate::machine::MachineConfig;
use crate::routing::{self, LinkLoads};
use crate::torus::Torus5D;

/// A bijective fold of a 5-D torus into a 3-D domain grid.
#[derive(Debug, Clone)]
pub struct DomainMap {
    /// The torus being folded.
    pub torus: Torus5D,
    /// Domain-grid extents per axis (products of the assigned factors).
    pub grid: [usize; 3],
    /// Factor slots in assignment order: `(torus dim, factor, grid axis)`.
    /// Both directions of the bijection replay this list with running
    /// per-dim / per-axis strides.
    slots: Vec<(usize, usize, usize)>,
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

impl DomainMap {
    /// Fold `torus` into a balanced 3-D grid: prime factors of every
    /// extent, dealt largest-first onto the axis with the smallest
    /// running product.
    pub fn fold(torus: Torus5D) -> Self {
        let mut factors: Vec<(usize, usize)> = Vec::new(); // (dim, factor)
        for (dim, &ext) in torus.dims.iter().enumerate() {
            for f in prime_factors(ext) {
                factors.push((dim, f));
            }
        }
        // Largest factors first so the greedy balance has small factors
        // left to even things out; stable tie-break keeps dim order.
        factors.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut grid = [1usize; 3];
        let mut slots = Vec::with_capacity(factors.len());
        for (dim, f) in factors {
            let axis = (0..3).min_by_key(|&a| (grid[a], a)).expect("3 axes");
            slots.push((dim, f, axis));
            grid[axis] *= f;
        }
        Self { torus, grid, slots }
    }

    /// Grid cell of a torus node (mixed-radix decode of the coords).
    pub fn grid_of(&self, rank: usize) -> [usize; 3] {
        let mut rem = self.torus.coords(rank);
        let mut g = [0usize; 3];
        let mut stride = [1usize; 3];
        for &(dim, f, axis) in &self.slots {
            g[axis] += (rem[dim] % f) * stride[axis];
            rem[dim] /= f;
            stride[axis] *= f;
        }
        g
    }

    /// Torus node of a grid cell (the inverse of [`Self::grid_of`]).
    pub fn node_of(&self, g: [usize; 3]) -> usize {
        let mut tc = [0usize; 5];
        let mut dim_stride = [1usize; 5];
        let mut stride = [1usize; 3];
        for &(dim, f, axis) in &self.slots {
            let digit = (g[axis] / stride[axis]) % f;
            stride[axis] *= f;
            tc[dim] += digit * dim_stride[dim];
            dim_stride[dim] *= f;
        }
        self.torus.rank(tc)
    }

    /// The halo demand set: every grid cell sends `bytes` to each of its
    /// six periodic face neighbors, expressed as torus (src, dst, bytes)
    /// triples. Axes of extent 1 contribute no demand; extent 2 sends one
    /// message (the +1 and −1 neighbors coincide).
    pub fn face_demands(&self, bytes: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for x in 0..self.grid[0] {
            for y in 0..self.grid[1] {
                for z in 0..self.grid[2] {
                    let src = self.node_of([x, y, z]);
                    let mut cell = [x, y, z];
                    for ax in 0..3 {
                        let g = self.grid[ax];
                        if g == 1 {
                            continue;
                        }
                        let here = cell[ax];
                        let mut targets = vec![(here + 1) % g];
                        if g > 2 {
                            targets.push((here + g - 1) % g);
                        }
                        for t in targets {
                            cell[ax] = t;
                            out.push((src, self.node_of(cell), bytes));
                        }
                        cell[ax] = here;
                    }
                }
            }
        }
        out
    }
}

/// Modeled cost of one halo exchange on a machine, next to the
/// replicated-data baseline it replaces.
#[derive(Debug, Clone, Copy)]
pub struct HaloCost {
    /// Heaviest directed-link load of the routed halo demands (bytes).
    pub max_link_bytes: f64,
    /// Max over mean link load (1.0 = perfectly spread).
    pub congestion: f64,
    /// Demand-weighted mean hop count of the halo messages.
    pub mean_hops: f64,
    /// Modeled halo-exchange time (s): serialization on the hottest link
    /// plus hop and software latency.
    pub time: f64,
    /// Modeled time (s) for the replicated-orbital baseline: every node
    /// must *receive* the other `P − 1` owned blocks, bounded below by its
    /// aggregate injection bandwidth — optimistic for the baseline, and
    /// the halo still wins by orders of magnitude.
    pub replication_time: f64,
}

/// Route one halo exchange (`face_bytes` per face message, `owned_bytes`
/// per rank for the replication baseline) on `machine` under `map`.
pub fn halo_cost(
    machine: &MachineConfig,
    map: &DomainMap,
    face_bytes: f64,
    owned_bytes: f64,
) -> HaloCost {
    let demands = map.face_demands(face_bytes);
    let loads: LinkLoads = routing::route_traffic(&machine.torus, &demands);
    let demand_bytes: f64 = demands.iter().map(|&(_, _, b)| b).sum();
    let mean_hops = if demand_bytes > 0.0 {
        loads.total() / demand_bytes
    } else {
        0.0
    };
    let time =
        loads.max() / machine.link_bandwidth + mean_hops * machine.hop_latency + machine.sw_latency;
    let p = machine.nodes() as f64;
    let active_links = 2.0 * machine.torus.dims.iter().filter(|&&d| d > 1).count() as f64;
    let replication_time = (p - 1.0) * owned_bytes
        / (active_links.max(1.0) * machine.link_bandwidth)
        + machine.sw_latency;
    HaloCost {
        max_link_bytes: loads.max(),
        congestion: loads.congestion(),
        mean_hops,
        time,
        replication_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::patterns;

    #[test]
    fn fold_is_a_bijection() {
        for dims in [
            [4, 4, 4, 8, 2],
            [3, 5, 2, 2, 1],
            [2, 2, 2, 2, 2],
            [7, 1, 1, 1, 1],
        ] {
            let map = DomainMap::fold(Torus5D::new(dims));
            assert_eq!(
                map.grid.iter().product::<usize>(),
                map.torus.nodes(),
                "{dims:?}"
            );
            let mut seen = vec![false; map.torus.nodes()];
            for r in 0..map.torus.nodes() {
                let g = map.grid_of(r);
                for ax in 0..3 {
                    assert!(g[ax] < map.grid[ax]);
                }
                assert_eq!(map.node_of(g), r, "round trip at rank {r}");
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
    }

    #[test]
    fn full_machine_fold_is_balanced() {
        let m = MachineConfig::bgq_racks(96);
        let map = DomainMap::fold(m.torus);
        assert_eq!(map.grid.iter().product::<usize>(), 98_304);
        let lo = *map.grid.iter().min().unwrap() as f64;
        let hi = *map.grid.iter().max().unwrap() as f64;
        assert!(hi / lo <= 2.0, "grid {:?} unbalanced", map.grid);
    }

    #[test]
    fn face_neighbors_ride_short_torus_paths() {
        let m = MachineConfig::bgq_racks(1);
        let map = DomainMap::fold(m.torus);
        let cost = halo_cost(&m, &map, 1.0, 1.0);
        // The fold keeps face traffic near the torus surface: far below
        // the ~P^(1/5)-scale hops a random placement would pay.
        let rand =
            routing::route_traffic(&m.torus, &patterns::random_permutation(&m.torus, 1.0, 9));
        let rand_hops = rand.total() / m.torus.nodes() as f64;
        assert!(
            cost.mean_hops < 0.75 * rand_hops,
            "halo {} vs random {rand_hops}",
            cost.mean_hops
        );
        assert!(cost.mean_hops < 4.0, "halo hops {}", cost.mean_hops);
        assert!(cost.congestion < 8.0, "congestion {}", cost.congestion);
    }

    #[test]
    fn halo_beats_replication_at_every_scale() {
        for racks in [1, 8, 96] {
            let m = MachineConfig::bgq_racks(racks);
            let map = DomainMap::fold(m.torus);
            // ~3375 orbitals/rank × 40 B each; a face slab is ~a third.
            let cost = halo_cost(&m, &map, 45_000.0, 135_000.0);
            assert!(
                cost.time < cost.replication_time,
                "racks {racks}: halo {} vs replication {}",
                cost.time,
                cost.replication_time
            );
        }
        // And the gap *grows* with machine size (replication is O(P)).
        let small = halo_cost(
            &MachineConfig::bgq_racks(1),
            &DomainMap::fold(MachineConfig::bgq_racks(1).torus),
            45_000.0,
            135_000.0,
        );
        let big = halo_cost(
            &MachineConfig::bgq_racks(96),
            &DomainMap::fold(MachineConfig::bgq_racks(96).torus),
            45_000.0,
            135_000.0,
        );
        assert!(
            big.replication_time / big.time > small.replication_time / small.time,
            "gap must widen with scale"
        );
    }
}
