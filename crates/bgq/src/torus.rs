//! The Blue Gene/Q 5-D torus interconnect: geometry and routing metrics.

use serde::{Deserialize, Serialize};

/// A 5-dimensional torus of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus5D {
    /// Extent of each dimension (A, B, C, D, E); BG/Q's E dimension is
    /// always 2 on real hardware, but any extents are accepted.
    pub dims: [usize; 5],
}

impl Torus5D {
    /// Construct; every extent must be ≥ 1.
    pub fn new(dims: [usize; 5]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "torus extents must be ≥ 1");
        Self { dims }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of a node id (row-major over dimensions).
    pub fn coords(&self, rank: usize) -> [usize; 5] {
        assert!(rank < self.nodes());
        let mut c = [0; 5];
        let mut r = rank;
        for k in (0..5).rev() {
            c[k] = r % self.dims[k];
            r /= self.dims[k];
        }
        c
    }

    /// Node id of coordinates.
    pub fn rank(&self, coords: [usize; 5]) -> usize {
        let mut r = 0;
        for k in 0..5 {
            assert!(coords[k] < self.dims[k]);
            r = r * self.dims[k] + coords[k];
        }
        r
    }

    /// Per-dimension minimum hop distance with wraparound.
    pub fn dim_distance(&self, a: usize, b: usize, dim: usize) -> usize {
        let n = self.dims[dim];
        let d = a.abs_diff(b) % n;
        d.min(n - d)
    }

    /// Dimension-ordered routing hop count between two nodes.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..5).map(|k| self.dim_distance(ca[k], cb[k], k)).sum()
    }

    /// Network diameter (max hop count).
    pub fn diameter(&self) -> usize {
        self.dims.iter().map(|&d| d / 2).sum()
    }

    /// Average hop count under uniform random traffic (per-dimension mean
    /// of the wrapped distance).
    pub fn mean_hops(&self) -> f64 {
        self.dims
            .iter()
            .map(|&n| {
                let nf = n as f64;
                // mean over all pairs of min(d, n−d)
                if n == 1 {
                    0.0
                } else if n % 2 == 0 {
                    nf / 4.0
                } else {
                    (nf * nf - 1.0) / (4.0 * nf)
                }
            })
            .sum()
    }

    /// Number of unidirectional links crossing the smallest bisection.
    /// Bisecting the largest even dimension cuts `2 × nodes/dim_max`
    /// links (wraparound doubles the cut).
    pub fn bisection_links(&self) -> usize {
        let max_dim = *self.dims.iter().max().unwrap();
        if max_dim == 1 {
            return 0;
        }
        2 * self.nodes() / max_dim
    }

    /// Links per node (two per dimension with extent > 1; extent 2 gives a
    /// single physical neighbor but BG/Q wires both ports, so we count 2).
    pub fn links_per_node(&self) -> usize {
        self.dims.iter().filter(|&&d| d > 1).count() * 2
    }

    /// The ranks adjacent to `rank` (±1 in each dimension, deduplicated).
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        let mut out = Vec::new();
        for k in 0..5 {
            if self.dims[k] == 1 {
                continue;
            }
            for step in [1, self.dims[k] - 1] {
                let mut n = c;
                n[k] = (c[k] + step) % self.dims[k];
                let r = self.rank(n);
                if r != rank && !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let t = Torus5D::new([4, 3, 2, 5, 2]);
        for r in 0..t.nodes() {
            assert_eq!(t.rank(t.coords(r)), r);
        }
        assert_eq!(t.nodes(), 240);
    }

    #[test]
    fn hop_distance_wraps() {
        let t = Torus5D::new([8, 1, 1, 1, 1]);
        // 0 → 7 is one hop through the wraparound link.
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn hops_is_a_metric() {
        let t = Torus5D::new([4, 4, 2, 3, 2]);
        let (a, b, c) = (5, 77, 130);
        assert_eq!(t.hops(a, a), 0);
        assert_eq!(t.hops(a, b), t.hops(b, a));
        assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn hops_equals_sum_of_dim_distances() {
        // Property: routing distance decomposes per dimension.
        let t = Torus5D::new([3, 4, 5, 2, 2]);
        let mut rng = 12345u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as usize % t.nodes()
        };
        for _ in 0..100 {
            let a = next();
            let b = next();
            let ca = t.coords(a);
            let cb = t.coords(b);
            let want: usize = (0..5).map(|k| t.dim_distance(ca[k], cb[k], k)).sum();
            assert_eq!(t.hops(a, b), want);
        }
    }

    #[test]
    fn neighbors_have_hop_one() {
        let t = Torus5D::new([4, 4, 4, 2, 2]);
        let nbrs = t.neighbors(37);
        assert!(!nbrs.is_empty());
        for n in nbrs {
            assert_eq!(t.hops(37, n), 1);
        }
    }

    #[test]
    fn bisection_grows_with_machine() {
        let one_rack = Torus5D::new([4, 4, 4, 8, 2]);
        let full = Torus5D::new([16, 16, 16, 12, 2]);
        assert!(full.bisection_links() > 10 * one_rack.bisection_links());
        assert_eq!(full.nodes(), 98304);
    }

    #[test]
    fn mean_hops_even_dimension() {
        // For a ring of 4: distances to others are 1,2,1 → mean over all
        // (incl. self) is (0+1+2+1)/4 = 1 = n/4.
        let t = Torus5D::new([4, 1, 1, 1, 1]);
        assert!((t.mean_hops() - 1.0).abs() < 1e-12);
    }
}
