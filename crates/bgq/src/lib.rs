//! # liair-bgq
//!
//! A model of the IBM Blue Gene/Q supercomputer — the substrate substitution
//! mandated by the reproduction environment (no 96-rack machine on hand):
//!
//! * [`torus`] — the 5-D torus interconnect: geometry, dimension-ordered
//!   routing distances, bisection widths;
//! * [`node`] — the per-node compute model: 16 cores × 4 SMT threads,
//!   4-wide (QPX-like) SIMD, with empirical thread/SMT/SIMD scaling curves;
//! * [`collectives`] — analytic cost models for broadcast / allreduce /
//!   reduce-scatter on the torus, including a torus-aware dimension-pipelined
//!   algorithm and a topology-oblivious binomial tree (the mapping ablation);
//! * [`machine`] — partition presets from one node board to the full
//!   96-rack, 6,291,456-thread configuration of the paper;
//! * [`domainmap`] — folds the 5-D torus into the 3-D domain grid of the
//!   spatial decomposition and prices its nearest-neighbor halo traffic
//!   (per-link bytes, hops, congestion) against replicated-data baselines;
//! * [`bsp`] — a bulk-synchronous simulator that turns per-rank work lists
//!   and collective phases into step times, efficiencies and per-phase
//!   breakdowns.
//!
//! The model executes the *actual* task graphs produced by `liair-core`
//! (real screening decisions, real load-balancer assignments); only the
//! per-task durations come from the calibrated cost model.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod bsp;
pub mod collectives;
pub mod domainmap;
pub mod machine;
pub mod node;
pub mod routing;
pub mod torus;

pub use bsp::{BspPhase, BspReport, CommOp};
pub use domainmap::{halo_cost, DomainMap, HaloCost};
pub use machine::MachineConfig;
pub use node::NodeModel;
pub use torus::Torus5D;
