//! Analytic cost models for collective operations on the 5-D torus.
//!
//! Three algorithm families are modelled:
//!
//! * [`CollectiveAlgo::TorusPipelined`] — the topology-aware algorithms the
//!   BG/Q messaging stack (PAMI) actually uses: dimension-pipelined
//!   reduce-scatter/allgather streams that keep every torus link busy, with
//!   per-hop latency amortized across dimensions;
//! * [`CollectiveAlgo::BinomialTree`] — a topology-oblivious binomial tree
//!   whose stages each traverse the network's *average* hop distance and
//!   use a single link — the classic portable-MPI fallback. The
//!   `fig-torus-mapping` ablation contrasts the two.
//! * [`CollectiveAlgo::FlatRoot`] — every rank talks to rank 0 directly:
//!   the root pays one software start-up per peer, so the latency term is
//!   `(P−1)·α` instead of `⌈log₂P⌉·α`. This is what the runtime's flat
//!   `CollectiveMode` gathers do, kept as the degenerate baseline the
//!   `bench-collectives` experiment prices against the hierarchical
//!   algorithms.
//!
//! All times are seconds; message sizes are bytes.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Which collective implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveAlgo {
    /// Topology-aware, dimension-pipelined (PAMI-style).
    TorusPipelined,
    /// Topology-oblivious binomial tree.
    BinomialTree,
    /// Root-sequential flat collectives: `P−1` point-to-point messages
    /// serialized through rank 0's messaging stack.
    FlatRoot,
}

/// Effective number of simultaneously usable links per node (two per
/// torus dimension with extent > 1 — BG/Q drives all 10 A–E links at once).
fn active_links(m: &MachineConfig) -> f64 {
    (2 * m.torus.dims.iter().filter(|&&d| d > 1).count()).max(1) as f64
}

/// Allreduce of `bytes` across all nodes.
pub fn allreduce(m: &MachineConfig, algo: CollectiveAlgo, bytes: f64) -> f64 {
    let p = m.torus.nodes() as f64;
    if p <= 1.0 {
        return 0.0;
    }
    match algo {
        CollectiveAlgo::TorusPipelined => {
            // Rabenseifner bandwidth term streamed over all torus links;
            // latency: one software start-up per dimension plus the wire
            // time across the diameter.
            let bw = m.link_bandwidth * active_links(m);
            let latency = m.sw_latency * 5.0 + m.hop_latency * m.torus.diameter() as f64;
            latency + 2.0 * bytes * (p - 1.0) / (p * bw)
        }
        CollectiveAlgo::BinomialTree => {
            // reduce + broadcast trees: log2(P) stages, each a full-message
            // send over the mean hop distance on one link.
            let stages = (p.log2()).ceil();
            let per_stage =
                m.sw_latency + m.hop_latency * m.torus.mean_hops() + bytes / m.link_bandwidth;
            2.0 * stages * per_stage
        }
        CollectiveAlgo::FlatRoot => {
            // Root-sequential reduce then root-sequential broadcast: the
            // root handles P−1 arrivals and P−1 departures one software
            // start-up at a time — the (P−1)·α wall.
            let per_peer =
                m.sw_latency + m.hop_latency * m.torus.mean_hops() + bytes / m.link_bandwidth;
            2.0 * (p - 1.0) * per_peer
        }
    }
}

/// Broadcast of `bytes` from one node to all.
pub fn broadcast(m: &MachineConfig, algo: CollectiveAlgo, bytes: f64) -> f64 {
    let p = m.torus.nodes() as f64;
    if p <= 1.0 {
        return 0.0;
    }
    match algo {
        CollectiveAlgo::TorusPipelined => {
            let bw = m.link_bandwidth * active_links(m);
            m.sw_latency + m.hop_latency * m.torus.diameter() as f64 + bytes / bw
        }
        CollectiveAlgo::BinomialTree => {
            let stages = (p.log2()).ceil();
            stages * (m.sw_latency + m.hop_latency * m.torus.mean_hops() + bytes / m.link_bandwidth)
        }
        CollectiveAlgo::FlatRoot => {
            // P−1 serialized sends out of the root's messaging stack.
            (p - 1.0) * (m.sw_latency + bytes / m.link_bandwidth)
                + m.hop_latency * m.torus.mean_hops()
        }
    }
}

/// Gather of `bytes_per_rank` from every node onto the root — the one
/// collective of the engine's exchange build (per-rank contribution
/// vectors land on rank 0 for the canonical-order reduction).
///
/// All algorithms move the same `(P−1)·b` bytes into the root, so the
/// bandwidth term is shared; what the hierarchy buys is the latency term
/// (`⌈log₂P⌉·α` against the flat `(P−1)·α`) and, on the torus, ingress
/// spread over all of the root's links.
pub fn gather(m: &MachineConfig, algo: CollectiveAlgo, bytes_per_rank: f64) -> f64 {
    let p = m.torus.nodes() as f64;
    if p <= 1.0 {
        return 0.0;
    }
    let ingress = (p - 1.0) * bytes_per_rank / m.link_bandwidth;
    match algo {
        CollectiveAlgo::TorusPipelined => {
            // Dimension-ordered funnel: start-up per dimension, wire time
            // across the diameter, ingress striped over every root link.
            m.sw_latency * 5.0
                + m.hop_latency * m.torus.diameter() as f64
                + ingress / active_links(m)
        }
        CollectiveAlgo::BinomialTree => {
            // ⌈log₂P⌉ stages; subtree payloads double every stage but the
            // root's total ingress is unchanged, arriving over its links.
            let stages = (p.log2()).ceil();
            stages * (m.sw_latency + m.hop_latency * m.torus.mean_hops())
                + ingress / active_links(m)
        }
        CollectiveAlgo::FlatRoot => {
            // The root fields P−1 separate arrivals through one messaging
            // stack: (P−1)·α dominates at scale no matter how small the
            // per-rank payload is.
            (p - 1.0) * m.sw_latency + m.hop_latency * m.torus.mean_hops() + ingress
        }
    }
}

/// Cost split of a gather whose payload streams in while the ranks are
/// still computing (the pipelined exchange engine's double-buffered
/// reduce): how much of the collective hides behind compute and how much
/// stays on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelinedGather {
    /// End-to-end time of the overlapped exec∧reduce region.
    pub total_s: f64,
    /// Gather time left exposed on the critical path (the final buffer's
    /// drain, plus any stall when comm is slower than compute).
    pub exposed_s: f64,
    /// Gather time hidden behind compute.
    pub hidden_s: f64,
    /// `hidden / (hidden + exposed)` — 0 when the gather is free.
    pub overlap_frac: f64,
}

/// Gather of `bytes_per_rank` onto the root, streamed in `nbuffers`
/// rotating partial gathers that overlap `compute_s` seconds of per-rank
/// work — the cost model of the engine's pipelined exec stage.
///
/// Each rank emits a buffer's worth of contributions every
/// `compute_s / n` seconds; the in-flight partial gather of buffer `k`
/// overlaps the compute of buffer `k+1`, so in steady state only the last
/// buffer's drain is exposed. When a sub-gather outruns its compute
/// window the pipeline stalls and the excess lands on the critical path —
/// which is why the overlap fraction approaches `(n−1)/n` only while the
/// per-buffer collective stays cheaper than a compute slice, exactly the
/// regime the hierarchical algorithms keep the engine in at 96 racks.
pub fn gather_pipelined(
    m: &MachineConfig,
    algo: CollectiveAlgo,
    bytes_per_rank: f64,
    nbuffers: usize,
    compute_s: f64,
) -> PipelinedGather {
    let n = nbuffers.max(1);
    let per_buf = gather(m, algo, bytes_per_rank / n as f64);
    let slice = compute_s / n as f64;
    // n − 1 sub-gathers each hide up to one compute slice; the rest stalls.
    let hidden_s = (n - 1) as f64 * per_buf.min(slice);
    let exposed_s = per_buf + (n - 1) as f64 * (per_buf - slice).max(0.0);
    let denom = hidden_s + exposed_s;
    PipelinedGather {
        total_s: compute_s + exposed_s,
        exposed_s,
        hidden_s,
        overlap_frac: if denom > 0.0 { hidden_s / denom } else { 0.0 },
    }
}

/// Reduce-scatter of `bytes` (total vector size) across all nodes.
pub fn reduce_scatter(m: &MachineConfig, algo: CollectiveAlgo, bytes: f64) -> f64 {
    // Half of the Rabenseifner allreduce.
    0.5 * allreduce(m, algo, bytes)
}

/// All-to-all personalized exchange: every node holds `bytes_per_node`
/// destined in equal `1/P` shares to every other node.
///
/// This is the communication pattern of a *distributed* 3-D FFT (the
/// baseline parallelization); its latency term `(P−1)·α` is what strangles
/// plane-wave-distributed exact exchange at scale.
pub fn alltoall(m: &MachineConfig, bytes_per_node: f64) -> f64 {
    let p = m.torus.nodes() as f64;
    if p <= 1.0 {
        return 0.0;
    }
    let links = active_links(m);
    // Injection-limited term.
    let injection = bytes_per_node / (m.link_bandwidth * links);
    // Bisection-limited term: total traffic crossing the bisection is
    // ~half the aggregate data; the cut has `bisection_links` links.
    let total_traffic = bytes_per_node * p / 2.0;
    let bisection = total_traffic / (m.torus.bisection_links().max(1) as f64 * m.link_bandwidth);
    // Message-rate term: P−1 messages per node, heavily pipelined (PAMI
    // sustains roughly one remote message per ~α/8).
    let rate = (p - 1.0) * m.sw_latency / 8.0;
    injection.max(bisection) + rate
}

/// Aggregate point-to-point phase: each node exchanges at most
/// `max_bytes_per_node` with peers at mean hop distance; transfers share
/// the node's links.
pub fn point_to_point(m: &MachineConfig, max_bytes_per_node: f64) -> f64 {
    let links = active_links(m);
    m.sw_latency + max_bytes_per_node / (m.link_bandwidth * links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn torus_beats_tree_for_large_messages() {
        let m = MachineConfig::bgq_racks(4);
        let bytes = 64.0 * 1024.0 * 1024.0;
        let fast = allreduce(&m, CollectiveAlgo::TorusPipelined, bytes);
        let slow = allreduce(&m, CollectiveAlgo::BinomialTree, bytes);
        assert!(slow > 3.0 * fast, "tree {slow} vs torus {fast}");
    }

    #[test]
    fn allreduce_bandwidth_term_saturates() {
        // Doubling machine size barely changes large-message allreduce time
        // for the torus algorithm ((P−1)/P ≈ 1).
        let m1 = MachineConfig::bgq_racks(8);
        let m2 = MachineConfig::bgq_racks(32);
        let bytes = 8.0 * 1024.0 * 1024.0;
        let t1 = allreduce(&m1, CollectiveAlgo::TorusPipelined, bytes);
        let t2 = allreduce(&m2, CollectiveAlgo::TorusPipelined, bytes);
        assert!((t2 - t1).abs() / t1 < 0.2, "{t1} vs {t2}");
    }

    #[test]
    fn alltoall_latency_explodes_with_scale() {
        // The distributed-FFT killer: per-node data shrinks but the message
        // count grows linearly with P.
        let small = MachineConfig::bgq_racks(1);
        let large = MachineConfig::bgq_racks(96);
        let grid_bytes = 128.0f64.powi(3) * 16.0; // complex 128³
        let t_small = alltoall(&small, grid_bytes / small.torus.nodes() as f64);
        let t_large = alltoall(&large, grid_bytes / large.torus.nodes() as f64);
        assert!(t_large > 10.0 * t_small, "{t_small} vs {t_large}");
    }

    #[test]
    fn single_node_collectives_are_free() {
        let mut m = MachineConfig::bgq_racks(1);
        m.torus = crate::torus::Torus5D::new([1, 1, 1, 1, 1]);
        assert_eq!(allreduce(&m, CollectiveAlgo::TorusPipelined, 1e6), 0.0);
        assert_eq!(broadcast(&m, CollectiveAlgo::BinomialTree, 1e6), 0.0);
    }

    #[test]
    fn costs_scale_with_message_size() {
        let m = MachineConfig::bgq_racks(2);
        for algo in [CollectiveAlgo::TorusPipelined, CollectiveAlgo::BinomialTree] {
            let t1 = allreduce(&m, algo, 1e6);
            let t2 = allreduce(&m, algo, 1e8);
            assert!(t2 > t1);
            let b1 = broadcast(&m, algo, 1e6);
            let b2 = broadcast(&m, algo, 1e8);
            assert!(b2 > b1);
        }
    }

    #[test]
    fn flat_root_latency_wall_grows_linearly() {
        // The (P−1)·α term: quadrupling the machine roughly quadruples the
        // flat gather time for tiny payloads, while the tree gather's
        // latency term grows only logarithmically (its shared ingress
        // term keeps the growth above log but well below linear).
        let small = MachineConfig::bgq_racks(4);
        let large = MachineConfig::bgq_racks(16);
        let b = 80.0;
        let flat_ratio = gather(&large, CollectiveAlgo::FlatRoot, b)
            / gather(&small, CollectiveAlgo::FlatRoot, b);
        let tree_ratio = gather(&large, CollectiveAlgo::BinomialTree, b)
            / gather(&small, CollectiveAlgo::BinomialTree, b);
        assert!(flat_ratio > 3.5, "flat ratio {flat_ratio}");
        assert!(
            tree_ratio < 0.75 * flat_ratio,
            "tree ratio {tree_ratio} vs flat {flat_ratio}"
        );
    }

    #[test]
    fn hierarchical_gather_dominates_flat_at_scale() {
        // The bench-collectives acceptance property at the model level:
        // from a midplane up, both hierarchical algorithms beat the flat
        // root gather, and at the full machine the gap is orders of
        // magnitude.
        let b = 80.0;
        for racks in [1, 16, 96] {
            let m = MachineConfig::bgq_racks(racks);
            let flat = gather(&m, CollectiveAlgo::FlatRoot, b);
            assert!(
                gather(&m, CollectiveAlgo::BinomialTree, b) < flat,
                "{racks} racks"
            );
            assert!(
                gather(&m, CollectiveAlgo::TorusPipelined, b) < flat,
                "{racks} racks"
            );
        }
        let full = MachineConfig::bgq_racks(96);
        let ratio = gather(&full, CollectiveAlgo::FlatRoot, b)
            / gather(&full, CollectiveAlgo::BinomialTree, b);
        assert!(ratio > 100.0, "full-machine flat/tree ratio only {ratio}");
    }

    #[test]
    fn flat_allreduce_and_broadcast_are_worst() {
        let m = MachineConfig::bgq_racks(8);
        let bytes = 1e4;
        for algo in [CollectiveAlgo::TorusPipelined, CollectiveAlgo::BinomialTree] {
            assert!(allreduce(&m, algo, bytes) < allreduce(&m, CollectiveAlgo::FlatRoot, bytes));
            assert!(broadcast(&m, algo, bytes) < broadcast(&m, CollectiveAlgo::FlatRoot, bytes));
        }
    }

    #[test]
    fn pipelined_gather_hides_most_of_the_collective_at_scale() {
        // The bench-overlap acceptance property at the model level: with 8
        // rotating buffers and the strong-scaled compute window of the
        // full machine, the tree gather overlaps >= 80% of itself.
        let m = MachineConfig::bgq_racks(96);
        let compute_s = 30.0 * 1024.0 / m.torus.nodes() as f64;
        let pg = gather_pipelined(&m, CollectiveAlgo::BinomialTree, 80.0, 8, compute_s);
        assert!(pg.overlap_frac >= 0.80, "overlap {}", pg.overlap_frac);
        assert!((pg.overlap_frac - 7.0 / 8.0).abs() < 1e-9, "steady state");
        assert!(pg.total_s > compute_s);
        // One-shot gather for reference: pipelining never moves more bytes,
        // it only re-times them.
        let one_shot = gather(&m, CollectiveAlgo::BinomialTree, 80.0);
        assert!(pg.exposed_s < one_shot);
    }

    #[test]
    fn pipelined_gather_stalls_when_comm_outruns_compute() {
        // A vanishing compute window leaves nothing to hide behind: the
        // whole streamed gather is exposed and the overlap collapses.
        let m = MachineConfig::bgq_racks(4);
        let pg = gather_pipelined(&m, CollectiveAlgo::BinomialTree, 1e9, 8, 1e-9);
        assert!(pg.overlap_frac < 0.01, "overlap {}", pg.overlap_frac);
        assert!(pg.exposed_s > pg.hidden_s * 50.0);
        // And more buffers help only while the per-buffer gather fits the
        // compute slice.
        let fits = gather_pipelined(&m, CollectiveAlgo::BinomialTree, 80.0, 8, 1.0);
        let two = gather_pipelined(&m, CollectiveAlgo::BinomialTree, 80.0, 2, 1.0);
        assert!(fits.overlap_frac > two.overlap_frac);
    }

    #[test]
    fn pipelined_gather_degenerate_cases() {
        let m = MachineConfig::bgq_racks(1);
        // One buffer = the staged engine: nothing hides.
        let staged = gather_pipelined(&m, CollectiveAlgo::BinomialTree, 80.0, 1, 1.0);
        assert_eq!(staged.hidden_s, 0.0);
        assert!(staged.overlap_frac == 0.0);
        // Single node: the gather is free, the fraction well-defined.
        let mut m1 = MachineConfig::bgq_racks(1);
        m1.torus = crate::torus::Torus5D::new([1, 1, 1, 1, 1]);
        let free = gather_pipelined(&m1, CollectiveAlgo::BinomialTree, 80.0, 8, 1.0);
        assert_eq!(free.overlap_frac, 0.0);
        assert_eq!(free.total_s, 1.0);
    }

    #[test]
    fn reduce_scatter_is_half_allreduce() {
        let m = MachineConfig::bgq_racks(4);
        let a = allreduce(&m, CollectiveAlgo::TorusPipelined, 4e6);
        let rs = reduce_scatter(&m, CollectiveAlgo::TorusPipelined, 4e6);
        assert!((rs - 0.5 * a).abs() < 1e-12);
    }
}
