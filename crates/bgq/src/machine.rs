//! Machine configurations: partition presets from a node board to the full
//! 96-rack system of the paper.

use crate::node::NodeModel;
use crate::torus::Torus5D;
use serde::{Deserialize, Serialize};

/// A modelled machine: interconnect + node + link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The torus partition shape.
    pub torus: Torus5D,
    /// Per-node compute model.
    pub node: NodeModel,
    /// Per-link unidirectional bandwidth in bytes/s (BG/Q: 2 GB/s raw,
    /// ~1.8 GB/s effective).
    pub link_bandwidth: f64,
    /// Per-hop wire+router latency in seconds.
    pub hop_latency: f64,
    /// Software (messaging stack) latency per operation in seconds.
    pub sw_latency: f64,
}

impl MachineConfig {
    /// A BG/Q partition of `racks` racks (1024 nodes per rack). Published
    /// partition shapes are used where known; other sizes use balanced
    /// factorizations. Accepts the fractional sizes 0 (one node board
    /// = 32 nodes) via [`MachineConfig::bgq_nodes`].
    pub fn bgq_racks(racks: usize) -> Self {
        let dims = match racks {
            1 => [4, 4, 4, 8, 2],
            2 => [4, 4, 8, 8, 2],
            3 => [4, 4, 8, 12, 2],
            4 => [4, 8, 8, 8, 2],
            6 => [4, 8, 8, 12, 2],
            8 => [8, 8, 8, 8, 2],
            12 => [8, 8, 8, 12, 2],
            16 => [8, 8, 8, 16, 2],
            24 => [8, 8, 12, 16, 2],
            32 => [8, 8, 16, 16, 2],
            48 => [8, 12, 16, 16, 2],
            64 => [8, 16, 16, 16, 2],
            96 => [16, 16, 16, 12, 2],
            r => {
                let nodes = r * 1024;
                balanced_dims(nodes)
            }
        };
        Self::with_torus(Torus5D::new(dims))
    }

    /// A sub-rack partition with the given node count (node board = 32,
    /// midplane = 512).
    pub fn bgq_nodes(nodes: usize) -> Self {
        let dims = match nodes {
            32 => [2, 2, 2, 2, 2],
            64 => [2, 2, 4, 2, 2],
            128 => [2, 4, 4, 2, 2],
            256 => [4, 4, 4, 2, 2],
            512 => [4, 4, 4, 4, 2],
            n => balanced_dims(n),
        };
        Self::with_torus(Torus5D::new(dims))
    }

    fn with_torus(torus: Torus5D) -> Self {
        Self {
            torus,
            node: NodeModel::bgq(),
            link_bandwidth: 1.8e9,
            hop_latency: 5.0e-8,
            sw_latency: 2.0e-6,
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.torus.nodes()
    }

    /// Total hardware-thread count (the paper's headline axis).
    pub fn threads(&self) -> usize {
        self.nodes() * self.node.hw_threads()
    }

    /// Aggregate peak performance in TFLOP/s.
    pub fn peak_tflops(&self) -> f64 {
        self.nodes() as f64 * self.node.peak_gflops() / 1000.0
    }
}

/// Factor `n` into five near-balanced extents (largest last-but-one, E = 2
/// whenever n is even, BG/Q style).
fn balanced_dims(n: usize) -> [usize; 5] {
    assert!(n >= 1);
    let mut rem = n;
    let mut dims = [1usize; 5];
    if rem.is_multiple_of(2) {
        dims[4] = 2;
        rem /= 2;
    }
    // Greedily split the remaining factor into 4 near-equal parts.
    for slot in 0..4 {
        let remaining_slots = 4 - slot;
        let target = (rem as f64).powf(1.0 / remaining_slots as f64).round() as usize;
        let mut best = 1usize;
        for cand in (1..=rem).take(4 * target.max(1)) {
            if rem.is_multiple_of(cand) && cand.abs_diff(target) < best.abs_diff(target) {
                best = cand;
            }
        }
        dims[slot] = best;
        rem /= best;
    }
    dims[3] *= rem; // any leftover
    dims
}

/// The standard scaling series of the paper's strong-scaling figure:
/// 1 → 96 racks.
pub fn scaling_series() -> Vec<MachineConfig> {
    [1usize, 2, 4, 8, 16, 32, 48, 64, 96]
        .iter()
        .map(|&r| MachineConfig::bgq_racks(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_thread_count() {
        let m = MachineConfig::bgq_racks(96);
        assert_eq!(m.nodes(), 98_304);
        assert_eq!(m.threads(), 6_291_456); // the abstract's headline number
        assert!((m.peak_tflops() - 20_132.659_2).abs() < 1.0); // ~20 PF Sequoia
    }

    #[test]
    fn preset_shapes_have_right_node_counts() {
        for racks in [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96] {
            let m = MachineConfig::bgq_racks(racks);
            assert_eq!(m.nodes(), racks * 1024, "racks = {racks}");
        }
        for nodes in [32, 64, 128, 256, 512] {
            assert_eq!(MachineConfig::bgq_nodes(nodes).nodes(), nodes);
        }
    }

    #[test]
    fn balanced_dims_multiply_back() {
        for n in [1, 2, 6, 30, 100, 1000, 5000] {
            let d = balanced_dims(n);
            assert_eq!(d.iter().product::<usize>(), n, "n = {n}: {d:?}");
        }
    }

    #[test]
    fn scaling_series_is_monotone() {
        let series = scaling_series();
        assert_eq!(series.len(), 9);
        for w in series.windows(2) {
            assert!(w[1].threads() > w[0].threads());
        }
        assert_eq!(series.last().unwrap().threads(), 6_291_456);
    }
}
