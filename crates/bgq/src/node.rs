//! The per-node compute model: a BG/Q node has 16 in-order A2 cores at
//! 1.6 GHz, 4-way SMT (64 hardware threads), and the 4-wide double-precision
//! QPX vector unit — 204.8 GFLOP/s peak.
//!
//! The model turns a flop count into a duration given a thread count and
//! SIMD setting. Threading scales linearly across cores; the extra SMT
//! threads recover pipeline/memory stalls with diminishing returns (the
//! published BG/Q experience: ~1.3–1.9× from 4-way SMT). These curves are
//! what the `fig-node-threading` experiment sweeps.

use serde::{Deserialize, Serialize};

/// Compute model of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeModel {
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub smt: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// SIMD lanes (double precision).
    pub simd_width: usize,
    /// Fraction of peak a well-tuned scalar FFT kernel sustains.
    pub scalar_efficiency: f64,
    /// Fraction of the ideal `simd_width×` speedup the vectorized kernel
    /// realizes (QPX on FFT kernels: ~0.85).
    pub simd_efficiency: f64,
    /// Incremental throughput of the 2nd/3rd/4th SMT thread on a core,
    /// relative to the 1st.
    pub smt_gain: [f64; 3],
}

impl NodeModel {
    /// The Blue Gene/Q A2 node.
    ///
    /// `simd_efficiency` here is the documented literature fallback
    /// (QPX on FFT kernels: ~0.85); when a measured kernel ratio is
    /// available — e.g. from the `bench-simd` experiment — prefer
    /// [`NodeModel::with_calibrated_simd`], which derives the efficiency
    /// from an actually observed vector/scalar speedup.
    pub fn bgq() -> Self {
        Self {
            cores: 16,
            smt: 4,
            clock_ghz: 1.6,
            simd_width: 4,
            scalar_efficiency: 0.55,
            simd_efficiency: 0.85,
            smt_gain: [0.35, 0.20, 0.12],
        }
    }

    /// Calibrate the SIMD factor from a *measured* vector/scalar kernel
    /// speedup `ratio` observed on hardware with `width` double-precision
    /// lanes.
    ///
    /// The model expresses the vector speedup as
    /// `1 + (simd_width − 1) · simd_efficiency`, so inverting a measured
    /// `ratio` on a `width`-lane machine gives
    /// `simd_efficiency = (ratio − 1) / (width − 1)`, clamped to `[0, 1]`
    /// (a ratio below 1× means vectorization didn't help; above the ideal
    /// `width×` means cache effects polluted the measurement — both are
    /// clamped rather than extrapolated). A degenerate `width <= 1` keeps
    /// the fallback efficiency.
    pub fn with_calibrated_simd(self, ratio: f64, width: usize) -> Self {
        if width <= 1 || !ratio.is_finite() {
            return self;
        }
        let eff = ((ratio - 1.0) / (width as f64 - 1.0)).clamp(0.0, 1.0);
        Self {
            simd_efficiency: eff,
            ..self
        }
    }

    /// Total hardware threads.
    pub fn hw_threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Peak double-precision GFLOP/s (FMA counted as 2 flops).
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 2.0 * self.simd_width as f64
    }

    /// Relative throughput of running `threads` hardware threads
    /// (1 ≤ threads ≤ 64), normalized so 1 thread = 1.0.
    ///
    /// Threads fill cores first (one per core up to 16), then stack SMT
    /// ways round-robin; each extra SMT way on a core adds its
    /// `smt_gain` share.
    pub fn thread_scaling(&self, threads: usize) -> f64 {
        assert!(
            threads >= 1 && threads <= self.hw_threads(),
            "threads = {threads}"
        );
        let full_cores = threads.min(self.cores);
        let mut total = full_cores as f64;
        let mut remaining = threads - full_cores;
        for way in 0..(self.smt - 1) {
            if remaining == 0 {
                break;
            }
            let on_this_way = remaining.min(self.cores);
            total += on_this_way as f64 * self.smt_gain[way.min(2)];
            remaining -= on_this_way;
        }
        total
    }

    /// Sustained GFLOP/s with `threads` hardware threads and SIMD on/off.
    pub fn sustained_gflops(&self, threads: usize, simd: bool) -> f64 {
        // Per-thread scalar rate: clock × 2 flops (FMA) × efficiency.
        let per_thread = self.clock_ghz * 2.0 * self.scalar_efficiency;
        let simd_factor = if simd {
            1.0 + (self.simd_width as f64 - 1.0) * self.simd_efficiency
        } else {
            1.0
        };
        per_thread * simd_factor * self.thread_scaling(threads)
    }

    /// Time in seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64, threads: usize, simd: bool) -> f64 {
        flops / (self.sustained_gflops(threads, simd) * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgq_peak_is_204_8() {
        let n = NodeModel::bgq();
        assert!((n.peak_gflops() - 204.8).abs() < 1e-9);
        assert_eq!(n.hw_threads(), 64);
    }

    #[test]
    fn thread_scaling_monotone_and_bounded() {
        let n = NodeModel::bgq();
        let mut prev = 0.0;
        for t in 1..=64 {
            let s = n.thread_scaling(t);
            assert!(s > prev, "t = {t}");
            prev = s;
        }
        // 16 threads = 16 cores exactly linear.
        assert!((n.thread_scaling(16) - 16.0).abs() < 1e-12);
        // Full SMT: 16 × (1 + 0.35 + 0.20 + 0.12) = 26.72.
        assert!((n.thread_scaling(64) - 26.72).abs() < 1e-9);
        // SMT gain within the published 1.3–2× band.
        let smt_gain = n.thread_scaling(64) / n.thread_scaling(16);
        assert!(smt_gain > 1.3 && smt_gain < 2.0, "{smt_gain}");
    }

    #[test]
    fn simd_speedup_close_to_width() {
        let n = NodeModel::bgq();
        let ratio = n.sustained_gflops(16, true) / n.sustained_gflops(16, false);
        assert!(ratio > 3.0 && ratio < 4.0, "{ratio}");
    }

    #[test]
    fn compute_time_inverse_to_rate() {
        let n = NodeModel::bgq();
        let t1 = n.compute_time(1e9, 1, false);
        let t64 = n.compute_time(1e9, 64, true);
        assert!(t1 / t64 > 50.0, "ratio {}", t1 / t64);
        assert!(t64 > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        NodeModel::bgq().thread_scaling(0);
    }

    #[test]
    fn calibrated_simd_inverts_the_model() {
        // A measured 3.55× on a 4-lane machine is exactly the 0.85 default.
        let n = NodeModel::bgq().with_calibrated_simd(3.55, 4);
        assert!((n.simd_efficiency - 0.85).abs() < 1e-12);
        // Round-trip: the model's own simd factor reproduces the ratio.
        let factor = 1.0 + (n.simd_width as f64 - 1.0) * n.simd_efficiency;
        assert!((factor - 3.55).abs() < 1e-12);
    }

    #[test]
    fn calibrated_simd_clamps_and_guards() {
        // Sub-1× ratio clamps to zero efficiency (vector no better than scalar).
        let lo = NodeModel::bgq().with_calibrated_simd(0.7, 4);
        assert_eq!(lo.simd_efficiency, 0.0);
        // Super-ideal ratio clamps to perfect efficiency.
        let hi = NodeModel::bgq().with_calibrated_simd(9.0, 4);
        assert_eq!(hi.simd_efficiency, 1.0);
        // Degenerate width or non-finite ratio keeps the fallback.
        let w1 = NodeModel::bgq().with_calibrated_simd(2.0, 1);
        assert_eq!(w1.simd_efficiency, 0.85);
        let nan = NodeModel::bgq().with_calibrated_simd(f64::NAN, 4);
        assert_eq!(nan.simd_efficiency, 0.85);
    }
}
