//! Static link-level routing analysis on the 5-D torus.
//!
//! Routes a traffic demand set with dimension-ordered (e-cube) routing,
//! accumulating the byte load on every directed link — the tool behind the
//! congestion ablation: it shows *why* the pair scheme's locality-aware
//! neighbourhood traffic rides the torus at congestion ≈ 1 while
//! unstructured patterns hot-spot individual links.

use crate::torus::Torus5D;

/// Per-directed-link byte loads. Link `(node, dim, dir)` is the cable
/// leaving `node` along `dim` in the `+` (`dir = 0`) or `−` (`dir = 1`)
/// direction; flattened as `node·10 + dim·2 + dir`.
#[derive(Debug, Clone)]
pub struct LinkLoads {
    torus: Torus5D,
    loads: Vec<f64>,
}

impl LinkLoads {
    fn new(torus: Torus5D) -> Self {
        let n = torus.nodes() * 10;
        Self {
            torus,
            loads: vec![0.0; n],
        }
    }

    #[inline]
    fn idx(&self, node: usize, dim: usize, dir: usize) -> usize {
        node * 10 + dim * 2 + dir
    }

    /// Maximum load over all links (bytes).
    pub fn max(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Total bytes×links carried (Σ over links).
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Mean load over the links that exist (dims with extent 1 carry no
    /// traffic but still count as wired on BG/Q; we average over links
    /// with extent > 1).
    pub fn mean_over_active(&self) -> f64 {
        let active_dims = self.torus.dims.iter().filter(|&&d| d > 1).count();
        if active_dims == 0 {
            return 0.0;
        }
        self.total() / (self.torus.nodes() * active_dims * 2) as f64
    }

    /// Congestion factor: max link load over the perfectly-balanced load
    /// (1.0 = ideal spreading).
    pub fn congestion(&self) -> f64 {
        let mean = self.mean_over_active();
        if mean <= 0.0 {
            return 1.0;
        }
        self.max() / mean
    }
}

/// Route `(src, dst, bytes)` demands with dimension-ordered shortest-path
/// routing and return the accumulated link loads.
pub fn route_traffic(torus: &Torus5D, demands: &[(usize, usize, f64)]) -> LinkLoads {
    let mut out = LinkLoads::new(*torus);
    for &(src, dst, bytes) in demands {
        if src == dst || bytes == 0.0 {
            continue;
        }
        let mut cur = torus.coords(src);
        let target = torus.coords(dst);
        for dim in 0..5 {
            let n = torus.dims[dim];
            if n == 1 || cur[dim] == target[dim] {
                continue;
            }
            // Shortest wrap direction; ties go +.
            let fwd = (target[dim] + n - cur[dim]) % n;
            let bwd = n - fwd;
            let (step, dir) = if fwd <= bwd { (1, 0) } else { (n - 1, 1) };
            while cur[dim] != target[dim] {
                let node = torus.rank(cur);
                let i = out.idx(node, dim, dir);
                out.loads[i] += bytes;
                cur[dim] = (cur[dim] + step) % n;
            }
        }
    }
    out
}

/// Demand generators for the congestion study.
pub mod patterns {
    use crate::torus::Torus5D;

    /// Nearest-neighbour exchange: every node sends `bytes` to each of its
    /// torus neighbours — the locality-aware pair-scheme pattern.
    pub fn neighbor_exchange(torus: &Torus5D, bytes: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for src in 0..torus.nodes() {
            for dst in torus.neighbors(src) {
                out.push((src, dst, bytes));
            }
        }
        out
    }

    /// A random permutation: every node sends `bytes` to one random peer.
    pub fn random_permutation(torus: &Torus5D, bytes: f64, seed: u64) -> Vec<(usize, usize, f64)> {
        let n = torus.nodes();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = Splitmix(seed);
        for i in (1..n).rev() {
            let j = rng.below(i + 1);
            perm.swap(i, j);
        }
        (0..n).map(|s| (s, perm[s], bytes)).collect()
    }

    /// All-to-all with `bytes` per (src, dst) pair.
    pub fn alltoall(torus: &Torus5D, bytes: f64) -> Vec<(usize, usize, f64)> {
        let n = torus.nodes();
        let mut out = Vec::with_capacity(n * (n - 1));
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    out.push((s, d, bytes));
                }
            }
        }
        out
    }

    /// Tiny local RNG to keep this module dependency-free.
    struct Splitmix(u64);
    impl Splitmix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_demand_loads_shortest_path() {
        // 8-ring: 0 → 6 goes backwards over the wrap (2 hops).
        let t = Torus5D::new([8, 1, 1, 1, 1]);
        let loads = route_traffic(&t, &[(0, 6, 10.0)]);
        assert_eq!(loads.total(), 20.0); // bytes × hops
        assert_eq!(loads.max(), 10.0);
    }

    #[test]
    fn conservation_bytes_times_hops() {
        let t = Torus5D::new([4, 3, 2, 2, 2]);
        let demands = vec![(0usize, 17, 3.0), (5, 40, 7.0), (2, 2, 9.0)];
        let loads = route_traffic(&t, &demands);
        let want: f64 = demands
            .iter()
            .map(|&(s, d, b)| b * t.hops(s, d) as f64)
            .sum();
        assert!((loads.total() - want).abs() < 1e-9);
    }

    #[test]
    fn neighbor_exchange_is_perfectly_balanced() {
        let t = Torus5D::new([4, 4, 4, 2, 2]);
        let demands = patterns::neighbor_exchange(&t, 1.0);
        let loads = route_traffic(&t, &demands);
        // Every active link carries the traffic of exactly its endpoints…
        // except extent-2 dimensions, where +1 and −1 reach the same
        // neighbour (deduplicated) so one direction rides free; the
        // congestion stays within 2× of perfectly uniform.
        assert!(loads.congestion() < 2.0 + 1e-9, "{}", loads.congestion());
        assert!(loads.max() <= 2.0);
    }

    #[test]
    fn alltoall_congests_more_than_neighbors() {
        let t = Torus5D::new([4, 4, 2, 2, 2]);
        let nb = route_traffic(&t, &patterns::neighbor_exchange(&t, 1.0));
        let a2a = route_traffic(&t, &patterns::alltoall(&t, 1.0));
        // Normalized by their own means, all-to-all hot-spots harder.
        assert!(a2a.congestion() >= nb.congestion());
        assert!(a2a.max() > 10.0 * nb.max());
    }

    #[test]
    fn random_permutation_total_is_consistent() {
        let t = Torus5D::new([4, 4, 4, 2, 2]);
        let demands = patterns::random_permutation(&t, 2.0, 42);
        assert_eq!(demands.len(), t.nodes());
        let loads = route_traffic(&t, &demands);
        let want: f64 = demands
            .iter()
            .map(|&(s, d, b)| b * t.hops(s, d) as f64)
            .sum();
        assert!((loads.total() - want).abs() < 1e-9);
        // A permutation is a distinct-target map.
        let mut targets: Vec<usize> = demands.iter().map(|&(_, d, _)| d).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), t.nodes());
    }
}
